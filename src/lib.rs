//! # anonroute
//!
//! A Rust reproduction of **"An Optimal Strategy for Anonymous
//! Communication Protocols"** (Yong Guan, Xinwen Fu, Riccardo Bettati,
//! Wei Zhao — ICDCS 2002): exact analysis of how rerouting path-length
//! strategies affect sender anonymity, an optimizer for the paper's
//! optimal-strategy problem, and a full simulation stack (network
//! simulator, onion crypto, protocol implementations, passive adversary)
//! to validate the analysis end to end.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] ([`anonroute_core`]) — system model, anonymity-degree
//!   engines, closed forms, optimizer, strategy presets;
//! * [`sim`] ([`anonroute_sim`]) — deterministic discrete-event network
//!   simulator;
//! * [`crypto`] ([`anonroute_crypto`]) — SHA-256 / HMAC / HKDF / ChaCha20
//!   and layered onion cells, from scratch;
//! * [`protocols`] ([`anonroute_protocols`]) — Crowds, Onion Routing,
//!   Freedom, PipeNet, Anonymizer, threshold mixes, and a DC-Net baseline;
//! * [`adversary`] ([`anonroute_adversary`]) — the paper's passive
//!   adversary: collection, correlation, Bayesian inference, Monte-Carlo
//!   anonymity estimation;
//! * [`campaign`] ([`anonroute_campaign`]) — declarative scenario grids
//!   executed on a thread pool with shared evaluator memoization and
//!   deterministic per-cell seeding;
//! * [`relay`] ([`anonroute_relay`]) — a real TCP relay network serving
//!   the onion circuits end to end: wire protocol, relay daemon,
//!   circuit-building client, and an in-process cluster harness whose
//!   link tap feeds the adversary;
//! * [`obs`] ([`anonroute_obs`]) — the observability layer: an atomic
//!   metrics registry with Prometheus text exposition plus a
//!   dependency-free HTTP endpoint serving `/metrics`, `/healthz`, and
//!   `/readyz` for relay daemons and campaign sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use anonroute::prelude::*;
//!
//! // The paper's evaluation setting: 100 nodes, 1 compromised.
//! let model = SystemModel::new(100, 1)?;
//!
//! // Anonymity degree of a fixed 5-hop strategy (Onion Routing I)...
//! let fixed = engine::anonymity_degree(&model, &PathLengthDist::fixed(5))?;
//!
//! // ...and of the optimal variable-length strategy at the same cost.
//! let best = optimize::maximize_with_mean(&model, 50, 5.0)?;
//! assert!(best.h_star >= fixed);
//! # Ok::<(), anonroute_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anonroute_adversary as adversary;
pub use anonroute_campaign as campaign;
pub use anonroute_core as core;
pub use anonroute_crypto as crypto;
pub use anonroute_obs as obs;
pub use anonroute_protocols as protocols;
pub use anonroute_relay as relay;
pub use anonroute_sim as sim;

/// Commonly used items in one import.
pub mod prelude {
    pub use anonroute_campaign::{CampaignConfig, EngineKind, ScenarioGrid, StrategySpec};
    pub use anonroute_core::engine;
    pub use anonroute_core::optimize;
    pub use anonroute_core::strategies;
    pub use anonroute_core::{AnonymityReport, Error, PathKind, PathLengthDist, SystemModel};
}
