//! `anonroute` — command-line front end for the library.
//!
//! ```text
//! anonroute analyze  --n 100 --c 1 --dist fixed:5 [--cyclic]
//! anonroute sweep    --n 100 --c 1 --from 0 --to 99
//! anonroute optimize --n 100 --c 1 [--mean 8] [--lmax 99]
//! anonroute simulate --n 30 --c 2 --dist uniform:1:6 --messages 2000 [--seed 7]
//! anonroute frontier --n 100 --c 1 --max-mean 20
//! anonroute campaign --n 50,100,200 --c 1..=5 --strategies fixed:1,uniform:2:8
//! anonroute cluster  --n 12 --c 1 --dist uniform:1:4 --messages 400
//! anonroute dird     --listen 127.0.0.1:9030 --receiver 127.0.0.1:9100
//! anonroute relay    --directory net.dir --id 0
//! anonroute relay    --authority 127.0.0.1:9030 --id 0
//! anonroute send     --directory net.dir --sender 3 --dist fixed:3
//! anonroute send     --authority 127.0.0.1:9030 --sender 3 --dist fixed:3
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use anonroute::adversary::{attack_trace, Adversary};
use anonroute::campaign::{manifest, report, spec};
use anonroute::crypto::handshake::NodeIdentity;
use anonroute::obs::{Health, ObsServer, Registry};
use anonroute::prelude::*;
use anonroute::protocols::onion_routing::onion_network;
use anonroute::protocols::RouteSampler;
use anonroute::relay::{
    run_cluster, AuthorityClient, AuthorityServer, Client, ClusterConfig, Directory, DirectoryCell,
    GossipConfig, GossipRunner, LinkTap, MembershipChange, NetworkView, PendingRelay,
    ReceiverServer, Relay, RelayConfig, RelayDescriptor, DEFAULT_CELL_SIZE,
};
use anonroute::sim::traffic::UniformTraffic;
use anonroute::sim::{Endpoint, LatencyModel, MsgId, SimTime, Simulation};
use anonroute_experiments::output::ensure_results_dir;

const USAGE: &str = "\
anonroute — optimal route-selection strategies for anonymous communication
            (Guan, Fu, Bettati, Zhao — ICDCS 2002)

USAGE:
    anonroute <command> [--flag value]...

COMMANDS:
    analyze    exact anonymity degree and class breakdown of a strategy
               --n <nodes> --c <compromised> --dist <spec> [--cyclic]
    sweep      fixed-length sweep F(l) for l in --from..=--to
               --n <nodes> --c <compromised> [--from 0] [--to n-1]
    optimize   solve the paper's optimization problem
               --n <nodes> --c <compromised> [--mean <E[L]>] [--lmax <max>]
    simulate   run the onion-routing stack and attack it
               --n <nodes> --c <compromised> --dist <spec>
               [--messages 2000] [--seed 7]
    frontier   anonymity-vs-overhead frontier (optimal H* per mean length)
               --n <nodes> --c <compromised> [--max-mean 20]
    cluster    spin an in-process loopback relay cluster, drive seeded
               traffic over real TCP, and attack the per-link tap
               --n <nodes> --c <compromised> --dist <spec>
               [--messages 400] [--seed 7] [--cell 2048]
               [--payload-len 16] [--cyclic]
    dird       run the directory authority: signed, versioned relay
               descriptors with join/leave tracking and gossip bootstrap
               --receiver <addr> [--listen 127.0.0.1:9030]
               [--net-seed <str>] [--lease-ms 0]
               (--lease-ms > 0 expires members that stop heartbeating)
    relay      run one standalone TCP relay daemon against a directory
               --directory <file> --id <id>
               [--net-seed <str>] [--cell 2048] [--seed 7]
               [--metrics-addr 127.0.0.1:9464]
               (--receiver instead of --id runs the destination server)
               --authority <addr> replaces the static --directory file:
               the relay publishes its signed descriptor, learns the
               topology from the authority plus peer gossip, and drops
               departed peers by connection health
               [--listen 127.0.0.1:0] picks the advertised bind address
    send       build onion circuits and send payloads over a live net
               --directory <file> --sender <id> --dist <spec>
               [--net-seed <str>] [--count 1] [--payload <text>]
               [--seed 7] [--cell 2048] [--cyclic]
               (--authority <addr> fetches the directory instead)
    campaign   evaluate a declarative scenario grid in parallel
               --n <list> --c <list> --strategies <list>
               [--paths simple,cyclic] [--engines exact,mc,sim,live]
               [--epochs 1,4] [--rotation static,shift:2,resample]
               [--churn none,iid:0.25]
               [--spec grid.toml] [--threads 0] [--seed 7]
               [--mc-samples 20000] [--messages 1500]
               [--sim-max-n 1000000]
               [--live-messages 300] [--live-timeout 120000]
               [--live-max-n 64] [--live-cell 1024] [--shared]
               [--out <basename>] [--timing]
               [--progress] [--metrics-addr 127.0.0.1:0]
               [--trace-out trace.json]
               lists take values and ranges: 50,100,200 or 1..=5
               writes <basename>.jsonl, <basename>.csv,
               <basename>_timings.csv, <basename>_manifest.json
               `live` cells boot a real loopback TCP relay cluster per cell
               --shared boots one long-running network for the whole
               sweep instead (circuits re-keyed per cell; trace shape
               is unchanged per seed but timestamps differ)
               epochs > 1 runs the multi-round intersection adversary:
               persistent sessions, per-epoch compromised-set rotation,
               node churn, and cumulative anonymity-decay scoring
               --progress prints a ~1 Hz ticker on stderr; --metrics-addr
               serves /metrics, /healthz, /readyz, and the operator
               control plane (POST /control/pause|resume|drain|abort)
               for the sweep's duration; --trace-out writes a Chrome-trace
               JSON span timeline (load it in Perfetto or
               chrome://tracing)
               (observability never changes results: artifacts stay
               byte-identical per seed with it on or off)
    manifest-check
               validate a campaign run manifest written by `campaign`
               --file <path>_manifest.json
    help       show this text

DISTRIBUTION SPECS:
    fixed:L              exactly L intermediate nodes
    uniform:A:B          uniform over A..=B
    twopoint:L1:P:L2     L1 with probability P, else L2
    geometric:PF:LMAX    Crowds-style, forwarding probability PF
    optimal[:MEAN]       the paper's optimal strategy (campaign only)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `anonroute help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        "analyze" => cmd_analyze(&flags),
        "sweep" => cmd_sweep(&flags),
        "optimize" => cmd_optimize(&flags),
        "simulate" => cmd_simulate(&flags),
        "frontier" => cmd_frontier(&flags),
        "campaign" => cmd_campaign(&flags),
        "manifest-check" => cmd_manifest_check(&flags),
        "cluster" => cmd_cluster(&flags),
        "dird" => cmd_dird(&flags),
        "relay" => cmd_relay(&flags),
        "send" => cmd_send(&flags),
        other => Err(format!("unknown command `{other}`")),
    }
}

type Flags = HashMap<String, String>;

/// Flags that may appear without a value (`relay --receiver`). They
/// still accept one when the next token is not a flag, which is how
/// `dird --receiver <addr>` names the delivery endpoint.
const BOOLEAN_FLAGS: &[&str] = &["cyclic", "timing", "receiver", "progress", "shared"];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{a}`"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{v}`")),
    }
}

fn require<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<T, String> {
    let v = flags
        .get(name)
        .ok_or_else(|| format!("missing required flag --{name}"))?;
    v.parse()
        .map_err(|_| format!("--{name}: cannot parse `{v}`"))
}

fn model_from(flags: &Flags) -> Result<SystemModel, String> {
    let n: usize = require(flags, "n")?;
    let c: usize = require(flags, "c")?;
    let kind = if flags.contains_key("cyclic") {
        PathKind::Cyclic
    } else {
        PathKind::Simple
    };
    SystemModel::with_path_kind(n, c, kind).map_err(|e| e.to_string())
}

fn dist_from(flags: &Flags) -> Result<PathLengthDist, String> {
    let spec: String = require(flags, "dist")?;
    parse_dist(&spec)
}

fn parse_dist(spec: &str) -> Result<PathLengthDist, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let err = |m: &str| format!("--dist `{spec}`: {m}");
    let parse_usize = |s: &str| {
        s.parse::<usize>()
            .map_err(|_| err(&format!("bad integer `{s}`")))
    };
    let parse_f64 = |s: &str| {
        s.parse::<f64>()
            .map_err(|_| err(&format!("bad number `{s}`")))
    };
    match parts.as_slice() {
        ["fixed", l] => Ok(PathLengthDist::fixed(parse_usize(l)?)),
        ["uniform", a, b] => PathLengthDist::uniform(parse_usize(a)?, parse_usize(b)?)
            .map_err(|e| err(&e.to_string())),
        ["twopoint", l1, p, l2] => {
            PathLengthDist::two_point(parse_usize(l1)?, parse_f64(p)?, parse_usize(l2)?)
                .map_err(|e| err(&e.to_string()))
        }
        ["geometric", pf, lmax] => PathLengthDist::geometric(parse_f64(pf)?, parse_usize(lmax)?)
            .map_err(|e| err(&e.to_string())),
        _ => Err(err("unknown form (see `anonroute help`)")),
    }
}

fn cmd_analyze(flags: &Flags) -> Result<(), String> {
    let model = model_from(flags)?;
    let dist = dist_from(flags)?;
    let analysis = engine::analysis(&model, &dist).map_err(|e| e.to_string())?;
    let report = AnonymityReport::evaluate(&model, &dist).map_err(|e| e.to_string())?;
    println!("{model}, strategy {dist}");
    println!("{report}");
    println!("\nobservation classes:");
    println!(
        "{:>44}  {:>11}  {:>10}  {:>8}",
        "class", "probability", "entropy", "suspect"
    );
    for r in &analysis.classes {
        println!(
            "{:>44}  {:>11.6}  {:>10.4}  {:>8.4}",
            format!("{:?}", r.class),
            r.probability,
            r.entropy_bits,
            r.suspect_posterior
        );
    }
    Ok(())
}

fn cmd_sweep(flags: &Flags) -> Result<(), String> {
    let model = model_from(flags)?;
    let from: usize = get(flags, "from", 0)?;
    let to: usize = get(flags, "to", model.n() - 1)?;
    if from > to {
        return Err("--from exceeds --to".into());
    }
    println!("{model}: H* of fixed-length strategies");
    println!("{:>5}  {:>10}", "l", "H* (bits)");
    let mut best = (0usize, f64::NEG_INFINITY);
    for l in from..=to {
        let h = engine::anonymity_degree(&model, &PathLengthDist::fixed(l))
            .map_err(|e| e.to_string())?;
        println!("{l:>5}  {h:>10.6}");
        if h > best.1 {
            best = (l, h);
        }
    }
    println!("\nbest: F({}) with H* = {:.6}", best.0, best.1);
    Ok(())
}

fn cmd_optimize(flags: &Flags) -> Result<(), String> {
    let model = model_from(flags)?;
    if model.path_kind() == PathKind::Cyclic {
        return Err("the optimizer covers the paper's simple-path design space".into());
    }
    let lmax: usize = get(flags, "lmax", model.n() - 1)?;
    let outcome = match flags.get("mean") {
        Some(m) => {
            let mean: f64 = m.parse().map_err(|_| "--mean: bad number".to_string())?;
            optimize::maximize_with_mean(&model, lmax, mean).map_err(|e| e.to_string())?
        }
        None => optimize::maximize(&model, lmax).map_err(|e| e.to_string())?,
    };
    println!("{model}: optimal strategy over support 0..={lmax}");
    println!(
        "H* = {:.6} bits (upper bound log2 n = {:.6})",
        outcome.h_star,
        model.max_entropy_bits()
    );
    println!("E[L] = {:.4}", outcome.dist.mean());
    println!("\npmf (masses > 0.1%):");
    for (l, &p) in outcome.dist.pmf().iter().enumerate() {
        if p > 1e-3 {
            println!(
                "  P[L={l:>3}] = {p:.4}  {}",
                "#".repeat((p * 120.0).round() as usize)
            );
        }
    }
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let model = model_from(flags)?;
    if model.path_kind() == PathKind::Cyclic {
        return Err(
            "simulate runs the onion stack on simple paths; use Crowds via the library for cyclic"
                .into(),
        );
    }
    let dist = dist_from(flags)?;
    let messages: usize = get(flags, "messages", 2000)?;
    let seed: u64 = get(flags, "seed", 7)?;
    let n = model.n();
    let c = model.c();

    let sampler =
        RouteSampler::new(n, dist.clone(), PathKind::Simple).map_err(|e| e.to_string())?;
    let nodes = onion_network(n, &sampler, 2048, b"anonroute-cli").map_err(|e| e.to_string())?;
    let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 100, hi: 2000 }, seed);
    let mut salt = seed | 1;
    for i in 0..messages as u64 {
        salt = salt
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sim.schedule_origination(
            SimTime::from_micros(i * 100),
            (salt >> 33) as usize % n,
            vec![0u8; 16],
        );
    }
    sim.run();

    let compromised: Vec<usize> = (n - c..n).collect();
    let adversary = Adversary::new(n, &compromised).map_err(|e| e.to_string())?;
    let report = attack_trace(&adversary, &model, &dist, sim.trace(), sim.originations())
        .map_err(|e| e.to_string())?;
    let exact = engine::anonymity_degree(&model, &dist).map_err(|e| e.to_string())?;
    let (lo, hi) = report.ci95();

    println!("{model}, strategy {dist}, {messages} messages, seed {seed}");
    println!(
        "trace edges: {}, deliveries: {}",
        sim.trace().len(),
        sim.deliveries().len()
    );
    println!(
        "\nempirical H*: {:.4} bits (95% CI [{:.4}, {:.4}])",
        report.empirical_h_star, lo, hi
    );
    println!("exact     H*: {exact:.4} bits");
    println!(
        "identification rate: {:.2}%",
        report.identification_rate * 100.0
    );
    println!(
        "mean posterior on true sender: {:.4}",
        report.mean_true_sender_prob
    );
    Ok(())
}

fn cmd_frontier(flags: &Flags) -> Result<(), String> {
    let model = model_from(flags)?;
    let max_mean: usize = get(flags, "max-mean", 20)?;
    let lmax = (model.n() - 1).min(2 * max_mean + 20);
    println!("{model}: anonymity-vs-overhead frontier (optimal H* per expected length)");
    println!("{:>7}  {:>12}  {:>12}", "E[L]", "optimal H*", "fixed H*");
    for mean in 1..=max_mean {
        let opt =
            optimize::maximize_with_mean(&model, lmax, mean as f64).map_err(|e| e.to_string())?;
        let fixed = engine::anonymity_degree(&model, &PathLengthDist::fixed(mean))
            .map_err(|e| e.to_string())?;
        println!("{mean:>7}  {:>12.6}  {fixed:>12.6}", opt.h_star);
    }
    Ok(())
}

fn cmd_cluster(flags: &Flags) -> Result<(), String> {
    use rand::SeedableRng;
    let model = model_from(flags)?;
    let dist = dist_from(flags)?;
    let messages: usize = get(flags, "messages", 400)?;
    let seed: u64 = get(flags, "seed", 7)?;
    let payload_len: usize = get(flags, "payload-len", 16)?;
    let n = model.n();
    let c = model.c();

    let mut config = ClusterConfig::new(n, dist.clone());
    config.path_kind = model.path_kind();
    config.seed = seed;
    config.cell_size = get(flags, "cell", DEFAULT_CELL_SIZE)?;
    let arrivals = UniformTraffic {
        count: messages,
        interval_us: 0,
        payload_len,
    }
    .generate(
        n,
        &mut rand::rngs::StdRng::seed_from_u64(seed ^ 0xA221_7A15),
    );

    println!("cluster: {n} relays on 127.0.0.1, {messages} messages, strategy {dist}, seed {seed}");
    let outcome = run_cluster(&config, &arrivals).map_err(|e| e.to_string())?;
    let relayed: u64 = outcome.stats.iter().map(|s| s.relayed).sum();
    let dropped: u64 = outcome.stats.iter().map(|s| s.dropped).sum();
    println!(
        "delivered {} of {} over TCP; {} cells relayed, {} dropped, {} link records tapped",
        outcome.deliveries.len(),
        messages,
        relayed,
        dropped,
        outcome.trace.len()
    );

    let compromised: Vec<usize> = (n - c..n).collect();
    let adversary = Adversary::new(n, &compromised).map_err(|e| e.to_string())?;
    let report = attack_trace(
        &adversary,
        &model,
        &dist,
        &outcome.trace,
        &outcome.originations,
    )
    .map_err(|e| e.to_string())?;
    let exact = engine::anonymity_degree(&model, &dist).map_err(|e| e.to_string())?;
    let (lo, hi) = report.ci95();
    println!(
        "\nempirical H* from the link tap: {:.4} bits (95% CI [{:.4}, {:.4}])",
        report.empirical_h_star, lo, hi
    );
    println!("analytic  H* ({model}): {exact:.4} bits");
    println!(
        "identification rate: {:.2}%, mean posterior on true sender: {:.4}",
        report.identification_rate * 100.0,
        report.mean_true_sender_prob
    );
    Ok(())
}

fn net_seed_from(flags: &Flags) -> Result<Vec<u8>, String> {
    let net_seed: String = get(flags, "net-seed", "anonroute-net".to_string())?;
    Ok(net_seed.into_bytes())
}

fn authority_client(flags: &Flags) -> Result<AuthorityClient, String> {
    let addr: String = require(flags, "authority")?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("--authority: `{addr}` is not a socket address ({e})"))?;
    Ok(AuthorityClient::new(addr))
}

/// Resolves the routable directory either from a static `--directory`
/// file or by fetching the current snapshot from `--authority`.
fn directory_from(flags: &Flags) -> Result<(Directory, Vec<u8>), String> {
    let net_seed = net_seed_from(flags)?;
    if flags.contains_key("authority") {
        let client = authority_client(flags)?;
        let receiver = client.receiver().map_err(|e| e.to_string())?;
        let mut view = NetworkView::new(&net_seed, receiver);
        if let Some(snapshot) = client.fetch(0).map_err(|e| e.to_string())? {
            view.merge_snapshot(&snapshot).map_err(|e| e.to_string())?;
        }
        let directory = view.to_directory().map_err(|e| {
            format!(
                "the authority view is not routable yet (members {:?}): {e}",
                view.member_ids()
            )
        })?;
        return Ok((directory, net_seed));
    }
    let path: String = require(flags, "directory")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("--directory {path}: {e}"))?;
    let directory = Directory::parse(&text, &net_seed).map_err(|e| e.to_string())?;
    Ok((directory, net_seed))
}

fn cmd_dird(flags: &Flags) -> Result<(), String> {
    let listen: String = get(flags, "listen", "127.0.0.1:9030".to_string())?;
    let net_seed = net_seed_from(flags)?;
    let receiver: std::net::SocketAddr = require(flags, "receiver")?;
    let lease_ms: u64 = get(flags, "lease-ms", 0)?;
    let lease = (lease_ms > 0).then(|| std::time::Duration::from_millis(lease_ms));
    let server =
        AuthorityServer::spawn(&listen, &net_seed, receiver, lease).map_err(|e| e.to_string())?;
    match lease {
        Some(lease) => println!(
            "directory authority on {} (receiver {receiver}, lease {}ms; ctrl-c to stop)",
            server.addr(),
            lease.as_millis()
        ),
        None => println!(
            "directory authority on {} (receiver {receiver}, no lease expiry; ctrl-c to stop)",
            server.addr()
        ),
    }
    let mut since = 0u64;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        for ev in server.events_since(since) {
            since = ev.version;
            let kind = match ev.kind {
                MembershipChange::Joined => "joined",
                MembershipChange::Left => "left",
            };
            println!(
                "v{}: relay {} {kind} ({} members)",
                ev.version,
                ev.id,
                server.member_ids().len()
            );
        }
    }
}

/// Serves `/metrics` for a relay daemon when `--metrics-addr` is set.
fn relay_obs(flags: &Flags, relay: &Relay, id: usize) -> Result<Option<ObsServer>, String> {
    let Some(addr) = flags.get("metrics-addr") else {
        return Ok(None);
    };
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("--metrics-addr: `{addr}` is not a socket address ({e})"))?;
    relay.register_metrics(Registry::global());
    let health = std::sync::Arc::new(Health::new());
    health.set_ready(true);
    health.set_status(format!("relay {id} serving"));
    let server = ObsServer::serve(addr, Registry::global(), health).map_err(|e| e.to_string())?;
    println!("metrics: http://{}/metrics", server.addr());
    Ok(Some(server))
}

fn cmd_relay(flags: &Flags) -> Result<(), String> {
    let cell_size: usize = get(flags, "cell", DEFAULT_CELL_SIZE)?;
    let seed: u64 = get(flags, "seed", 7)?;

    if flags.contains_key("receiver") {
        // the delivery endpoint comes from the static directory file or,
        // in authority mode, from the authority itself — which answers
        // before any relay has joined
        let receiver_addr = if flags.contains_key("authority") {
            authority_client(flags)?
                .receiver()
                .map_err(|e| e.to_string())?
        } else {
            directory_from(flags)?.0.receiver()
        };
        let server = ReceiverServer::spawn_at(
            receiver_addr,
            LinkTap::new(),
            std::time::Duration::from_millis(200),
        )
        .map_err(|e| e.to_string())?;
        println!("receiver listening on {} (ctrl-c to stop)", server.addr());
        let mut seen = 0usize;
        loop {
            server.wait_for(seen + 1, std::time::Duration::from_secs(3600));
            for d in server.deliveries_since(seen) {
                seen += 1;
                if let Endpoint::Node(from) = d.last_hop {
                    println!(
                        "msg {} via node {from}: {} bytes: {}",
                        d.msg.0,
                        d.payload.len(),
                        String::from_utf8_lossy(&d.payload)
                    );
                }
            }
        }
    }

    if flags.contains_key("authority") {
        return relay_via_authority(flags, cell_size, seed);
    }

    let (directory, net_seed) = directory_from(flags)?;
    let id: usize = require(flags, "id")?;
    let info = directory
        .node(id)
        .ok_or_else(|| format!("--id {id}: not in the directory (n={})", directory.n()))?;
    let identity = NodeIdentity::derive(&net_seed, id as u64);
    let pending = PendingRelay::bind_to(
        id,
        identity,
        info.addr,
        RelayConfig {
            cell_size,
            ..RelayConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let relay = pending.serve(std::sync::Arc::new(directory), LinkTap::new(), seed);
    println!("relay {id} listening on {} (ctrl-c to stop)", relay.addr());
    let _obs = relay_obs(flags, &relay, id)?;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `relay --authority`: join the network by publishing a signed
/// descriptor, learn the topology from the authority plus peer gossip,
/// and serve against the hot-swappable directory.
fn relay_via_authority(flags: &Flags, cell_size: usize, seed: u64) -> Result<(), String> {
    let net_seed = net_seed_from(flags)?;
    let id: usize = require(flags, "id")?;
    let listen: std::net::SocketAddr =
        get(flags, "listen", "127.0.0.1:0".parse().expect("static addr"))?;
    let client = authority_client(flags)?;
    let receiver = client.receiver().map_err(|e| e.to_string())?;

    let identity = NodeIdentity::derive(&net_seed, id as u64);
    let pending = PendingRelay::bind_to(
        id,
        identity,
        listen,
        RelayConfig {
            cell_size,
            ..RelayConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = pending.addr();

    // join: the descriptor version must beat any tombstone or stale
    // descriptor the authority remembers for this id, and every
    // accepted change bumps the view version, so view+1 always wins
    let version = client.ping().map_err(|e| e.to_string())? + 1;
    let me = RelayDescriptor::derive(&net_seed, id as u64, addr, version).sign(&net_seed);
    client.publish(&me).map_err(|e| e.to_string())?;

    // the onion format routes by dense directory index, so wait until
    // every lower id has joined before serving
    let mut view = NetworkView::new(&net_seed, receiver);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let directory = loop {
        if let Ok(Some(snapshot)) = client.fetch(0) {
            let _ = view.merge_snapshot(&snapshot);
        }
        match view.to_directory() {
            Ok(d) if d.n() > id => break d,
            _ if std::time::Instant::now() > deadline => {
                return Err(format!(
                    "relay {id}: the authority view never became routable \
                     (need dense ids 0..={id}; have members {:?})",
                    view.member_ids()
                ))
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(200)),
        }
    };

    let cell = DirectoryCell::new(directory);
    let view = std::sync::Arc::new(std::sync::Mutex::new(view));
    let relay = pending.serve_dynamic(
        cell.clone(),
        std::sync::Arc::clone(&view),
        LinkTap::new(),
        seed,
    );
    let _gossip = GossipRunner::spawn(
        me,
        net_seed,
        view,
        cell,
        Some(client),
        GossipConfig::default(),
        seed,
    );
    println!(
        "relay {id} listening on {} (topology via authority at {}; ctrl-c to stop)",
        relay.addr(),
        require::<String>(flags, "authority")?
    );
    let _obs = relay_obs(flags, &relay, id)?;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_send(flags: &Flags) -> Result<(), String> {
    use rand::SeedableRng;
    let (directory, _net_seed) = directory_from(flags)?;
    let dist = dist_from(flags)?;
    let sender: usize = require(flags, "sender")?;
    if sender >= directory.n() {
        return Err(format!(
            "--sender {sender}: not in the directory (n={})",
            directory.n()
        ));
    }
    let count: usize = get(flags, "count", 1)?;
    let seed: u64 = get(flags, "seed", 7)?;
    let cell_size: usize = get(flags, "cell", DEFAULT_CELL_SIZE)?;
    let payload: String = get(flags, "payload", "hello from anonroute".to_string())?;
    let kind = if flags.contains_key("cyclic") {
        PathKind::Cyclic
    } else {
        PathKind::Simple
    };
    let mut client = Client::new(std::sync::Arc::new(directory), dist, kind, cell_size, None)
        .map_err(|e| e.to_string())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for i in 0..count {
        let route = client
            .send(sender, MsgId(i as u64), payload.as_bytes(), &mut rng)
            .map_err(|e| e.to_string())?;
        println!("message {i}: sent over a {}-hop circuit", route.len());
    }
    Ok(())
}

fn cmd_campaign(flags: &Flags) -> Result<(), String> {
    let mut config = CampaignConfig::default();
    let (grid, spec_config) = match flags.get("spec") {
        Some(path) => {
            // a spec file owns the grid axes; axis flags alongside it would
            // be silently ignored, so reject the combination outright
            for axis in [
                "n",
                "c",
                "strategies",
                "paths",
                "engines",
                "epochs",
                "rotation",
                "churn",
            ] {
                if flags.contains_key(axis) {
                    return Err(format!(
                        "--{axis} conflicts with --spec: the spec file defines the grid axes \
                         (run settings like --threads/--seed still override)"
                    ));
                }
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("--spec {path}: {e}"))?;
            spec::parse_spec(&text, &config)?
        }
        None => {
            let ns: String = require(flags, "n")?;
            let cs: String = require(flags, "c")?;
            let strategies: String = require(flags, "strategies")?;
            let paths: String = get(flags, "paths", String::new())?;
            let engines: String = get(flags, "engines", String::new())?;
            let epochs: String = get(flags, "epochs", String::new())?;
            let rotation: String = get(flags, "rotation", String::new())?;
            let churn: String = get(flags, "churn", String::new())?;
            (
                spec::grid_from_flags(
                    &ns,
                    &cs,
                    &paths,
                    &strategies,
                    &engines,
                    &epochs,
                    &rotation,
                    &churn,
                )?,
                config,
            )
        }
    };
    config = spec_config;
    // explicit flags override spec-file run settings
    config.threads = get(flags, "threads", config.threads)?;
    config.seed = get(flags, "seed", config.seed)?;
    config.mc_samples = get(flags, "mc-samples", config.mc_samples)?;
    config.sim_messages = get(flags, "messages", config.sim_messages)?;
    config.sim_max_n = get(flags, "sim-max-n", config.sim_max_n)?;
    config.live_messages = get(flags, "live-messages", config.live_messages)?;
    config.live_timeout_ms = get(flags, "live-timeout", config.live_timeout_ms)?;
    config.live_max_n = get(flags, "live-max-n", config.live_max_n)?;
    config.live_cell_size = get(flags, "live-cell", config.live_cell_size)?;
    if flags.contains_key("shared") {
        config.live_shared = true;
    }
    if flags.contains_key("progress") {
        config.progress = true;
    }
    if let Some(addr) = flags.get("metrics-addr") {
        config.metrics_addr = Some(
            addr.parse()
                .map_err(|e| format!("--metrics-addr: `{addr}` is not a socket address ({e})"))?,
        );
    }
    if let Some(path) = flags.get("trace-out") {
        config.trace_out = Some(PathBuf::from(path));
    }
    if grid.is_empty() {
        return Err("the grid has no cells (every axis needs at least one value)".into());
    }

    println!(
        "campaign: {} cells ({} n × {} c × {} path × {} strategy × {} engine), {} thread(s)",
        grid.len(),
        grid.ns.len(),
        grid.cs.len(),
        grid.path_kinds.len(),
        grid.strategies.len(),
        grid.engines.len(),
        if config.threads == 0 {
            "auto".to_string()
        } else {
            config.threads.to_string()
        },
    );
    let outcome = anonroute::campaign::run(&grid, &config);

    let include_timing = flags.contains_key("timing");
    let base: PathBuf = match flags.get("out") {
        Some(path) => PathBuf::from(path),
        None => ensure_results_dir()
            .map_err(|e| e.to_string())?
            .join("campaign"),
    };
    // append suffixes to the basename verbatim (no with_extension: a dotted
    // basename like `run.v2` must not collapse onto another run's files)
    let with_suffix = |suffix: &str| -> PathBuf {
        let mut name = base
            .file_name()
            .map(|s| s.to_os_string())
            .unwrap_or_default();
        name.push(suffix);
        base.with_file_name(name)
    };
    let jsonl = with_suffix(".jsonl");
    let csv = with_suffix(".csv");
    let timings = with_suffix("_timings.csv");
    let manifest_path = with_suffix("_manifest.json");
    report::write_jsonl(&jsonl, &outcome, include_timing).map_err(|e| e.to_string())?;
    report::write_csv(&csv, &outcome).map_err(|e| e.to_string())?;
    report::write_timings_csv(&timings, &outcome).map_err(|e| e.to_string())?;
    manifest::write_manifest(&manifest_path, &grid, &config, &outcome)
        .map_err(|e| e.to_string())?;

    print!("{}", report::summary(&outcome));
    println!(
        "results: {} + {} (timings: {}, manifest: {})",
        jsonl.display(),
        csv.display(),
        timings.display(),
        manifest_path.display()
    );
    if let Some(trace) = &config.trace_out {
        println!(
            "trace: {} (open in Perfetto or chrome://tracing)",
            trace.display()
        );
    }
    Ok(())
}

fn cmd_manifest_check(flags: &Flags) -> Result<(), String> {
    let path: String = require(flags, "file")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("--file {path}: {e}"))?;
    manifest::validate_manifest(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: valid {}", manifest::MANIFEST_SCHEMA);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flag_map(pairs: &[(&str, &str)]) -> Flags {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn dist_spec_parsing() {
        assert_eq!(parse_dist("fixed:5").unwrap(), PathLengthDist::fixed(5));
        assert_eq!(
            parse_dist("uniform:2:8").unwrap(),
            PathLengthDist::uniform(2, 8).unwrap()
        );
        assert!(parse_dist("twopoint:3:0.5:4").is_ok());
        assert!(parse_dist("geometric:0.75:50").is_ok());
        assert!(parse_dist("nope:1").is_err());
        assert!(parse_dist("uniform:9:2").is_err());
        assert!(parse_dist("fixed:x").is_err());
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--n", "100", "--c", "1", "--cyclic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = parse_flags(&args).unwrap();
        assert_eq!(flags.get("n").unwrap(), "100");
        assert_eq!(flags.get("cyclic").unwrap(), "true");
        assert!(parse_flags(&["--n".to_string()]).is_err());
        assert!(parse_flags(&["n".to_string()]).is_err());
    }

    #[test]
    fn boolean_flags_accept_an_optional_value() {
        // `relay --receiver` (bare) vs `dird --receiver <addr>` (valued)
        let bare: Vec<String> = ["--receiver", "--net-seed", "s"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = parse_flags(&bare).unwrap();
        assert_eq!(flags.get("receiver").unwrap(), "true");
        assert_eq!(flags.get("net-seed").unwrap(), "s");

        let valued: Vec<String> = ["--receiver", "127.0.0.1:9100", "--shared"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = parse_flags(&valued).unwrap();
        assert_eq!(flags.get("receiver").unwrap(), "127.0.0.1:9100");
        assert_eq!(flags.get("shared").unwrap(), "true");
    }

    #[test]
    fn commands_run_end_to_end() {
        let flags = |pairs: &[(&str, &str)]| -> Flags {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        cmd_analyze(&flags(&[("n", "50"), ("c", "1"), ("dist", "fixed:5")])).unwrap();
        cmd_sweep(&flags(&[
            ("n", "20"),
            ("c", "1"),
            ("from", "0"),
            ("to", "5"),
        ]))
        .unwrap();
        cmd_optimize(&flags(&[
            ("n", "30"),
            ("c", "1"),
            ("mean", "4"),
            ("lmax", "15"),
        ]))
        .unwrap();
        cmd_simulate(&flags(&[
            ("n", "12"),
            ("c", "1"),
            ("dist", "uniform:1:4"),
            ("messages", "200"),
        ]))
        .unwrap();
        cmd_frontier(&flags(&[("n", "25"), ("c", "1"), ("max-mean", "3")])).unwrap();
    }

    #[test]
    fn cluster_runs_end_to_end_over_loopback_tcp() {
        cmd_cluster(&flag_map(&[
            ("n", "8"),
            ("c", "1"),
            ("dist", "uniform:1:3"),
            ("messages", "60"),
            ("payload-len", "8"),
        ]))
        .unwrap();
    }

    #[test]
    fn relay_and_send_validate_their_inputs() {
        // missing / unreadable directory
        assert!(cmd_relay(&flag_map(&[("directory", "/nonexistent.dir"), ("id", "0")])).is_err());
        assert!(cmd_send(&flag_map(&[
            ("directory", "/nonexistent.dir"),
            ("sender", "0"),
            ("dist", "fixed:1"),
        ]))
        .is_err());

        let dir = std::env::temp_dir().join("anonroute-cli-relay-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dir_file = dir.join("net.dir");
        std::fs::write(
            &dir_file,
            "receiver 127.0.0.1:1\n0 127.0.0.1:2\n1 127.0.0.1:3\n",
        )
        .unwrap();
        let path = dir_file.to_str().unwrap();
        // id outside the directory
        let err = cmd_relay(&flag_map(&[("directory", path), ("id", "9")])).unwrap_err();
        assert!(err.contains("not in the directory"), "{err}");
        // sender outside the directory
        let err = cmd_send(&flag_map(&[
            ("directory", path),
            ("sender", "7"),
            ("dist", "fixed:1"),
        ]))
        .unwrap_err();
        assert!(err.contains("not in the directory"), "{err}");
        // sending without a live network surfaces the socket error
        assert!(cmd_send(&flag_map(&[
            ("directory", path),
            ("sender", "0"),
            ("dist", "fixed:1"),
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn send_delivers_against_an_authority_backed_network() {
        use anonroute::relay::NodeInfo;
        let net_seed = b"anonroute-cli-authority-test";
        let tap = LinkTap::new();
        let receiver = ReceiverServer::spawn(tap.clone(), std::time::Duration::from_millis(100))
            .expect("receiver");
        let pendings: Vec<PendingRelay> = (0..3)
            .map(|id| {
                PendingRelay::bind(
                    id,
                    NodeIdentity::derive(net_seed, id as u64),
                    RelayConfig::default(),
                )
                .expect("bind")
            })
            .collect();
        let nodes: Vec<NodeInfo> = pendings
            .iter()
            .map(|p| NodeInfo {
                id: p.id(),
                addr: p.addr(),
                public: p.public(),
            })
            .collect();
        let directory =
            std::sync::Arc::new(Directory::new(nodes.clone(), receiver.addr()).expect("directory"));
        let _relays: Vec<Relay> = pendings
            .into_iter()
            .map(|p| p.serve(std::sync::Arc::clone(&directory), tap.clone(), 7))
            .collect();

        // publish the same topology at an authority, then send with no
        // static directory file at all
        let authority =
            AuthorityServer::spawn("127.0.0.1:0", net_seed, receiver.addr(), None).expect("spawn");
        let client = AuthorityClient::new(authority.addr());
        for node in &nodes {
            let desc = RelayDescriptor::derive(net_seed, node.id as u64, node.addr, 1);
            client.publish(&desc.sign(net_seed)).expect("publish");
        }
        cmd_send(&flag_map(&[
            ("authority", &authority.addr().to_string()),
            ("net-seed", "anonroute-cli-authority-test"),
            ("sender", "0"),
            ("dist", "fixed:1"),
            ("count", "2"),
        ]))
        .unwrap();
        assert!(
            receiver.wait_for(2, std::time::Duration::from_secs(10)),
            "both onion messages must arrive"
        );

        // an unreachable authority errors cleanly
        let dead = authority.addr().to_string();
        authority.shutdown();
        let err = cmd_send(&flag_map(&[
            ("authority", &dead),
            ("sender", "0"),
            ("dist", "fixed:1"),
        ]))
        .unwrap_err();
        assert!(err.contains("directory authority"), "{err}");
    }

    #[test]
    fn campaign_runs_a_shared_live_sweep_from_flags() {
        let dir = std::env::temp_dir().join("anonroute-cli-campaign-shared-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("shared");
        let flags = flag_map(&[
            ("n", "5,6"),
            ("c", "1"),
            ("strategies", "fixed:1"),
            ("engines", "live"),
            ("live-messages", "40"),
            ("shared", "true"),
            ("out", out.to_str().unwrap()),
        ]);
        cmd_campaign(&flags).unwrap();
        let jsonl = std::fs::read_to_string(out.with_extension("jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(!jsonl.contains("\"status\":\"error\""), "{jsonl}");
        let manifest = std::fs::read_to_string(dir.join("shared_manifest.json")).unwrap();
        assert!(manifest.contains("\"live_shared\": true"), "{manifest}");
        cmd_manifest_check(&flag_map(&[(
            "file",
            dir.join("shared_manifest.json").to_str().unwrap(),
        )]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_runs_end_to_end_from_flags() {
        let dir = std::env::temp_dir().join("anonroute-cli-campaign-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("sweep");
        let flags: Flags = [
            ("n", "20,30"),
            ("c", "1..=2"),
            ("strategies", "fixed:3,uniform:1:5"),
            ("engines", "exact"),
            ("threads", "2"),
            ("out", out.to_str().unwrap()),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        cmd_campaign(&flags).unwrap();
        let jsonl = std::fs::read_to_string(out.with_extension("jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 8);
        assert!(jsonl.contains("\"status\":\"ok\""));
        let csv = std::fs::read_to_string(out.with_extension("csv")).unwrap();
        assert_eq!(csv.lines().count(), 9);
        assert!(dir.join("sweep_timings.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_writes_a_validating_manifest() {
        let dir = std::env::temp_dir().join("anonroute-cli-campaign-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("obs");
        let flags = flag_map(&[
            ("n", "15"),
            ("c", "1"),
            ("strategies", "fixed:3,fixed:40"),
            ("metrics-addr", "127.0.0.1:0"),
            ("out", out.to_str().unwrap()),
        ]);
        cmd_campaign(&flags).unwrap();
        let manifest_path = dir.join("obs_manifest.json");
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        assert!(text.contains("anonroute-campaign-manifest/v3"), "{text}");
        assert!(text.contains("\"live_shared\": false"), "{text}");
        assert!(text.contains("\"ok\": 1"), "{text}");
        assert!(text.contains("\"errors\": 1"), "F(40) infeasible: {text}");
        cmd_manifest_check(&flag_map(&[("file", manifest_path.to_str().unwrap())])).unwrap();
        // a corrupted manifest is rejected
        std::fs::write(&manifest_path, text.replace("\"ok\": 1", "\"ok\": 7")).unwrap();
        let err = cmd_manifest_check(&flag_map(&[("file", manifest_path.to_str().unwrap())]))
            .unwrap_err();
        assert!(err.contains("tally mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_rejects_bad_metrics_addresses() {
        let flags = flag_map(&[
            ("n", "10"),
            ("c", "1"),
            ("strategies", "fixed:2"),
            ("metrics-addr", "not-an-addr"),
        ]);
        let err = cmd_campaign(&flags).unwrap_err();
        assert!(err.contains("socket address"), "{err}");
    }

    #[test]
    fn campaign_runs_a_live_cell_over_loopback_tcp() {
        let dir = std::env::temp_dir().join("anonroute-cli-campaign-live-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("live");
        let flags = flag_map(&[
            ("n", "5"),
            ("c", "1"),
            ("strategies", "fixed:1"),
            ("engines", "exact,live"),
            ("live-messages", "40"),
            ("out", out.to_str().unwrap()),
        ]);
        cmd_campaign(&flags).unwrap();
        let jsonl = std::fs::read_to_string(out.with_extension("jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        let live_line = jsonl
            .lines()
            .find(|l| l.contains("\"engine\":\"live\""))
            .expect("live cell rendered");
        assert!(live_line.contains("\"status\":\"ok\""), "{live_line}");
        assert!(live_line.contains("\"samples\":40"), "{live_line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_runs_a_multi_epoch_grid_from_flags() {
        let dir = std::env::temp_dir().join("anonroute-cli-campaign-epochs-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("decay");
        let flags = flag_map(&[
            ("n", "12"),
            ("c", "1"),
            ("strategies", "uniform:1:2"),
            ("engines", "exact,mc"),
            ("epochs", "1,3"),
            ("churn", "none,iid:0.2"),
            ("mc-samples", "2000"),
            ("out", out.to_str().unwrap()),
        ]);
        cmd_campaign(&flags).unwrap();
        let jsonl = std::fs::read_to_string(out.with_extension("jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 8, "2 engines x 2 epochs x 2 churns");
        assert!(jsonl.contains("\"dynamics\":\"epochs=3;churn=iid:0.2\""));
        assert!(jsonl.contains("\"epochs\":3"));
        assert!(jsonl.contains("\"h_epoch1\":"));
        assert!(!jsonl.contains("\"status\":\"error\""), "{jsonl}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_runs_from_a_spec_file() {
        let dir = std::env::temp_dir().join("anonroute-cli-campaign-spec-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("grid.toml");
        std::fs::write(
            &spec_path,
            "[grid]\nn = [15]\nc = 1\nstrategies = [\"fixed:2\", \"fixed:40\"]\n\n[run]\nthreads = 1\n",
        )
        .unwrap();
        let out = dir.join("fromspec");
        let flags: Flags = [
            ("spec", spec_path.to_str().unwrap()),
            ("out", out.to_str().unwrap()),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        cmd_campaign(&flags).unwrap();
        let jsonl = std::fs::read_to_string(out.with_extension("jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(
            jsonl.contains("\"status\":\"error\""),
            "F(40) is infeasible at n=15"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_rejects_bad_grids() {
        let flags = |pairs: &[(&str, &str)]| -> Flags {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        // missing axes
        assert!(cmd_campaign(&flags(&[("n", "10")])).is_err());
        // bad list
        assert!(
            cmd_campaign(&flags(&[("n", "x"), ("c", "1"), ("strategies", "fixed:1")])).is_err()
        );
        // bad strategy
        assert!(
            cmd_campaign(&flags(&[("n", "10"), ("c", "1"), ("strategies", "warp:9")])).is_err()
        );
        // missing spec file
        assert!(cmd_campaign(&flags(&[("spec", "/nonexistent/grid.toml")])).is_err());
        // axis flags conflict with --spec instead of being silently ignored
        let err =
            cmd_campaign(&flags(&[("spec", "/nonexistent/grid.toml"), ("n", "500")])).unwrap_err();
        assert!(err.contains("--n conflicts with --spec"), "{err}");
    }

    #[test]
    fn campaign_out_basename_keeps_dots() {
        let dir = std::env::temp_dir().join("anonroute-cli-campaign-dotted-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("run.v2");
        let flags: Flags = [
            ("n", "10"),
            ("c", "1"),
            ("strategies", "fixed:2"),
            ("out", out.to_str().unwrap()),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        cmd_campaign(&flags).unwrap();
        assert!(
            dir.join("run.v2.jsonl").exists(),
            "dotted basename preserved"
        );
        assert!(dir.join("run.v2.csv").exists());
        assert!(dir.join("run.v2_timings.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        let flags = |pairs: &[(&str, &str)]| -> Flags {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        assert!(cmd_analyze(&flags(&[("n", "50")])).is_err()); // missing --c / --dist
        assert!(cmd_analyze(&flags(&[("n", "5"), ("c", "9"), ("dist", "fixed:1")])).is_err());
        assert!(cmd_sweep(&flags(&[
            ("n", "20"),
            ("c", "1"),
            ("from", "9"),
            ("to", "2")
        ]))
        .is_err());
        assert!(run(&["bogus".to_string()]).is_err());
    }
}
