//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, so the external dependencies are replaced by small in-tree
//! implementations that cover exactly the API surface the workspace uses:
//!
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`;
//! * [`SeedableRng`] — `from_seed`, `seed_from_u64`;
//! * [`rngs::StdRng`] — a deterministic, statistically solid PRNG
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`seq::SliceRandom`] — `shuffle` / `choose`.
//!
//! The generator is **not** the upstream ChaCha-based `StdRng`, so seeded
//! streams differ from real `rand`; everything in this workspace treats
//! seeds as opaque reproducibility handles, never as cross-library
//! contracts.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

/// Types fillable with random data via [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `0..span` (`span == 0` means the full 64-bit range),
/// debiased by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit as f32 * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_lies_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        let trials = 100_000;
        for _ in 0..trials {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.2).abs() < 0.01, "freq {freq}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(10u64..=12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn array_generation_works() {
        let mut rng = StdRng::seed_from_u64(5);
        let nonce: [u8; 12] = rng.gen();
        let nonce2: [u8; 12] = rng.gen();
        assert_ne!(nonce, nonce2);
    }
}
