//! The [`Standard`] distribution: "natural" uniform sampling per type.

use crate::RngCore;

/// Types that can produce samples of `T` from raw random bits.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, the full range for integers).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}
