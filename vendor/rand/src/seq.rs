//! Sequence helpers ([`SliceRandom`]).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

fn gen_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    rng.gen_range(0..bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(10);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap()] = true;
        }
        assert_eq!(&seen[1..], &[true; 4]);
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }
}
