//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic PRNG: xoshiro256++.
///
/// Not the upstream `rand::rngs::StdRng` stream — seeds are reproducibility
/// handles local to this workspace, not a cross-library contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // the all-zero state is a fixed point of xoshiro; remix through
        // SplitMix64 so every seed yields a usable stream
        if s.iter().all(|&w| w == 0) {
            let mut sm = 0x6A09_E667_F3BC_C909u64;
            for word in &mut s {
                *word = crate::splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}
