//! Offline vendored stand-in for the `rayon` API subset used by this
//! workspace: `Vec::into_par_iter().map(..).collect()`, `ThreadPoolBuilder`
//! and `ThreadPool::install`.
//!
//! Execution model: a work-stealing-free but order-preserving fan-out over
//! `std::thread::scope`. Items are claimed from a shared atomic cursor, so
//! threads stay busy as long as work remains; results land at their input
//! index, so collected output order is identical to sequential execution
//! regardless of thread count.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel iterator on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Builder for a (virtual) thread pool.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means auto-detect.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Pool-construction error (never produced; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped degree-of-parallelism setting. Threads are spawned per
/// parallel call rather than kept alive, which is indistinguishable for
/// the coarse-grained sweeps this workspace runs.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.threads));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(prev));
        result
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// The (minimal) parallel-iterator protocol: producers can materialize
/// themselves into an ordered `Vec`, and adapters run their stage in
/// parallel over that base.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Executes the pipeline, preserving input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the ordered results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Applies `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _: Vec<()> = Map {
            base: self,
            f: |x| f(x),
        }
        .run();
    }
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Map adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;
    fn run(self) -> Vec<U> {
        par_apply(self.base.run(), current_num_threads(), &self.f)
    }
}

/// Applies `f` to every item on up to `threads` scoped threads, returning
/// results in input order.
fn par_apply<T: Send, U: Send, F: Fn(T) -> U + Sync>(
    items: Vec<T>,
    threads: usize,
    f: &F,
) -> Vec<U> {
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each slot is claimed exactly once");
                let result = f(item);
                *out[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn single_thread_pool_matches_parallel_results() {
        let work: Vec<u64> = (0..200).collect();
        let serial = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| -> Vec<u64> {
                work.clone()
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(x))
                    .collect()
            });
        let parallel = ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| -> Vec<u64> {
                work.clone()
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(x))
                    .collect()
            });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..64u32)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }
}
