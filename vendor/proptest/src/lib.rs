//! Offline vendored stand-in for the `proptest` API subset used by this
//! workspace: the `proptest!` macro, range/`any`/`collection::vec`
//! strategies, `prop_filter`, `prop_assume!` and `prop_assert*!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the assertion message. Case generation is deterministic per test (the
//! RNG is seeded from the test name), so failures reproduce across runs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case is outside the test's precondition (`prop_assume!`);
    /// resample without counting a failure.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

/// A generator of values of type `Value`.
///
/// `sample` returns `None` when the candidate was filtered out
/// (`prop_filter`); the runner resamples.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one candidate value.
    fn sample(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Keeps only values satisfying `predicate`.
    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason: reason.into(),
            predicate,
        }
    }
}

/// Strategy adapter created by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    #[allow(dead_code)]
    reason: String,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
        let v = self.base.sample(rng)?;
        if (self.predicate)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                if self.start >= self.end { return None; }
                Some(rng.gen_range(self.start..self.end))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                if self.start() > self.end() { return None; }
                Some(rng.gen_range(*self.start()..=*self.end()))
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> Option<f64> {
        if self.start.partial_cmp(&self.end) != Some(core::cmp::Ordering::Less) {
            return None;
        }
        Some(rng.gen_range(self.start..self.end))
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Strategy for any [`Arbitrary`] type (`any::<u64>()`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<A>(core::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut StdRng) -> Option<A> {
        Some(A::arbitrary(rng))
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

/// Deterministic per-test RNG (FNV-1a of the test name, SplitMix-expanded).
pub fn new_test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests. Supported grammar (the subset this workspace
/// uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in arb_vec()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_test_rng(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u64 = 0;
            'cases: while accepted < config.cases {
                assert!(
                    rejected < 1024 + 64 * config.cases as u64,
                    "proptest {}: too many rejected samples ({} accepted so far)",
                    stringify!($name),
                    accepted,
                );
                $(
                    let $arg = match $crate::Strategy::sample(&($strat), &mut rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            rejected += 1;
                            continue 'cases;
                        }
                    };
                )*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body;
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{:?} == {:?}`",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{} (`{:?}` vs `{:?}`)",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{:?} != {:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

/// Rejects the current case (resampled, not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small_vec() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(0u8..10, 1..=4).prop_filter("nonempty sum", |v| {
            v.iter().map(|&x| x as u32).sum::<u32>() > 0
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn filtered_vectors_respect_the_filter(v in arb_small_vec()) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().map(|&x| x as u32).sum::<u32>() > 0);
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..4) {
            prop_assume!(x != 0);
            prop_assert!(x > 0);
        }

        #[test]
        fn any_produces_values(seed in any::<u64>(), b in any::<u8>()) {
            let _ = (seed, b);
            prop_assert!(true);
        }
    }
}
