//! Offline vendored stand-in for `parking_lot`: a `Mutex` with the
//! poison-free locking surface, backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` never returns a poison error
/// (a panicked holder simply passes the data on, as in `parking_lot`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&self.0).finish()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
