//! Offline vendored stand-in for the `crossbeam` channel API subset used
//! by this workspace, backed by `std::sync::mpsc`.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPSC channels with the `crossbeam_channel` surface.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// Sending half (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// The channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Send failed; returns the unsent message.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time.
        Timeout,
        /// All senders are gone.
        Disconnected,
    }

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message ready.
        Empty,
        /// All senders are gone.
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
