//! Offline vendored stand-in for the `criterion` benchmarking API subset
//! used by this workspace.
//!
//! No statistics engine: each benchmark is warmed up once, then timed over
//! an adaptive batch, and the mean time per iteration is printed. Passing
//! `--test` (as `cargo test --benches` does for harness-less targets) runs
//! every benchmark exactly once so CI stays fast.
//!
//! Setting `BENCH_JSON=<path>` additionally writes every measurement of
//! the run as a JSON array of `{"id", "ns_per_iter", "iters"}` objects —
//! the trajectory format the repository's committed `BENCH_*.json`
//! snapshots use for tracking performance across PRs. Benchmarks that
//! declare a [`Throughput`] also get `"elements_per_sec"` (or
//! `"bytes_per_sec"`) — an additive field older snapshots simply lack.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One benchmark measurement accumulated for the `BENCH_JSON` report.
struct Measurement {
    id: String,
    ns_per_iter: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

/// Measurements accumulated for the `BENCH_JSON` report.
static RESULTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

pub use std::hint::black_box;

/// Measurement settings shared by a run.
#[derive(Debug, Clone)]
pub struct Criterion {
    target_time: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion {
            target_time: Duration::from_millis(200),
            quick,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id, f, None);
        self
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the adaptive timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs; subsequent
    /// benchmarks in the group report a derived rate (elements or bytes
    /// per second) alongside the raw time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &full, f, self.throughput);
        self
    }

    /// Runs a parameterized benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, |b| f(b, input), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work performed by one benchmark iteration; turns the measured time
/// into a rate in the console line and the `BENCH_JSON` report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    quick: bool,
    target_time: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // one untimed warmup call
        black_box(routine());
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            self.elapsed = start.elapsed();
            self.iters_done = 1;
            return;
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.target_time || iters >= 100_000 {
                self.elapsed = elapsed;
                self.iters_done = iters;
                return;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    id: &str,
    mut f: F,
    throughput: Option<Throughput>,
) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        quick: criterion.quick,
        target_time: criterion.target_time,
    };
    f(&mut bencher);
    if bencher.iters_done == 0 {
        println!("{id:<48} (no measurement)");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}", format_rate(n, per_iter, "elem")),
        Throughput::Bytes(n) => format!("  thrpt: {}", format_rate(n, per_iter, "B")),
    });
    println!(
        "{id:<48} time: {:>12} /iter  ({} iters){}",
        format_ns(per_iter),
        bencher.iters_done,
        rate.unwrap_or_default()
    );
    RESULTS.lock().expect("results lock").push(Measurement {
        id: id.to_string(),
        ns_per_iter: per_iter,
        iters: bencher.iters_done,
        throughput,
    });
}

/// Writes all measurements of this run to the path in `BENCH_JSON` (a
/// no-op when the variable is unset). `criterion_main!` calls this after
/// the last group; write failures are reported on stderr, never fatal.
pub fn write_json_report() {
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("results lock");
    let mut out = String::from("[\n");
    for (i, m) in results.iter().enumerate() {
        let id = m.id.replace('\\', "\\\\").replace('"', "\\\"");
        let (ns, iters) = (m.ns_per_iter, m.iters);
        out.push_str(&format!(
            "  {{\"id\": \"{id}\", \"ns_per_iter\": {ns:.1}, \"iters\": {iters}"
        ));
        // rate fields are additive: the compare script keys on
        // ns_per_iter and ignores anything it does not know
        match m.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 * 1e9 / ns;
                out.push_str(&format!(", \"elements_per_sec\": {rate:.1}"));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 * 1e9 / ns;
                out.push_str(&format!(", \"bytes_per_sec\": {rate:.1}"));
            }
            None => {}
        }
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("BENCH_JSON: cannot write {}: {e}", path.to_string_lossy());
    }
}

/// Formats `n` units per `ns` nanoseconds as a human rate, e.g.
/// `12.3 Melem/s`.
fn format_rate(n: u64, ns: f64, unit: &str) -> String {
    let per_sec = n as f64 * 1e9 / ns;
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10).throughput(Throughput::Bytes(8));
        group.bench_function("add", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_every_shape() {
        let mut c = Criterion {
            target_time: Duration::from_millis(1),
            quick: true,
        };
        sample_bench(&mut c);
    }

    #[test]
    fn json_report_round_trips() {
        let dir = std::env::temp_dir().join("criterion-bench-json-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::env::set_var("BENCH_JSON", &path);
        let mut c = Criterion {
            target_time: Duration::from_millis(1),
            quick: true,
        };
        c.bench_function("json/report", |b| b.iter(|| black_box(3 + 4)));
        let mut group = c.benchmark_group("json");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("rated", |b| b.iter(|| black_box(5 + 6)));
        group.finish();
        write_json_report();
        std::env::remove_var("BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"id\": \"json/report\""), "{text}");
        assert!(text.contains("\"ns_per_iter\": "), "{text}");
        assert!(text.contains("\"iters\": 1"), "{text}");
        assert!(text.contains("\"elements_per_sec\": "), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn id_formats() {
        assert_eq!(
            BenchmarkId::new("simple", "n100").to_string(),
            "simple/n100"
        );
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
