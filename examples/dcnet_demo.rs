//! The DC-Net baseline: unconditional sender anonymity without rerouting,
//! at quadratic broadcast cost (the trade-off the paper uses to dismiss
//! DC-Nets for large systems).
//!
//! Run with: `cargo run --release --example dcnet_demo`

use anonroute::core::{engine, PathLengthDist, SystemModel};
use anonroute::protocols::dcnet::{anonymity_degree, DcNet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // one round of dining cryptographers
    let n = 8;
    let mut net = DcNet::new(b"dinner-at-the-three-star", n)?;
    let message = b"I paid for dinner";
    let round = net.run_round(Some(3), message)?;
    println!("participants: {n}");
    println!(
        "round decodes to: {:?}",
        String::from_utf8_lossy(&round.decode())
    );
    println!(
        "announcement of participant 0 (looks random): {:02x?}...",
        &round.announcements[0][..8]
    );

    // anonymity vs cost against the rerouting approach, as n grows
    println!(
        "\n{:>6} {:>14} {:>14} {:>16} {:>14}",
        "n", "DC-Net H*", "rerouting H*", "DC-Net bytes/msg", "rerouting bytes"
    );
    for n in [10usize, 50, 100, 500] {
        let c = 1;
        let dc_h = anonymity_degree(n, c);
        let model = SystemModel::new(n, c)?;
        // a well-chosen rerouting strategy at modest cost (clamped to the
        // longest simple path an n-node system supports)
        let hi = 15.min(n - 1);
        let reroute_h = engine::anonymity_degree(&model, &PathLengthDist::uniform(3, hi)?)?;
        let payload = 512usize;
        let dc_bytes = n * n * payload; // every participant broadcasts
        let reroute_bytes = payload * 10; // ~E[len]+1 unicast hops
        println!("{n:>6} {dc_h:>14.4} {reroute_h:>14.4} {dc_bytes:>16} {reroute_bytes:>14}");
    }
    println!("\nDC-Nets hold anonymity near log2(n-c) regardless of routing, but their");
    println!("per-message traffic grows as n^2 — the scalability wall the paper cites.");
    Ok(())
}
