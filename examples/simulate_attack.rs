//! Runs the full stack — onion crypto, discrete-event network, passive
//! adversary — on a batch of messages and prints the adversary's view of
//! one of them: the reconstructed observation and the Bayesian posterior.
//!
//! Run with: `cargo run --release --example simulate_attack`

use anonroute::adversary::{attack_trace, Adversary};
use anonroute::prelude::*;
use anonroute::protocols::onion_routing::onion_network;
use anonroute::protocols::RouteSampler;
use anonroute::sim::{LatencyModel, SimTime, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 20;
    let compromised_ids = [17, 18, 19];
    let dist = PathLengthDist::uniform(1, 5)?;
    let model = SystemModel::new(n, compromised_ids.len())?;

    // build and run the network
    let sampler = RouteSampler::new(n, dist.clone(), PathKind::Simple)?;
    let nodes = onion_network(n, &sampler, 2048, b"demo-deployment")?;
    let mut sim = Simulation::new(
        nodes,
        LatencyModel::Uniform {
            lo: 2_000,
            hi: 30_000,
        },
        7,
    );
    for i in 0..200u64 {
        sim.schedule_origination(
            SimTime::from_micros(i * 500),
            (i % n as u64) as usize,
            b"ballot".to_vec(),
        );
    }
    sim.run();
    println!(
        "simulated {} messages over {} trace edges, all delivered: {}",
        sim.originations().len(),
        sim.trace().len(),
        sim.deliveries().len() == sim.originations().len()
    );

    // the adversary collects, correlates, reconstructs, and infers
    let adversary = Adversary::new(n, &compromised_ids)?;
    let report = attack_trace(&adversary, &model, &dist, sim.trace(), sim.originations())?;

    println!(
        "\nempirical anonymity degree: {:.4} bits (se {:.4})",
        report.empirical_h_star, report.std_error
    );
    println!(
        "exact analytical value:     {:.4} bits",
        engine::anonymity_degree(&model, &dist)?
    );
    println!(
        "senders fully identified:   {:.1}%",
        report.identification_rate * 100.0
    );

    // zoom into one interesting message: the one the adversary pinned best
    let sharpest = report
        .verdicts
        .iter()
        .min_by(|a, b| a.entropy_bits.partial_cmp(&b.entropy_bits).expect("finite"))
        .expect("at least one message");
    let truth = sim
        .originations()
        .iter()
        .find(|o| o.msg == sharpest.msg)
        .expect("known message");
    println!("\nsharpest observation (message {:?}):", sharpest.msg);
    println!("  posterior entropy: {:.4} bits", sharpest.entropy_bits);
    println!("  adversary's guess: node {}", sharpest.best_guess);
    println!(
        "  true sender:       node {} (assigned prob {:.4})",
        truth.sender, sharpest.true_sender_prob
    );
    let mut top: Vec<(usize, f64)> = sharpest.posterior.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("  top suspects:");
    for (node, p) in top.into_iter().take(5).filter(|&(_, p)| p > 0.0) {
        println!("    node {node:>2}: {p:.4}");
    }
    Ok(())
}
