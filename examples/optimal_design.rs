//! Designs the optimal route-selection strategy for a deployment: solves
//! the paper's optimization problem (eqs. 15–17) under a latency budget
//! and prints the resulting distribution.
//!
//! Run with: `cargo run --release --example optimal_design [n] [c] [budget]`

use anonroute::prelude::*;

fn main() -> Result<(), Error> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let c: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let budget: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8.0);

    let model = SystemModel::new(n, c)?;
    let lmax = (n - 1).min(2 * budget.ceil() as usize + 20);
    println!("designing for {model}, expected-length budget {budget}, support 0..={lmax}\n");

    // 1. the best fixed-length strategy within budget
    let mut best_fixed = (0usize, f64::NEG_INFINITY);
    for l in 0..=budget.floor() as usize {
        let h = engine::anonymity_degree(&model, &PathLengthDist::fixed(l))?;
        if h > best_fixed.1 {
            best_fixed = (l, h);
        }
    }
    println!(
        "best fixed strategy within budget: F({}) with H* = {:.6}",
        best_fixed.0, best_fixed.1
    );

    // 2. the best uniform family member at exactly the budget
    let (delta, family) = optimize::best_uniform_with_mean(&model, lmax, budget as usize)?;
    println!(
        "best uniform at E[len]={budget}: U({},{}) with H* = {:.6}",
        budget as usize - delta,
        budget as usize + delta,
        family.h_star
    );

    // 3. the unconstrained-shape optimum at the same expected length
    let optimal = optimize::maximize_with_mean(&model, lmax, budget)?;
    println!(
        "general optimum at E[len]={budget}: H* = {:.6}",
        optimal.h_star
    );
    println!("\noptimal pmf (masses > 0.1%):");
    for (l, &p) in optimal.dist.pmf().iter().enumerate() {
        if p > 1e-3 {
            let bar = "#".repeat((p * 200.0).round() as usize);
            println!("  P[L={l:>3}] = {p:>7.4}  {bar}");
        }
    }

    // 4. what the budget buys
    let report = AnonymityReport::evaluate(&model, &optimal.dist)?;
    println!("\n{report}");
    println!(
        "ideal would be log2({n}) = {:.4} bits",
        model.max_entropy_bits()
    );
    Ok(())
}
