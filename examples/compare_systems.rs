//! Ranks the anonymous communication systems surveyed by the paper
//! (Section 2) by the anonymity their route-selection strategies achieve.
//!
//! Run with: `cargo run --release --example compare_systems`

use anonroute::prelude::*;
use anonroute::protocols::dcnet;

fn main() -> Result<(), Error> {
    let n = 100;
    let c = 1;
    println!("ranking surveyed systems at n={n}, c={c} (+ compromised receiver)\n");

    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for s in strategies::surveyed_systems(99) {
        let model = SystemModel::with_path_kind(n, c, s.path_kind)?;
        let report = AnonymityReport::evaluate(&model, &s.dist)?;
        rows.push((
            format!("{} [{}]", s.name, s.dist),
            report.h_star,
            report.expected_path_length,
            report.p_exposed,
        ));
    }
    // the non-rerouting baseline
    rows.push((
        "DC-Net [broadcast]".into(),
        dcnet::anonymity_degree(n, c),
        0.0,
        c as f64 / n as f64,
    ));
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    println!(
        "{:<38} {:>10} {:>8} {:>11}",
        "system", "H* (bits)", "E[len]", "P[exposed]"
    );
    for (name, h, len, exposed) in &rows {
        println!("{name:<38} {h:>10.4} {len:>8.2} {exposed:>11.4}");
    }

    println!("\nnotes:");
    println!("- DC-Net wins on anonymity but costs O(n^2) broadcast traffic per message;");
    println!("  the paper dismisses it as unscalable (Section 2).");
    println!("- Freedom's F(3) trails the single-proxy F(1): the paper's short-path effect.");
    println!("- Crowds' geometric lengths on cyclic paths keep observed forwarders in the");
    println!("  anonymity set, which lifts it above fixed strategies of similar cost.");
    Ok(())
}
