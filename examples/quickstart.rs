//! Quickstart: measure and improve the anonymity of a rerouting strategy.
//!
//! Run with: `cargo run --release --example quickstart`

use anonroute::prelude::*;

fn main() -> Result<(), Error> {
    // The paper's evaluation setting: 100 member nodes, 1 compromised,
    // plus the (always compromised) receiver.
    let model = SystemModel::new(100, 1)?;
    println!("system: {model}");
    println!(
        "ideal anonymity: log2(n) = {:.4} bits\n",
        model.max_entropy_bits()
    );

    // How anonymous are a few classic strategies?
    for (name, dist) in [
        ("direct send        F(0)", PathLengthDist::fixed(0)),
        ("single proxy       F(1)", PathLengthDist::fixed(1)),
        ("Freedom            F(3)", PathLengthDist::fixed(3)),
        ("Onion Routing I    F(5)", PathLengthDist::fixed(5)),
        ("uniform            U(2,8)", PathLengthDist::uniform(2, 8)?),
    ] {
        let report = AnonymityReport::evaluate(&model, &dist)?;
        println!("{name}: {report}");
    }

    // The paper's key insight: there is an *optimal* path-length
    // distribution. Solve for it at the same cost as Onion Routing I.
    let budget = 5.0; // expected hops we are willing to pay
    let optimal = optimize::maximize_with_mean(&model, 99, budget)?;
    let onion = engine::anonymity_degree(&model, &PathLengthDist::fixed(5))?;
    println!("\nat E[len] = {budget}:");
    println!("  fixed-length strategy:   H* = {onion:.6} bits");
    println!("  optimal variable-length: H* = {:.6} bits", optimal.h_star);
    println!("  gain: {:+.6} bits", optimal.h_star - onion);
    Ok(())
}
