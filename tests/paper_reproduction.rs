//! Integration tests pinning the paper's headline results through the
//! public facade API.

use anonroute::prelude::*;

fn h(model: &SystemModel, dist: &PathLengthDist) -> f64 {
    engine::anonymity_degree(model, dist).expect("valid configuration")
}

#[test]
fn observation_1_long_paths_can_hurt() {
    // "the anonymity of the system may NOT always be improved as path
    // length increases" (conclusion 1)
    let model = SystemModel::new(100, 1).unwrap();
    let values: Vec<f64> = (1..=99)
        .map(|l| h(&model, &PathLengthDist::fixed(l)))
        .collect();
    let peak = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let last = *values.last().unwrap();
    assert!(
        last < peak - 1e-4,
        "no long-path decline: last={last} peak={peak}"
    );
    // and the effect strengthens with more compromised nodes
    let model5 = SystemModel::new(100, 5).unwrap();
    let h20 = h(&model5, &PathLengthDist::fixed(20));
    let h90 = h(&model5, &PathLengthDist::fixed(90));
    assert!(h90 < h20);
}

#[test]
fn observation_2_uniform_lower_bound_three_matches_fixed_of_same_mean() {
    // conclusion 2
    let model = SystemModel::new(100, 1).unwrap();
    for (a, b) in [(3usize, 9usize), (5, 11), (3, 41), (10, 30)] {
        let mean = (a + b) / 2;
        let hu = h(&model, &PathLengthDist::uniform(a, b).unwrap());
        let hf = h(&model, &PathLengthDist::fixed(mean));
        assert!(
            (hu - hf).abs() < 1e-12,
            "U({a},{b}) vs F({mean}): {hu} vs {hf}"
        );
    }
}

#[test]
fn observation_3_optimization_is_solvable_and_beats_families() {
    // conclusion 3: the optimization problem yields an optimal distribution
    let model = SystemModel::new(60, 1).unwrap();
    let out = optimize::maximize(&model, 40).unwrap();
    for l in 0..=40 {
        assert!(out.h_star >= h(&model, &PathLengthDist::fixed(l)) - 1e-9);
    }
    for a in 0..=10 {
        for b in a..=40 {
            let hu = h(&model, &PathLengthDist::uniform(a, b).unwrap());
            assert!(out.h_star >= hu - 1e-9, "beaten by U({a},{b})");
        }
    }
}

#[test]
fn observation_4_variable_beats_fixed_and_log2n_bounds_everything() {
    // conclusion 4
    let model = SystemModel::new(100, 1).unwrap();
    let bound = model.max_entropy_bits();
    for mean in [4usize, 8, 15, 30] {
        let fixed = h(&model, &PathLengthDist::fixed(mean));
        let opt = optimize::maximize_with_mean(&model, 99, mean as f64).unwrap();
        assert!(opt.h_star >= fixed - 1e-12, "mean {mean}");
        assert!(opt.h_star < bound);
        assert!(fixed < bound);
    }
}

#[test]
fn short_path_effect_full_pattern() {
    // Figure 3(b): F(0)=0 < F(3) < F(1)=F(2) < F(4)
    let model = SystemModel::new(100, 1).unwrap();
    let f: Vec<f64> = (0..=4)
        .map(|l| h(&model, &PathLengthDist::fixed(l)))
        .collect();
    assert_eq!(f[0], 0.0);
    assert!((f[1] - f[2]).abs() < 1e-12);
    assert!(f[3] < f[1]);
    assert!(f[1] - f[3] < 1e-3);
    assert!(f[4] > f[1]);
}

#[test]
fn named_system_strategies_evaluate_cleanly() {
    for s in strategies::surveyed_systems(99) {
        let model = SystemModel::with_path_kind(100, 1, s.path_kind).unwrap();
        let report = AnonymityReport::evaluate(&model, &s.dist).unwrap();
        assert!(report.h_star > 0.0, "{}", s.name);
        assert!(report.h_star < model.max_entropy_bits());
        assert!(report.p_exposed >= 0.01 - 1e-12); // compromised-sender mass
    }
}

#[test]
fn closed_forms_and_engine_agree_through_the_facade() {
    use anonroute::core::analytic;
    let model = SystemModel::new(100, 1).unwrap();
    for l in [1usize, 7, 31, 80] {
        let t = analytic::theorem1_fixed(100, l).unwrap();
        assert!((t - h(&model, &PathLengthDist::fixed(l))).abs() < 1e-12);
    }
    let t3 = analytic::theorem3_uniform(100, 4, 16).unwrap();
    assert!((t3 - h(&model, &PathLengthDist::uniform(4, 16).unwrap())).abs() < 1e-12);
}
