//! Loopback integration of the relay network: an N-relay `127.0.0.1`
//! cluster delivers seeded traffic over real TCP, and the adversary's
//! measured anonymity degree from the per-link tap matches the analytic
//! `anonroute-core` prediction — the live-network analogue of the
//! simulator's validation loop, deterministic under a fixed seed.

use anonroute::adversary::{attack_trace, Adversary};
use anonroute::prelude::*;
use anonroute::relay::{run_cluster, ClusterConfig};
use anonroute::sim::traffic::{Arrival, UniformTraffic};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(n: usize, count: usize, seed: u64) -> Vec<Arrival> {
    UniformTraffic {
        count,
        interval_us: 0,
        payload_len: 16,
    }
    .generate(n, &mut StdRng::seed_from_u64(seed))
}

/// Runs one cluster and attacks its tap with the last `c` nodes
/// compromised; returns (empirical report, analytic H*).
fn measure(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    c: usize,
) -> (anonroute::adversary::AttackReport, f64) {
    let model = SystemModel::with_path_kind(config.n, c, config.path_kind).unwrap();
    let exact = engine::anonymity_degree(&model, &config.dist).unwrap();
    let outcome = run_cluster(config, arrivals).unwrap();
    assert_eq!(
        outcome.deliveries.len(),
        arrivals.len(),
        "loopback TCP must deliver everything"
    );
    let dropped: u64 = outcome.stats.iter().map(|s| s.dropped).sum();
    assert_eq!(dropped, 0, "honest cells must never be dropped");
    let compromised: Vec<usize> = (config.n - c..config.n).collect();
    let adversary = Adversary::new(config.n, &compromised).unwrap();
    let report = attack_trace(
        &adversary,
        &model,
        &config.dist,
        &outcome.trace,
        &outcome.originations,
    )
    .unwrap();
    (report, exact)
}

#[test]
fn measured_anonymity_over_tcp_matches_analytic_prediction() {
    let n = 12;
    let dist = PathLengthDist::uniform(1, 4).unwrap();
    let mut config = ClusterConfig::new(n, dist);
    config.seed = 42;
    let arrivals = workload(n, 500, 42);

    let (report, exact) = measure(&config, &arrivals, 1);
    let (lo, hi) = report.ci95();
    assert!(
        (lo - 0.05..=hi + 0.05).contains(&exact),
        "analytic {exact} outside the tap's empirical CI [{lo}, {hi}] (mean {})",
        report.empirical_h_star
    );

    // deterministic under a fixed seed: routes, handshakes, and junk all
    // derive from it, so a rerun measures the identical degree even
    // though TCP scheduling differs
    let (again, _) = measure(&config, &arrivals, 1);
    assert_eq!(report.empirical_h_star, again.empirical_h_star);
    assert_eq!(report.identification_rate, again.identification_rate);
}

#[test]
fn optimal_strategy_runs_over_tcp_and_matches_its_prediction() {
    // the paper's optimization output is just another PathLengthDist —
    // the client serves it over real sockets like any fixed strategy
    let n = 12;
    let model = SystemModel::new(n, 1).unwrap();
    let best = optimize::maximize_with_mean(&model, 8, 3.0).unwrap();
    let exact = engine::anonymity_degree(&model, &best.dist).unwrap();
    assert!((exact - best.h_star).abs() < 1e-9);

    let mut config = ClusterConfig::new(n, best.dist.clone());
    config.seed = 9;
    let arrivals = workload(n, 400, 9);
    let (report, _) = measure(&config, &arrivals, 1);
    let (lo, hi) = report.ci95();
    assert!(
        (lo - 0.06..=hi + 0.06).contains(&exact),
        "optimal strategy: analytic {exact} outside [{lo}, {hi}]"
    );
}

#[test]
fn cyclic_crowds_style_circuits_work_over_tcp() {
    // cyclic routes may revisit relays (including the sender); the relay
    // network must still peel/forward correctly, and the measurement must
    // still track the cyclic-path analysis
    let n = 10;
    let dist = PathLengthDist::geometric(0.5, 10).unwrap();
    let mut config = ClusterConfig::new(n, dist);
    config.path_kind = PathKind::Cyclic;
    config.seed = 5;
    let arrivals = workload(n, 400, 5);
    let (report, exact) = measure(&config, &arrivals, 1);
    let (lo, hi) = report.ci95();
    assert!(
        (lo - 0.08..=hi + 0.08).contains(&exact),
        "cyclic: analytic {exact} outside [{lo}, {hi}] (mean {})",
        report.empirical_h_star
    );
}
