//! Full-stack checks of the campaign subsystem through the `anonroute`
//! facade: parallel determinism, agreement with the direct engine, and
//! spec-file-driven runs — the same path the CLI exercises.

use anonroute::campaign::{report, run, spec};
use anonroute::prelude::*;

#[test]
fn facade_exposes_campaign_and_results_match_the_engine() {
    let grid = ScenarioGrid::new().ns([40]).cs([1, 3]).strategies([
        StrategySpec::Fixed(4),
        StrategySpec::Uniform(2, 8),
        StrategySpec::Geometric {
            forward_prob: 0.7,
            lmax: 15,
        },
    ]);
    let outcome = run(&grid, &CampaignConfig::default());
    assert_eq!(outcome.cells.len(), 6);
    assert_eq!(outcome.error_count(), 0);
    for cell in &outcome.cells {
        let model = SystemModel::new(cell.scenario.n, cell.scenario.c).unwrap();
        let dist = cell.scenario.strategy.realize(&model).unwrap();
        let expect = engine::anonymity_degree(&model, &dist).unwrap();
        let metrics = cell.outcome.as_ref().unwrap();
        assert!((metrics.h_star - expect).abs() < 1e-12, "{}", cell.scenario);
        assert!((metrics.mean_len - dist.mean()).abs() < 1e-12);
    }
}

#[test]
fn thread_count_does_not_change_rendered_results() {
    let grid = ScenarioGrid::new()
        .ns([30, 60])
        .cs(1..=3)
        .strategies((1..=8).map(StrategySpec::Fixed))
        .engines([EngineKind::Exact, EngineKind::MonteCarlo]);
    let serial = run(
        &grid,
        &CampaignConfig {
            threads: 1,
            mc_samples: 1_500,
            ..Default::default()
        },
    );
    let parallel = run(
        &grid,
        &CampaignConfig {
            threads: 6,
            mc_samples: 1_500,
            ..Default::default()
        },
    );
    assert_eq!(
        report::render_jsonl(&serial, false),
        report::render_jsonl(&parallel, false)
    );
}

#[test]
fn optimal_strategy_cells_beat_fixed_cells_at_equal_mean() {
    let grid = ScenarioGrid::new().ns([50]).cs([1]).strategies([
        StrategySpec::Fixed(5),
        StrategySpec::Optimal { mean: Some(5.0) },
    ]);
    let outcome = run(&grid, &CampaignConfig::default());
    let fixed = outcome.cells[0].outcome.as_ref().unwrap().h_star;
    let optimal = outcome.cells[1].outcome.as_ref().unwrap().h_star;
    assert!(
        optimal >= fixed - 1e-9,
        "optimal {optimal} vs fixed {fixed}"
    );
    let mean = outcome.cells[1].outcome.as_ref().unwrap().mean_len;
    assert!((mean - 5.0).abs() < 1e-6);
}

#[test]
fn spec_file_drives_a_mixed_engine_run() {
    let text = r#"
[grid]
n = [20]
c = [1]
path = ["simple", "cyclic"]
strategies = ["geometric:0.6:10"]
engines = ["exact", "mc"]

[run]
threads = 2
seed = 11
mc_samples = 8000
"#;
    let (grid, config) = spec::parse_spec(text, &CampaignConfig::default()).unwrap();
    let outcome = run(&grid, &config);
    assert_eq!(outcome.cells.len(), 4);
    assert_eq!(outcome.error_count(), 0);
    // Monte-Carlo agrees with the exact engine on both path kinds
    for pair in outcome.cells.chunks(2) {
        let exact = pair[0].outcome.as_ref().unwrap();
        let mc = pair[1].outcome.as_ref().unwrap();
        let se = mc.std_error.unwrap();
        assert!(
            (mc.h_star - exact.h_star).abs() <= 4.0 * se + 1e-9,
            "{}: {} vs {}",
            pair[1].scenario,
            mc.h_star,
            exact.h_star
        );
    }
}
