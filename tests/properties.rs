//! Property-based tests (proptest) on cross-crate invariants.

use anonroute::core::analytic;
use anonroute::core::engine::{observe, sender_posterior};
use anonroute::crypto::keys::KeyStore;
use anonroute::crypto::onion::{build, frame, peel, Peeled};
use anonroute::prelude::*;
use proptest::prelude::*;

fn arb_pmf(lmax: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 1..=lmax + 1)
        .prop_filter("needs positive mass", |v| v.iter().sum::<f64>() > 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn h_star_bounded_for_random_distributions(
        pmf in arb_pmf(20),
        c in 0usize..8,
    ) {
        let n = 30;
        let model = SystemModel::new(n, c).unwrap();
        let dist = PathLengthDist::from_pmf(pmf).unwrap();
        let h = engine::anonymity_degree(&model, &dist).unwrap();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (n as f64).log2() + 1e-12);
    }

    #[test]
    fn closed_form_c1_matches_engine_on_random_distributions(pmf in arb_pmf(15)) {
        let n = 40;
        let model = SystemModel::new(n, 1).unwrap();
        let dist = PathLengthDist::from_pmf(pmf).unwrap();
        let a = engine::anonymity_degree(&model, &dist).unwrap();
        let b = analytic::anonymity_degree_c1(n, &dist).unwrap();
        prop_assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn adding_compromised_nodes_never_helps(pmf in arb_pmf(12)) {
        let n = 25;
        let dist = PathLengthDist::from_pmf(pmf).unwrap();
        let mut prev = f64::INFINITY;
        for c in 0..6 {
            let model = SystemModel::new(n, c).unwrap();
            let h = engine::anonymity_degree(&model, &dist).unwrap();
            prop_assert!(h <= prev + 1e-9);
            prev = h;
        }
    }

    #[test]
    fn posteriors_are_valid_distributions(
        sender in 0usize..10,
        len in 0usize..6,
        seed in any::<u64>(),
        c in 1usize..4,
    ) {
        use rand::{Rng, SeedableRng};
        let n = 10;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // random simple path avoiding the sender
        let mut pool: Vec<usize> = (0..n).filter(|&x| x != sender).collect();
        let mut path = Vec::new();
        for _ in 0..len.min(pool.len()) {
            let k = rng.gen_range(0..pool.len());
            path.push(pool.swap_remove(k));
        }
        let compromised: Vec<bool> = (0..n).map(|i| i < c).collect();
        let model = SystemModel::new(n, c).unwrap();
        let dist = PathLengthDist::uniform(0, 5).unwrap();
        let obs = observe(sender, &path, &compromised);
        let post = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        let total: f64 = post.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(post.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        // the true sender always keeps nonzero posterior mass
        prop_assert!(post[sender] > 0.0, "true sender zeroed out");
    }

    #[test]
    fn onion_roundtrip_for_random_paths_and_payloads(
        raw_path in proptest::collection::vec(0u16..12, 1..6),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        junk_seed in any::<u8>(),
    ) {
        let keys = KeyStore::from_seed(b"prop", 12);
        let nonces: Vec<[u8; 12]> = (0..raw_path.len())
            .map(|i| {
                let mut x = [0u8; 12];
                x[0] = i as u8;
                x[1] = junk_seed;
                x
            })
            .collect();
        let wire = build(&keys, &raw_path, &payload, &nonces).unwrap();
        let mut j = junk_seed;
        let mut junk = move || { j = j.wrapping_mul(13).wrapping_add(7); j };
        let mut cell = frame(&wire, 2048, &mut junk).unwrap();
        for (i, &hop) in raw_path.iter().enumerate() {
            match peel(&keys.key(hop as usize), &cell).unwrap() {
                Peeled::Forward { next, content } => {
                    prop_assert_eq!(next, raw_path[i + 1]);
                    cell = frame(&content, 2048, &mut junk).unwrap();
                }
                Peeled::Deliver { payload: got } => {
                    prop_assert_eq!(i, raw_path.len() - 1);
                    prop_assert_eq!(&got, &payload);
                }
            }
        }
    }

    #[test]
    fn uniform_strategies_respect_theorem3_for_random_bounds(
        a in 3usize..20,
        width in 0usize..20,
    ) {
        let n = 60;
        let b = a + width;
        prop_assume!(b < n);
        prop_assume!((a + b) % 2 == 0);
        let model = SystemModel::new(n, 1).unwrap();
        let hu = engine::anonymity_degree(&model, &PathLengthDist::uniform(a, b).unwrap()).unwrap();
        let hf = engine::anonymity_degree(&model, &PathLengthDist::fixed((a + b) / 2)).unwrap();
        prop_assert!((hu - hf).abs() < 1e-10);
    }
}
