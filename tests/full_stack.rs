//! End-to-end integration: crypto + simulator + protocols + adversary,
//! validated against the exact analysis.

use anonroute::adversary::{attack_trace, ground_truth_path, Adversary};
use anonroute::core::engine::observe;
use anonroute::prelude::*;
use anonroute::protocols::crowds::crowd;
use anonroute::protocols::mix::mix_network;
use anonroute::protocols::onion_routing::onion_network;
use anonroute::protocols::RouteSampler;
use anonroute::sim::runtime::{run_live, LiveConfig};
use anonroute::sim::traffic::Arrival;
use anonroute::sim::{LatencyModel, SimTime, Simulation};

#[test]
fn onion_pipeline_reconstruction_matches_generative_observation() {
    let n = 15;
    let compromised = [12usize, 13, 14];
    let dist = PathLengthDist::uniform(1, 6).unwrap();
    let sampler = RouteSampler::new(n, dist, PathKind::Simple).unwrap();
    let nodes = onion_network(n, &sampler, 2048, b"itest").unwrap();
    let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 10, hi: 100 }, 21);
    for i in 0..300u64 {
        sim.schedule_origination(
            SimTime::from_micros(i * 300),
            (i % n as u64) as usize,
            vec![9],
        );
    }
    sim.run();

    let adv = Adversary::new(n, &compromised).unwrap();
    for o in sim.originations() {
        let reconstructed = adv.reconstruct(sim.trace(), o.msg).unwrap();
        let path = ground_truth_path(sim.trace(), o.msg);
        let expected = observe(o.sender, &path, adv.compromised());
        assert_eq!(reconstructed, expected, "msg {:?}", o.msg);
    }
}

#[test]
fn simulated_attack_tracks_exact_h_star_across_strategies() {
    let n = 25;
    let c = 2;
    let model = SystemModel::new(n, c).unwrap();
    for dist in [
        PathLengthDist::fixed(4),
        PathLengthDist::uniform(2, 7).unwrap(),
    ] {
        let exact = engine::anonymity_degree(&model, &dist).unwrap();
        let sampler = RouteSampler::new(n, dist.clone(), PathKind::Simple).unwrap();
        let nodes = onion_network(n, &sampler, 2048, b"sweep").unwrap();
        let mut sim = Simulation::new(nodes, LatencyModel::Constant(50), 5);
        let mut salt = 11u64;
        for i in 0..2500u64 {
            salt = salt.wrapping_mul(6364136223846793005).wrapping_add(1);
            sim.schedule_origination(
                SimTime::from_micros(i * 100),
                (salt >> 33) as usize % n,
                vec![],
            );
        }
        sim.run();
        let adv = Adversary::new(n, &[0, 1]).unwrap();
        let report = attack_trace(&adv, &model, &dist, sim.trace(), sim.originations()).unwrap();
        assert!(
            (report.empirical_h_star - exact).abs() < 4.0 * report.std_error + 0.02,
            "dist {dist}: empirical {} vs exact {exact}",
            report.empirical_h_star
        );
    }
}

#[test]
fn mix_network_preserves_payloads_and_breaks_timing_order() {
    let n = 12;
    let sampler = RouteSampler::new(n, PathLengthDist::fixed(3), PathKind::Simple).unwrap();
    let nodes = mix_network(n, &sampler, 2048, 4, 100_000, b"mixnet").unwrap();
    let mut sim = Simulation::new(nodes, LatencyModel::Constant(1_000), 13);
    for i in 0..60u64 {
        sim.schedule_origination(
            SimTime::from_micros(i * 10),
            (i % n as u64) as usize,
            vec![i as u8],
        );
    }
    sim.run();
    assert_eq!(sim.deliveries().len(), 60);
    // batching must have reordered deliveries relative to origination order
    let order: Vec<u64> = sim.deliveries().iter().map(|d| d.msg.0).collect();
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_ne!(order, sorted, "mixes should reorder messages");
    // and each payload arrives intact
    for d in sim.deliveries() {
        assert_eq!(d.payload, vec![d.msg.0 as u8]);
    }
}

#[test]
fn crowds_behaves_like_its_analytical_model() {
    let n = 15;
    let pf = 0.5;
    let dist = PathLengthDist::geometric(pf, 30).unwrap();
    let model = SystemModel::with_path_kind(n, 1, PathKind::Cyclic).unwrap();
    let exact = engine::anonymity_degree(&model, &dist).unwrap();

    let mut sim = Simulation::new(crowd(n, pf).unwrap(), LatencyModel::Constant(10), 31);
    let mut salt = 3u64;
    for i in 0..2500u64 {
        salt = salt.wrapping_mul(6364136223846793005).wrapping_add(1);
        sim.schedule_origination(
            SimTime::from_micros(i * 400),
            (salt >> 33) as usize % n,
            vec![],
        );
    }
    sim.run();
    let adv = Adversary::new(n, &[7]).unwrap();
    let report = attack_trace(&adv, &model, &dist, sim.trace(), sim.originations()).unwrap();
    assert!(
        (report.empirical_h_star - exact).abs() < 4.0 * report.std_error + 0.03,
        "empirical {} vs exact {exact}",
        report.empirical_h_star
    );
}

#[test]
fn live_runtime_agrees_with_discrete_event_engine_on_outcomes() {
    // same Crowds protocol through both runtimes: deliveries must match in
    // count and payload multiset (ordering may differ)
    let n = 8;
    let pf = 0.4;
    let arrivals: Vec<Arrival> = (0..40)
        .map(|i| Arrival {
            at: SimTime::ZERO,
            sender: i % n,
            payload: vec![i as u8],
        })
        .collect();

    let mut sim = Simulation::new(crowd(n, pf).unwrap(), LatencyModel::Constant(10), 1);
    for a in &arrivals {
        sim.schedule_origination(a.at, a.sender, a.payload.clone());
    }
    sim.run();

    let live = run_live(
        crowd(n, pf).unwrap(),
        LatencyModel::Constant(10),
        1,
        arrivals,
        LiveConfig::default(),
    );
    assert_eq!(live.deliveries.len(), sim.deliveries().len());
    let mut a: Vec<Vec<u8>> = live.deliveries.iter().map(|d| d.payload.clone()).collect();
    let mut b: Vec<Vec<u8>> = sim.deliveries().iter().map(|d| d.payload.clone()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn deterministic_replay_under_fixed_seed() {
    let n = 10;
    let sampler =
        RouteSampler::new(n, PathLengthDist::uniform(1, 4).unwrap(), PathKind::Simple).unwrap();
    let run = |seed: u64| {
        let nodes = onion_network(n, &sampler, 1024, b"replay").unwrap();
        let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 5, hi: 500 }, seed);
        for i in 0..50u64 {
            sim.schedule_origination(
                SimTime::from_micros(i * 99),
                (i % n as u64) as usize,
                vec![],
            );
        }
        sim.run();
        sim.trace().to_vec()
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}
