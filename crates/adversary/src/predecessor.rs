//! The predecessor attack (Wright, Adler, Levine, Shields — NDSS 2002,
//! the paper's reference \[23\]).
//!
//! A single observation bounds what the adversary learns about one
//! message. But when the same sender keeps communicating with the same
//! receiver across many *path reformations* (Crowds rebuilds paths every
//! 24 h; every session is a fresh path), the true sender appears as the
//! first compromised node's predecessor more often than any other node —
//! it is on **every** path, while other nodes only appear by chance. The
//! adversary simply counts predecessors over rounds and watches the true
//! sender climb to the top.
//!
//! This module implements the counting attack against reconstructed
//! observations and measures how anonymity degrades with the number of
//! observed rounds — quantifying why the paper's per-message anonymity
//! degree is an upper bound on long-term protection.

use std::collections::HashMap;

use anonroute_core::engine::Observation;
use anonroute_core::mathutil::entropy_bits;
use anonroute_sim::NodeId;

use crate::error::{Error, Result};
use crate::reconstruct::Adversary;

/// Accumulated predecessor statistics for one (suspected) communication
/// relationship across path reformations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredecessorTracker {
    counts: HashMap<NodeId, u64>,
    rounds_with_sighting: u64,
    rounds_total: u64,
}

impl PredecessorTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one round's observation. Rounds where no compromised node
    /// was on the path still count toward the total (the attack needs the
    /// on-path rate to normalize).
    pub fn ingest(&mut self, obs: &Observation) {
        self.rounds_total += 1;
        if let Some(origin) = obs.origin {
            // a compromised sender ends the game immediately
            *self.counts.entry(origin).or_insert(0) += u64::MAX / 2;
            self.rounds_with_sighting += 1;
            return;
        }
        if let Some(first_run) = obs.runs.first() {
            *self.counts.entry(first_run.pred).or_insert(0) += 1;
            self.rounds_with_sighting += 1;
        }
    }

    /// Rounds ingested so far.
    pub fn rounds(&self) -> u64 {
        self.rounds_total
    }

    /// Rounds in which some compromised node sat on the path.
    pub fn rounds_with_sighting(&self) -> u64 {
        self.rounds_with_sighting
    }

    /// The current top suspect and its count, if any sighting occurred.
    pub fn top_suspect(&self) -> Option<(NodeId, u64)> {
        self.counts
            .iter()
            .map(|(&n, &c)| (n, c))
            .max_by_key(|&(n, c)| (c, std::cmp::Reverse(n)))
    }

    /// Normalized predecessor histogram as a posterior-style score over
    /// `n` nodes (not a calibrated Bayesian posterior — the attack's
    /// classic form is a frequency argument).
    pub fn scores(&self, n: usize) -> Vec<f64> {
        let total: u64 = self.counts.values().sum();
        let mut v = vec![0.0; n];
        if total == 0 {
            return v;
        }
        for (&node, &c) in &self.counts {
            if node < n {
                v[node] = c as f64 / total as f64;
            }
        }
        v
    }

    /// Shannon entropy (bits) of the normalized scores. Note that this
    /// converges to the entropy of the *sighting distribution* (in which
    /// the true sender merely holds the largest share), not to zero — the
    /// attack's conclusive signal is the [`PredecessorTracker::margin`].
    pub fn score_entropy(&self, n: usize) -> f64 {
        entropy_bits(&self.scores(n))
    }

    /// Gap between the top score and the runner-up score (both in `[0,1]`).
    /// Grows with the number of rounds when a persistent sender exists;
    /// stays near zero for unrelated traffic.
    pub fn margin(&self, n: usize) -> f64 {
        let mut scores = self.scores(n);
        scores.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        match scores.as_slice() {
            [] => 0.0,
            [only] => *only,
            [top, second, ..] => top - second,
        }
    }
}

/// Result of a multi-round predecessor attack.
#[derive(Debug, Clone, PartialEq)]
pub struct PredecessorOutcome {
    /// Rounds observed.
    pub rounds: u64,
    /// The attack's final top suspect.
    pub top_suspect: Option<NodeId>,
    /// Whether the top suspect is the true sender.
    pub correct: bool,
    /// Entropy of the suspicion scores after all rounds.
    pub final_entropy_bits: f64,
    /// Final top-vs-runner-up margin.
    pub final_margin: f64,
    /// Margin trajectory sampled after each round (index = rounds seen).
    pub margin_by_round: Vec<f64>,
}

/// Runs the predecessor attack over a sequence of per-round observations
/// of the *same* sender↔receiver relationship.
///
/// # Errors
///
/// Returns [`Error::BadInput`] if no observations are supplied.
pub fn predecessor_attack(
    adversary: &Adversary,
    observations: &[Observation],
    true_sender: NodeId,
) -> Result<PredecessorOutcome> {
    if observations.is_empty() {
        return Err(Error::BadInput(
            "predecessor attack needs at least one round".into(),
        ));
    }
    let n = adversary.compromised().len();
    let mut tracker = PredecessorTracker::new();
    let mut margin_by_round = Vec::with_capacity(observations.len());
    for obs in observations {
        tracker.ingest(obs);
        margin_by_round.push(tracker.margin(n));
    }
    let top = tracker.top_suspect();
    Ok(PredecessorOutcome {
        rounds: tracker.rounds(),
        top_suspect: top.map(|(node, _)| node),
        correct: top.map(|(node, _)| node) == Some(true_sender),
        final_entropy_bits: tracker.score_entropy(n),
        final_margin: tracker.margin(n),
        margin_by_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::engine::{observe, sample_path};
    use anonroute_core::{PathLengthDist, SystemModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generates per-round observations for a fixed sender with fresh
    /// random paths each round (Crowds-style reformation).
    fn rounds(
        n: usize,
        c: usize,
        sender: usize,
        dist: &PathLengthDist,
        count: usize,
        seed: u64,
    ) -> (Adversary, Vec<Observation>) {
        let adv_ids: Vec<usize> = (n - c..n).collect();
        let adv = Adversary::new(n, &adv_ids).unwrap();
        let model = SystemModel::new(n, c).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scratch: Vec<usize> = (0..n).collect();
        let obs = (0..count)
            .map(|_| {
                let l = dist.sample(&mut rng);
                let path = sample_path(&model, sender, l, &mut rng, &mut scratch);
                observe(sender, &path, adv.compromised())
            })
            .collect();
        (adv, obs)
    }

    #[test]
    fn repeated_rounds_expose_the_sender() {
        let dist = PathLengthDist::uniform(2, 6).unwrap();
        let (adv, obs) = rounds(20, 3, 4, &dist, 400, 9);
        let outcome = predecessor_attack(&adv, &obs, 4).unwrap();
        assert!(outcome.correct, "attack failed: {:?}", outcome.top_suspect);
        // the sender's lead over the runner-up is decisive
        assert!(
            outcome.final_margin > 0.05,
            "margin {}",
            outcome.final_margin
        );
    }

    #[test]
    fn identification_becomes_reliable_with_rounds() {
        // one round is a coin toss; three hundred rounds identify the
        // sender in (nearly) every repetition
        let dist = PathLengthDist::uniform(1, 5).unwrap();
        let mut correct = 0;
        for seed in 0..20 {
            let (adv, obs) = rounds(15, 2, 3, &dist, 300, seed);
            let outcome = predecessor_attack(&adv, &obs, 3).unwrap();
            correct += outcome.correct as usize;
            // the margin has stabilized at a positive value
            assert!(outcome.final_margin >= 0.0);
        }
        assert!(
            correct >= 18,
            "only {correct}/20 runs identified the sender"
        );
    }

    #[test]
    fn single_round_rarely_concludes() {
        // with one round the top suspect is whatever predecessor happened
        // to be seen — the attack needs repetition to be reliable; over
        // many independent single-round attacks the hit rate stays low
        let dist = PathLengthDist::uniform(2, 6).unwrap();
        let mut hits = 0;
        for seed in 0..60 {
            let (adv, obs) = rounds(20, 2, 4, &dist, 1, seed);
            let outcome = predecessor_attack(&adv, &obs, 4).unwrap();
            hits += outcome.correct as usize;
        }
        assert!(hits < 30, "single rounds should rarely identify: {hits}/60");
    }

    #[test]
    fn compromised_sender_is_instant() {
        let _dist = PathLengthDist::fixed(3);
        let n = 10;
        let adv = Adversary::new(n, &[2]).unwrap();
        let obs = vec![observe(2, &[0, 1, 3], adv.compromised())];
        let outcome = predecessor_attack(&adv, &obs, 2).unwrap();
        assert!(outcome.correct);
        assert_eq!(outcome.top_suspect, Some(2));
    }

    #[test]
    fn empty_input_rejected() {
        let adv = Adversary::new(5, &[4]).unwrap();
        assert!(predecessor_attack(&adv, &[], 0).is_err());
    }

    #[test]
    fn tracker_counts_only_sighted_rounds() {
        let adv = Adversary::new(6, &[5]).unwrap();
        let mut t = PredecessorTracker::new();
        // a clean path: no compromised sighting
        t.ingest(&observe(0, &[1, 2], adv.compromised()));
        assert_eq!(t.rounds(), 1);
        assert_eq!(t.rounds_with_sighting(), 0);
        // a sighted path
        t.ingest(&observe(0, &[5, 2], adv.compromised()));
        assert_eq!(t.rounds_with_sighting(), 1);
        assert_eq!(t.top_suspect(), Some((0, 1)));
    }
}
