//! # anonroute-adversary
//!
//! The paper's passive adversary (Section 4 of Guan et al., ICDCS 2002),
//! implemented against the `anonroute-sim` simulator:
//!
//! 1. **Collection** — agents at compromised nodes (plus the receiver)
//!    report `(time, predecessor, successor)` tuples; everything else in
//!    the simulator's omniscient trace is invisible to them
//!    ([`Adversary::visible`]).
//! 2. **Correlation & reconstruction** — per-message tuples are sorted by
//!    time and merged into the observation structure the analysis engines
//!    consume ([`Adversary::reconstruct`]).
//! 3. **Inference** — the exact Bayesian posterior `P(sender = i | E)`
//!    is computed for each message and scored against the ground truth
//!    ([`attack::attack_trace`]), yielding an *empirical* anonymity degree
//!    with confidence intervals that must match the closed-form `H*(S)`.
//! 4. **Intersection** — across epochs of a multi-round scenario, each
//!    persistent session's per-round posteriors are folded into one
//!    cumulative posterior ([`attack::intersection_attack`]), measuring
//!    how anonymity decays as the network churns and the compromised set
//!    rotates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod error;
pub mod predecessor;
pub mod reconstruct;

pub use attack::{
    attack_trace, intersection_attack, AttackReport, EpochTrace, IntersectionOutcome,
    MessageVerdict,
};
pub use error::{Error, Result};
pub use predecessor::{predecessor_attack, PredecessorOutcome, PredecessorTracker};
pub use reconstruct::{ground_truth_path, Adversary};
