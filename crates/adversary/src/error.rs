//! Error types for `anonroute-adversary`.

use std::fmt;

/// Errors from observation reconstruction and attack evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Inconsistent inputs (bad node ids, model/adversary mismatch).
    BadInput(String),
    /// A message's trace is incomplete (never delivered in the window).
    Incomplete(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadInput(msg) => write!(f, "bad adversary input: {msg}"),
            Error::Incomplete(msg) => write!(f, "incomplete trace: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!Error::BadInput("x".into()).to_string().is_empty());
        assert!(!Error::Incomplete("y".into()).to_string().is_empty());
    }
}
