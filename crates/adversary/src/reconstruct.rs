//! Reconstructing the paper's observation tuples from raw simulator
//! traces.
//!
//! The simulator records every edge traversal (omniscient ground truth).
//! The adversary may only use the records its agents can legitimately see
//! (Section 4 of the paper): an edge is *visible* iff its source or
//! destination node is compromised, or its destination is the receiver.
//! Sorting a message's visible edges by time and merging consecutive
//! compromised sightings reproduces exactly the
//! [`anonroute_core::engine::Observation`] structure that the analysis
//! engines consume — the test suite checks bit-for-bit agreement with the
//! generative [`anonroute_core::engine::observe`] on the true path.

use std::collections::{HashMap, HashSet};

use anonroute_core::engine::{Observation, RunObservation, Succ};
use anonroute_sim::{Endpoint, MsgId, NodeId, TransferRecord};

use crate::error::{Error, Result};

/// The passive adversary: knows which member nodes are compromised and
/// controls the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adversary {
    compromised: Vec<bool>,
}

impl Adversary {
    /// Creates an adversary over an `n`-node system with the given
    /// compromised node ids.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadInput`] if an id is out of range or duplicated.
    pub fn new(n: usize, compromised_ids: &[NodeId]) -> Result<Self> {
        let mut compromised = vec![false; n];
        for &id in compromised_ids {
            if id >= n {
                return Err(Error::BadInput(format!(
                    "compromised id {id} out of range (n={n})"
                )));
            }
            if compromised[id] {
                return Err(Error::BadInput(format!("compromised id {id} listed twice")));
            }
            compromised[id] = true;
        }
        Ok(Adversary { compromised })
    }

    /// The compromised mask, indexed by node id.
    pub fn compromised(&self) -> &[bool] {
        &self.compromised
    }

    /// Number of compromised member nodes.
    pub fn c(&self) -> usize {
        self.compromised.iter().filter(|&&b| b).count()
    }

    fn is_visible(&self, r: &TransferRecord) -> bool {
        let from_comp = matches!(r.from, Endpoint::Node(id) if self.compromised[id]);
        let to_comp = matches!(r.to, Endpoint::Node(id) if self.compromised[id]);
        from_comp || to_comp || r.to == Endpoint::Receiver
    }

    /// Filters the ground-truth trace down to the records the adversary's
    /// agents can observe, preserving time order.
    pub fn visible<'a>(&self, trace: &'a [TransferRecord]) -> Vec<&'a TransferRecord> {
        let mut v: Vec<&TransferRecord> = trace.iter().filter(|r| self.is_visible(r)).collect();
        v.sort_by_key(|r| r.time);
        v
    }

    /// Reconstructs the observation for one message from the visible
    /// records.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Incomplete`] when the message never reached the
    /// receiver within the trace (e.g. a run cut off at a horizon).
    pub fn reconstruct(&self, trace: &[TransferRecord], msg: MsgId) -> Result<Observation> {
        let edges: Vec<&TransferRecord> = self
            .visible(trace)
            .into_iter()
            .filter(|r| r.msg == msg)
            .collect();

        let mut origin: Option<NodeId> = None;
        let mut runs: Vec<RunObservation> = Vec::new();
        let mut open: Option<RunObservation> = None;
        let mut receiver_pred: Option<NodeId> = None;
        let mut received: HashSet<NodeId> = HashSet::new();

        for r in &edges {
            // Origin detection: a compromised node emitting a message it
            // never received must be the sender.
            if let Endpoint::Node(f) = r.from {
                if self.compromised[f] && !received.contains(&f) && origin.is_none() {
                    origin = Some(f);
                }
            }
            match (r.from, r.to) {
                (from, Endpoint::Node(x)) if self.compromised[x] => {
                    received.insert(x);
                    let from_id = match from {
                        Endpoint::Node(f) => f,
                        Endpoint::Receiver => {
                            return Err(Error::BadInput(
                                "the receiver never forwards messages".into(),
                            ))
                        }
                    };
                    let extends = open
                        .as_ref()
                        .and_then(|run| run.nodes.last().copied())
                        .is_some_and(|tail| tail == from_id && self.compromised[from_id]);
                    if extends {
                        open.as_mut().expect("checked above").nodes.push(x);
                    } else {
                        if let Some(run) = open.take() {
                            // a dangling run without an observed close —
                            // cannot happen on a single path, but close it
                            // defensively rather than lose it
                            runs.push(run);
                        }
                        open = Some(RunObservation {
                            nodes: vec![x],
                            pred: from_id,
                            succ: Succ::Receiver, // fixed when the run closes
                        });
                    }
                }
                (Endpoint::Node(x), Endpoint::Node(v)) if self.compromised[x] => {
                    // compromised → honest: closes the open run
                    if let Some(mut run) = open.take() {
                        debug_assert_eq!(run.nodes.last(), Some(&x));
                        run.succ = Succ::Node(v);
                        runs.push(run);
                    }
                    // (if x is the compromised *sender*, there is no run —
                    // the origin report already covers it)
                }
                (from, Endpoint::Receiver) => match from {
                    Endpoint::Node(f) => {
                        receiver_pred = Some(f);
                        if self.compromised[f] {
                            if let Some(mut run) = open.take() {
                                run.succ = Succ::Receiver;
                                runs.push(run);
                            }
                        }
                    }
                    Endpoint::Receiver => {
                        return Err(Error::BadInput(
                            "the receiver never forwards messages".into(),
                        ))
                    }
                },
                _ => {}
            }
        }
        if let Some(run) = open.take() {
            runs.push(run);
        }
        let receiver_pred = receiver_pred.ok_or_else(|| {
            Error::Incomplete(format!("message {msg:?} never reached the receiver"))
        })?;
        Ok(Observation {
            origin,
            runs,
            receiver_pred,
        })
    }

    /// Reconstructs observations for every delivered message in the trace.
    pub fn reconstruct_all(&self, trace: &[TransferRecord]) -> HashMap<MsgId, Observation> {
        let mut ids: Vec<MsgId> = trace
            .iter()
            .filter(|r| r.to == Endpoint::Receiver)
            .map(|r| r.msg)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .filter_map(|id| self.reconstruct(trace, id).ok().map(|o| (id, o)))
            .collect()
    }
}

/// Recovers the full ground-truth path of a message from the omniscient
/// trace (for validation only — the adversary never sees this).
pub fn ground_truth_path(trace: &[TransferRecord], msg: MsgId) -> Vec<NodeId> {
    let mut edges: Vec<&TransferRecord> = trace.iter().filter(|r| r.msg == msg).collect();
    edges.sort_by_key(|r| r.time);
    edges
        .iter()
        .filter_map(|r| match r.to {
            Endpoint::Node(id) => Some(id),
            Endpoint::Receiver => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::engine::observe;
    use anonroute_sim::SimTime;

    /// Builds a synthetic trace for a single message along `path`.
    fn trace_for(sender: NodeId, path: &[NodeId]) -> Vec<TransferRecord> {
        let mut t = Vec::new();
        let mut from = Endpoint::Node(sender);
        for (k, &x) in path.iter().enumerate() {
            t.push(TransferRecord {
                time: SimTime::from_micros((k as u64 + 1) * 10),
                from,
                to: Endpoint::Node(x),
                msg: MsgId(0),
            });
            from = Endpoint::Node(x);
        }
        t.push(TransferRecord {
            time: SimTime::from_micros((path.len() as u64 + 1) * 10),
            from,
            to: Endpoint::Receiver,
            msg: MsgId(0),
        });
        t
    }

    fn check_agreement(n: usize, compromised: &[NodeId], sender: NodeId, path: &[NodeId]) {
        let adv = Adversary::new(n, compromised).unwrap();
        let trace = trace_for(sender, path);
        let got = adv.reconstruct(&trace, MsgId(0)).unwrap();
        let want = observe(sender, path, adv.compromised());
        assert_eq!(
            got, want,
            "sender={sender} path={path:?} compromised={compromised:?}"
        );
    }

    #[test]
    fn agreement_with_generative_observe_basic_cases() {
        check_agreement(8, &[5], 0, &[1, 2, 3]); // clean
        check_agreement(8, &[5], 0, &[5, 2, 3]); // first hop compromised
        check_agreement(8, &[5], 0, &[1, 2, 5]); // last hop compromised
        check_agreement(8, &[5], 0, &[1, 5, 3]); // middle
        check_agreement(8, &[5], 0, &[]); // direct send
        check_agreement(8, &[5], 5, &[1, 2]); // compromised sender
        check_agreement(8, &[4, 5], 0, &[4, 5, 1]); // adjacent run
        check_agreement(8, &[4, 5], 0, &[4, 1, 5]); // unit gap
        check_agreement(8, &[4, 5], 0, &[4, 1, 2, 5]); // wide gap
        check_agreement(8, &[4, 5], 0, &[2, 4, 5]); // run touching receiver
        check_agreement(8, &[4, 5, 6], 0, &[4, 5, 6]); // full run
    }

    #[test]
    fn agreement_on_cyclic_paths() {
        check_agreement(6, &[4], 0, &[4, 1, 4]); // revisit
        check_agreement(6, &[4], 0, &[0, 4, 0]); // sender on its own path
        check_agreement(6, &[4], 4, &[1, 4, 2]); // compromised sender revisited
    }

    #[test]
    fn exhaustive_agreement_on_small_system() {
        // all simple paths of length <= 3 in a 5-node system, c = 2
        let n = 5;
        let compromised = [3, 4];
        for sender in 0..n {
            let others: Vec<NodeId> = (0..n).filter(|&x| x != sender).collect();
            for l in 0..=3usize {
                // enumerate l-permutations
                fn perms(
                    pool: &[usize],
                    l: usize,
                    cur: &mut Vec<usize>,
                    used: &mut Vec<bool>,
                    out: &mut Vec<Vec<usize>>,
                ) {
                    if cur.len() == l {
                        out.push(cur.clone());
                        return;
                    }
                    for i in 0..pool.len() {
                        if !used[i] {
                            used[i] = true;
                            cur.push(pool[i]);
                            perms(pool, l, cur, used, out);
                            cur.pop();
                            used[i] = false;
                        }
                    }
                }
                let mut out = Vec::new();
                perms(
                    &others,
                    l,
                    &mut Vec::new(),
                    &mut vec![false; others.len()],
                    &mut out,
                );
                for path in out {
                    check_agreement(n, &compromised, sender, &path);
                }
            }
        }
    }

    #[test]
    fn incomplete_messages_are_reported() {
        let adv = Adversary::new(5, &[4]).unwrap();
        let mut trace = trace_for(0, &[1, 4, 2]);
        trace.pop(); // drop the delivery edge
        assert!(matches!(
            adv.reconstruct(&trace, MsgId(0)),
            Err(Error::Incomplete(_))
        ));
    }

    #[test]
    fn constructor_validates_ids() {
        assert!(Adversary::new(5, &[5]).is_err());
        assert!(Adversary::new(5, &[2, 2]).is_err());
        assert_eq!(Adversary::new(5, &[0, 2]).unwrap().c(), 2);
    }

    #[test]
    fn visibility_filter_hides_honest_edges() {
        let adv = Adversary::new(6, &[5]).unwrap();
        let trace = trace_for(0, &[1, 2, 3]);
        let visible = adv.visible(&trace);
        // only the delivery edge is visible (receiver compromised)
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].to, Endpoint::Receiver);
    }

    #[test]
    fn ground_truth_path_roundtrip() {
        let trace = trace_for(2, &[4, 0, 1]);
        assert_eq!(ground_truth_path(&trace, MsgId(0)), vec![4, 0, 1]);
    }
}
