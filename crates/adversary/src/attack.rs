//! The Bayesian attack and empirical anonymity measurement.
//!
//! For every delivered message the adversary reconstructs its observation,
//! computes the exact posterior over senders
//! ([`anonroute_core::engine::sender_posterior`]), and scores it. Averaging
//! the posterior entropies over many messages yields an *empirical*
//! anonymity degree that must agree with the closed-form `H*(S)` — the
//! end-to-end validation of the whole reproduction (analysis ⇄ simulated
//! system).

use std::collections::BTreeMap;

use anonroute_core::engine::FoldWorkspace;
use anonroute_core::epochs::{
    DecayCurve, EpochStat, EpochView, IntersectionPosterior, LiftScratch,
};
use anonroute_core::mathutil::entropy_bits;
use anonroute_core::{PathLengthDist, SystemModel};
use anonroute_sim::{MsgId, NodeId, Origination, TransferRecord};

use crate::error::{Error, Result};
use crate::reconstruct::Adversary;

/// The adversary's verdict on one message.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageVerdict {
    /// Which message.
    pub msg: MsgId,
    /// Posterior over senders (length `n`, sums to 1).
    pub posterior: Vec<f64>,
    /// Posterior entropy in bits.
    pub entropy_bits: f64,
    /// The adversary's best guess (argmax of the posterior).
    pub best_guess: NodeId,
    /// Posterior probability assigned to the true sender.
    pub true_sender_prob: f64,
    /// Whether the best guess was correct.
    pub identified: bool,
}

/// Aggregate results of attacking a whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Per-message verdicts, in message-id order.
    pub verdicts: Vec<MessageVerdict>,
    /// Mean posterior entropy — the empirical anonymity degree `Ĥ*`.
    pub empirical_h_star: f64,
    /// Standard error of the mean entropy.
    pub std_error: f64,
    /// Fraction of messages whose sender was guessed correctly.
    pub identification_rate: f64,
    /// Mean posterior probability on the true sender.
    pub mean_true_sender_prob: f64,
}

impl AttackReport {
    /// Two-sided 95% confidence interval for the empirical anonymity
    /// degree.
    pub fn ci95(&self) -> (f64, f64) {
        (
            self.empirical_h_star - 1.96 * self.std_error,
            self.empirical_h_star + 1.96 * self.std_error,
        )
    }
}

/// Attacks every delivered message in a simulation trace.
///
/// `model` and `dist` are the adversary's (correct, per the threat model)
/// knowledge of the system parameters and the path-selection strategy.
/// `originations` supply the ground-truth labels used only for scoring.
///
/// # Errors
///
/// Returns [`Error::BadInput`] when no message can be attacked, and
/// propagates posterior-computation failures (which indicate a mismatch
/// between the simulated protocol and the declared strategy).
pub fn attack_trace(
    adversary: &Adversary,
    model: &SystemModel,
    dist: &PathLengthDist,
    trace: &[TransferRecord],
    originations: &[Origination],
) -> Result<AttackReport> {
    if adversary.c() != model.c() || adversary.compromised().len() != model.n() {
        return Err(Error::BadInput(format!(
            "adversary ({} of {}) disagrees with model (c={} of n={})",
            adversary.c(),
            adversary.compromised().len(),
            model.c(),
            model.n()
        )));
    }
    let observations = adversary.reconstruct_all(trace);
    let mut verdicts = Vec::new();
    // built lazily on the first attackable message, then reused for the
    // whole trace: one log-factorial table instead of one per message
    let mut workspace: Option<FoldWorkspace> = None;
    for o in originations {
        let Some(obs) = observations.get(&o.msg) else {
            continue; // undelivered within the trace
        };
        if workspace.is_none() {
            workspace =
                Some(FoldWorkspace::new(model, dist).map_err(|e| {
                    Error::BadInput(format!("posterior failed for {:?}: {e}", o.msg))
                })?);
        }
        let posterior = workspace
            .as_ref()
            .expect("workspace was just initialized")
            .posterior(obs, adversary.compromised())
            .map_err(|e| Error::BadInput(format!("posterior failed for {:?}: {e}", o.msg)))?;
        verdicts.push(verdict_for(o.msg, posterior, o.sender));
    }
    if verdicts.is_empty() {
        return Err(Error::BadInput("no delivered messages to attack".into()));
    }
    // the report promises message-id order; `originations` usually
    // arrives sorted already, but callers replaying merged or multi-epoch
    // traces may not keep it that way
    verdicts.sort_by_key(|v| v.msg);
    Ok(aggregate(verdicts))
}

/// Scores one posterior against the ground-truth sender: the shared
/// verdict rule of the one-shot and intersection attacks (`identified`
/// means the argmax is correct with probability ≈ 1).
fn verdict_for(msg: MsgId, posterior: Vec<f64>, true_sender: NodeId) -> MessageVerdict {
    let best_guess = posterior
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
        .map(|(i, _)| i)
        .expect("posterior is nonempty");
    MessageVerdict {
        msg,
        entropy_bits: entropy_bits(&posterior),
        best_guess,
        true_sender_prob: posterior[true_sender],
        identified: best_guess == true_sender && posterior[best_guess] > 0.999_999,
        posterior,
    }
}

/// Builds the aggregate report from per-message verdicts (already in
/// message-id order).
fn aggregate(verdicts: Vec<MessageVerdict>) -> AttackReport {
    let k = verdicts.len() as f64;
    let mean = verdicts.iter().map(|v| v.entropy_bits).sum::<f64>() / k;
    let var = verdicts
        .iter()
        .map(|v| (v.entropy_bits - mean).powi(2))
        .sum::<f64>()
        / k;
    AttackReport {
        empirical_h_star: mean,
        std_error: (var / k).sqrt(),
        identification_rate: verdicts.iter().filter(|v| v.identified).count() as f64 / k,
        mean_true_sender_prob: verdicts.iter().map(|v| v.true_sender_prob).sum::<f64>() / k,
        verdicts,
    }
}

/// One epoch of a multi-round trace, as an engine hands it to the
/// intersection adversary.
///
/// Node ids in `trace` and `originations` live in the epoch's *local*
/// space `0..view.n()` (the compacted active set); `view` carries the
/// local↔universe mapping. Message ids are **session ids**: the same
/// `MsgId` across epochs means the same persistent sender–receiver
/// session, which is exactly the correlation the intersection attack
/// exploits.
#[derive(Debug, Clone, Copy)]
pub struct EpochTrace<'a> {
    /// The realized epoch (active set + compromised set, universe ids).
    pub view: &'a EpochView,
    /// The epoch's local system model (`n = view.n()`, same `c`).
    pub model: &'a SystemModel,
    /// The strategy in force this epoch.
    pub dist: &'a PathLengthDist,
    /// Link records in local node ids.
    pub trace: &'a [TransferRecord],
    /// Ground-truth originations (local sender ids, session-id messages).
    pub originations: &'a [Origination],
}

/// Outcome of the intersection attack: the final cumulative report plus
/// the per-epoch anonymity-decay curve.
#[derive(Debug, Clone)]
pub struct IntersectionOutcome {
    /// Per-session cumulative verdicts (posteriors over the *universe*),
    /// in session-id order, aggregated like a one-shot [`AttackReport`].
    pub report: AttackReport,
    /// Cumulative anonymity statistics after each epoch.
    pub decay: DecayCurve,
}

/// The long-term intersection attack: folds every epoch's per-session
/// posterior into a cumulative posterior over the `universe` member
/// nodes and reports the anonymity decay.
///
/// Per epoch, the adversary reconstructs each session's observation from
/// that epoch's visible trace, computes the exact single-round posterior
/// (in the epoch's local space), lifts it to universe space — offline
/// nodes get zero mass, the churn half of the attack — and multiplies it
/// into the session's [`IntersectionPosterior`]. A session silent in an
/// epoch (offline sender, undelivered message) folds nothing that round.
///
/// # Errors
///
/// Returns [`Error::BadInput`] when `rounds` is empty, an epoch's model
/// disagrees with its view, a session's ground-truth sender changes
/// between epochs, or no session was ever observed; propagates
/// posterior-computation failures like [`attack_trace`].
pub fn intersection_attack(
    universe: usize,
    rounds: &[EpochTrace<'_>],
) -> Result<IntersectionOutcome> {
    if rounds.is_empty() {
        return Err(Error::BadInput("no epochs to attack".into()));
    }
    // session id -> (ground-truth universe sender, cumulative posterior)
    let mut sessions: BTreeMap<MsgId, (NodeId, IntersectionPosterior)> = BTreeMap::new();
    let mut per_epoch = Vec::with_capacity(rounds.len());
    // reused across every session of every round: no per-fold allocation
    let mut posterior: Vec<f64> = Vec::new();
    let mut lift = LiftScratch::new(universe);
    for round in rounds {
        let view = round.view;
        if round.model.n() != view.n() || round.model.c() != view.compromised.len() {
            return Err(Error::BadInput(format!(
                "epoch {} model (n={}, c={}) disagrees with its view ({} active, {} compromised)",
                view.epoch + 1,
                round.model.n(),
                round.model.c(),
                view.n(),
                view.compromised.len()
            )));
        }
        let adversary = Adversary::new(view.n(), &view.local_compromised_ids())?;
        let observations = adversary.reconstruct_all(round.trace);
        // the epoch's lift degenerates to the identity when every member
        // is active, letting the fold skip the scatter entirely
        let identity_lift =
            view.n() == universe && view.active.iter().enumerate().all(|(i, &u)| i == u);
        // one workspace per epoch, shared by every session this round —
        // built lazily so rounds with nothing delivered build nothing
        let mut workspace: Option<FoldWorkspace> = None;
        for o in round.originations {
            if o.sender >= view.n() {
                return Err(Error::BadInput(format!(
                    "epoch {} origination names local sender {} (n_e={})",
                    view.epoch + 1,
                    o.sender,
                    view.n()
                )));
            }
            let truth = view.active[o.sender];
            let (expected, acc) = sessions
                .entry(o.msg)
                .or_insert_with(|| (truth, IntersectionPosterior::new(universe)));
            if *expected != truth {
                return Err(Error::BadInput(format!(
                    "session {:?} changed senders between epochs ({} vs {truth}): \
                     sessions must be persistent",
                    o.msg, *expected
                )));
            }
            let Some(obs) = observations.get(&o.msg) else {
                continue; // undelivered within this epoch's trace
            };
            let wrap = |e: anonroute_core::Error| {
                Error::BadInput(format!(
                    "posterior failed for {:?} in epoch {}: {e}",
                    o.msg,
                    view.epoch + 1
                ))
            };
            if workspace.is_none() {
                workspace = Some(FoldWorkspace::new(round.model, round.dist).map_err(wrap)?);
            }
            workspace
                .as_ref()
                .expect("workspace was just initialized")
                .posterior_into(obs, adversary.compromised(), &mut posterior)
                .map_err(wrap)?;
            if identity_lift {
                acc.fold(&posterior)
            } else {
                lift.lifted(&view.active, &posterior, |p| acc.fold(p))
            }
            .map_err(|e| Error::BadInput(e.to_string()))?;
        }
        if sessions.is_empty() {
            return Err(Error::BadInput("no sessions observed so far".into()));
        }
        per_epoch.push(epoch_stat(view.epoch + 1, &sessions));
    }
    let verdicts: Vec<MessageVerdict> = sessions
        .into_iter() // BTreeMap iteration: session-id order by construction
        .map(|(msg, (truth, acc))| verdict_for(msg, acc.posterior(), truth))
        .collect();
    Ok(IntersectionOutcome {
        report: aggregate(verdicts),
        decay: DecayCurve { per_epoch },
    })
}

/// Aggregates the cumulative state of every known session after one
/// more epoch has been folded.
fn epoch_stat(
    epoch: usize,
    sessions: &BTreeMap<MsgId, (NodeId, IntersectionPosterior)>,
) -> EpochStat {
    let k = sessions.len() as f64;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut support = 0.0;
    let mut identified = 0usize;
    for (truth, acc) in sessions.values() {
        let h = acc.entropy_bits();
        sum += h;
        sum_sq += h * h;
        support += acc.support() as f64;
        let (guess, p) = acc.best_guess();
        if guess == *truth && p > 0.999_999 {
            identified += 1;
        }
    }
    let mean = sum / k;
    let var = (sum_sq / k - mean * mean).max(0.0);
    EpochStat {
        epoch,
        mean_entropy_bits: mean,
        std_error: (var / k).sqrt(),
        identification_rate: identified as f64 / k,
        mean_support: support / k,
        sessions: sessions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::{engine, PathKind};
    use anonroute_protocols::crowds::crowd;
    use anonroute_protocols::onion_routing::onion_network;
    use anonroute_protocols::RouteSampler;
    use anonroute_sim::{LatencyModel, SimTime, Simulation};

    #[test]
    fn empirical_anonymity_matches_exact_engine_for_onions() {
        let n = 30;
        let c = 1;
        let dist = PathLengthDist::uniform(1, 6).unwrap();
        let model = SystemModel::new(n, c).unwrap();
        let exact = engine::anonymity_degree(&model, &dist).unwrap();

        let sampler = RouteSampler::new(n, dist.clone(), PathKind::Simple).unwrap();
        let nodes = onion_network(n, &sampler, 2048, b"attack-test").unwrap();
        let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 100, hi: 900 }, 3);
        // senders must be uniform (the model's prior)
        let mut salt = 0u64;
        for i in 0..3000u64 {
            salt = salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sender = (salt >> 33) as usize % n;
            sim.schedule_origination(SimTime::from_micros(i * 50), sender, vec![0u8; 8]);
        }
        sim.run();

        let adversary = Adversary::new(n, &[n - 1]).unwrap();
        let report =
            attack_trace(&adversary, &model, &dist, sim.trace(), sim.originations()).unwrap();
        let (lo, hi) = report.ci95();
        assert!(
            (lo - 0.05..=hi + 0.05).contains(&exact),
            "exact {exact} outside empirical CI [{lo}, {hi}] (mean {})",
            report.empirical_h_star
        );
    }

    #[test]
    fn empirical_anonymity_matches_exact_engine_for_crowds() {
        let n = 20;
        let pf = 0.6;
        let lmax = 40; // truncation far in the geometric tail
        let dist = PathLengthDist::geometric(pf, lmax).unwrap();
        let model = SystemModel::with_path_kind(n, 1, PathKind::Cyclic).unwrap();
        let exact = engine::anonymity_degree(&model, &dist).unwrap();

        let mut sim = Simulation::new(crowd(n, pf).unwrap(), LatencyModel::Constant(100), 8);
        let mut salt = 7u64;
        for i in 0..3000u64 {
            salt = salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sender = (salt >> 33) as usize % n;
            sim.schedule_origination(SimTime::from_micros(i * 1000), sender, vec![1]);
        }
        sim.run();

        let adversary = Adversary::new(n, &[0]).unwrap();
        let report =
            attack_trace(&adversary, &model, &dist, sim.trace(), sim.originations()).unwrap();
        let (lo, hi) = report.ci95();
        assert!(
            (lo - 0.08..=hi + 0.08).contains(&exact),
            "exact {exact} outside empirical CI [{lo}, {hi}] (mean {})",
            report.empirical_h_star
        );
    }

    #[test]
    fn compromised_first_hop_identifies_sender_with_fixed_length_one() {
        let n = 10;
        let dist = PathLengthDist::fixed(1);
        let model = SystemModel::new(n, 1).unwrap();
        let sampler = RouteSampler::new(n, dist.clone(), PathKind::Simple).unwrap();
        let nodes = onion_network(n, &sampler, 1024, b"id-test").unwrap();
        let mut sim = Simulation::new(nodes, LatencyModel::Constant(10), 5);
        for i in 0..200u64 {
            sim.schedule_origination(SimTime::from_micros(i * 100), (i % 10) as usize, vec![]);
        }
        sim.run();
        let adversary = Adversary::new(n, &[9]).unwrap();
        let report =
            attack_trace(&adversary, &model, &dist, sim.trace(), sim.originations()).unwrap();
        // whenever node 9 was the single intermediate (or the sender), the
        // sender is fully identified; that's 2/10 of messages in expectation
        assert!(report.identification_rate > 0.08);
        assert!(report.identification_rate < 0.40);
        // scoring sanity
        assert!(report.mean_true_sender_prob > 1.0 / n as f64);
    }

    #[test]
    fn mismatched_adversary_and_model_are_rejected() {
        let model = SystemModel::new(10, 2).unwrap();
        let adversary = Adversary::new(10, &[1]).unwrap();
        let dist = PathLengthDist::fixed(1);
        assert!(attack_trace(&adversary, &model, &dist, &[], &[]).is_err());
    }

    /// Synthetic single-message trace along `path`, using `msg` as id.
    fn trace_for(msg: MsgId, sender: NodeId, path: &[NodeId]) -> Vec<TransferRecord> {
        use anonroute_sim::{Endpoint, SimTime};
        let mut t = Vec::new();
        let mut from = Endpoint::Node(sender);
        for (k, &x) in path.iter().enumerate() {
            t.push(TransferRecord {
                time: SimTime::from_micros(msg.0 * 1000 + (k as u64 + 1) * 10),
                from,
                to: Endpoint::Node(x),
                msg,
            });
            from = Endpoint::Node(x);
        }
        t.push(TransferRecord {
            time: SimTime::from_micros(msg.0 * 1000 + (path.len() as u64 + 1) * 10),
            from,
            to: Endpoint::Receiver,
            msg,
        });
        t
    }

    #[test]
    fn attack_trace_verdicts_are_in_message_id_order_even_for_shuffled_originations() {
        use anonroute_sim::SimTime;
        let n = 8;
        let model = SystemModel::new(n, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 2).unwrap();
        let adversary = Adversary::new(n, &[7]).unwrap();
        let mut trace = Vec::new();
        for (msg, sender, path) in [
            (MsgId(2), 0, vec![1, 2]),
            (MsgId(0), 3, vec![4]),
            (MsgId(1), 5, vec![7, 2]),
        ] {
            trace.extend(trace_for(msg, sender, &path));
        }
        // originations deliberately out of message-id order
        let originations = vec![
            Origination {
                time: SimTime::ZERO,
                sender: 0,
                msg: MsgId(2),
            },
            Origination {
                time: SimTime::ZERO,
                sender: 5,
                msg: MsgId(1),
            },
            Origination {
                time: SimTime::ZERO,
                sender: 3,
                msg: MsgId(0),
            },
        ];
        let report = attack_trace(&adversary, &model, &dist, &trace, &originations).unwrap();
        let ids: Vec<u64> = report.verdicts.iter().map(|v| v.msg.0).collect();
        assert_eq!(ids, vec![0, 1, 2], "docs promise message-id order");
    }

    /// A two-epoch fixture over a 6-node universe without churn: every
    /// session sends in both epochs; the compromised node differs.
    fn two_epoch_views() -> (EpochView, EpochView) {
        let e0 = EpochView {
            epoch: 0,
            active: (0..6).collect(),
            compromised: vec![5],
        };
        let e1 = EpochView {
            epoch: 1,
            active: (0..6).collect(),
            compromised: vec![4],
        };
        (e0, e1)
    }

    #[test]
    fn single_epoch_intersection_is_bit_identical_to_attack_trace() {
        use anonroute_sim::SimTime;
        let n = 6;
        let model = SystemModel::new(n, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 3).unwrap();
        let (view, _) = two_epoch_views();
        let mut trace = Vec::new();
        let mut originations = Vec::new();
        for (msg, sender, path) in [
            (MsgId(0), 0, vec![1, 2]),
            (MsgId(1), 2, vec![5, 3]),
            (MsgId(2), 4, vec![1]),
        ] {
            trace.extend(trace_for(msg, sender, &path));
            originations.push(Origination {
                time: SimTime::ZERO,
                sender,
                msg,
            });
        }
        let adversary = Adversary::new(n, &[5]).unwrap();
        let one_shot = attack_trace(&adversary, &model, &dist, &trace, &originations).unwrap();
        let outcome = intersection_attack(
            n,
            &[EpochTrace {
                view: &view,
                model: &model,
                dist: &dist,
                trace: &trace,
                originations: &originations,
            }],
        )
        .unwrap();
        assert_eq!(outcome.report, one_shot, "single epoch ≡ one-shot, bitwise");
        assert_eq!(outcome.decay.per_epoch.len(), 1);
        assert_eq!(
            outcome.decay.first().mean_entropy_bits,
            one_shot.empirical_h_star
        );
    }

    #[test]
    fn intersection_verdicts_stay_in_session_order_across_epochs() {
        use anonroute_sim::SimTime;
        let n = 6;
        let model = SystemModel::new(n, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 2).unwrap();
        let (v0, v1) = two_epoch_views();
        // epoch traces list sessions in *different* shuffled orders
        let plan0 = [
            (MsgId(2), 0, vec![1]),
            (MsgId(0), 1, vec![3, 2]),
            (MsgId(1), 3, vec![2]),
        ];
        let plan1 = [
            (MsgId(1), 3, vec![0, 1]),
            (MsgId(2), 0, vec![2]),
            (MsgId(0), 1, vec![5, 3]),
        ];
        let build = |plan: &[(MsgId, NodeId, Vec<NodeId>)]| {
            let mut trace = Vec::new();
            let mut orig = Vec::new();
            for (msg, sender, path) in plan {
                trace.extend(trace_for(*msg, *sender, path));
                orig.push(Origination {
                    time: SimTime::ZERO,
                    sender: *sender,
                    msg: *msg,
                });
            }
            (trace, orig)
        };
        let (t0, o0) = build(&plan0);
        let (t1, o1) = build(&plan1);
        let outcome = intersection_attack(
            n,
            &[
                EpochTrace {
                    view: &v0,
                    model: &model,
                    dist: &dist,
                    trace: &t0,
                    originations: &o0,
                },
                EpochTrace {
                    view: &v1,
                    model: &model,
                    dist: &dist,
                    trace: &t1,
                    originations: &o1,
                },
            ],
        )
        .unwrap();
        let ids: Vec<u64> = outcome.report.verdicts.iter().map(|v| v.msg.0).collect();
        assert_eq!(ids, vec![0, 1, 2], "intersection merge must keep id order");
        assert_eq!(outcome.decay.per_epoch.len(), 2);
        // more epochs can only shrink the candidate support
        assert!(outcome.decay.last().mean_support <= outcome.decay.first().mean_support);
    }

    #[test]
    fn intersection_excludes_churned_out_candidates() {
        use anonroute_sim::SimTime;
        let n = 6;
        let dist = PathLengthDist::uniform(1, 2).unwrap();
        let model0 = SystemModel::new(6, 1).unwrap();
        let v0 = EpochView {
            epoch: 0,
            active: (0..6).collect(),
            compromised: vec![5],
        };
        // epoch 2: nodes 3 and 4 churn out; locals are [0, 1, 2, 5]
        let v1 = EpochView {
            epoch: 1,
            active: vec![0, 1, 2, 5],
            compromised: vec![5],
        };
        let model1 = SystemModel::new(4, 1).unwrap();
        // session 0: sender 0 (universe) both epochs
        let t0 = trace_for(MsgId(0), 0, &[1, 2]);
        let o0 = vec![Origination {
            time: SimTime::ZERO,
            sender: 0,
            msg: MsgId(0),
        }];
        let t1 = trace_for(MsgId(0), 0, &[1]); // local ids: 0->0, 1->1
        let o1 = vec![Origination {
            time: SimTime::ZERO,
            sender: 0,
            msg: MsgId(0),
        }];
        let outcome = intersection_attack(
            n,
            &[
                EpochTrace {
                    view: &v0,
                    model: &model0,
                    dist: &dist,
                    trace: &t0,
                    originations: &o0,
                },
                EpochTrace {
                    view: &v1,
                    model: &model1,
                    dist: &dist,
                    trace: &t1,
                    originations: &o1,
                },
            ],
        )
        .unwrap();
        let verdict = &outcome.report.verdicts[0];
        assert_eq!(
            verdict.posterior[3], 0.0,
            "offline node cannot be the sender"
        );
        assert_eq!(
            verdict.posterior[4], 0.0,
            "offline node cannot be the sender"
        );
        assert!(verdict.posterior[0] > 0.0, "the true sender survives");
        assert!(
            outcome.decay.last().mean_support < outcome.decay.first().mean_support,
            "churn shrinks the anonymity set"
        );
    }

    #[test]
    fn intersection_rejects_bad_inputs() {
        use anonroute_sim::SimTime;
        let dist = PathLengthDist::fixed(1);
        let model = SystemModel::new(6, 1).unwrap();
        let (v0, v1) = two_epoch_views();
        assert!(intersection_attack(6, &[]).is_err(), "no epochs");
        // model size disagrees with the view
        let small = SystemModel::new(4, 1).unwrap();
        let t = trace_for(MsgId(0), 0, &[1]);
        let o = vec![Origination {
            time: SimTime::ZERO,
            sender: 0,
            msg: MsgId(0),
        }];
        assert!(intersection_attack(
            6,
            &[EpochTrace {
                view: &v0,
                model: &small,
                dist: &dist,
                trace: &t,
                originations: &o,
            }]
        )
        .is_err());
        // a session that changes senders between epochs is rejected
        let o_changed = vec![Origination {
            time: SimTime::ZERO,
            sender: 2,
            msg: MsgId(0),
        }];
        let t_changed = trace_for(MsgId(0), 2, &[1]);
        let err = intersection_attack(
            6,
            &[
                EpochTrace {
                    view: &v0,
                    model: &model,
                    dist: &dist,
                    trace: &t,
                    originations: &o,
                },
                EpochTrace {
                    view: &v1,
                    model: &model,
                    dist: &dist,
                    trace: &t_changed,
                    originations: &o_changed,
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("persistent"), "{err}");
    }
}
