//! The Bayesian attack and empirical anonymity measurement.
//!
//! For every delivered message the adversary reconstructs its observation,
//! computes the exact posterior over senders
//! ([`anonroute_core::engine::sender_posterior`]), and scores it. Averaging
//! the posterior entropies over many messages yields an *empirical*
//! anonymity degree that must agree with the closed-form `H*(S)` — the
//! end-to-end validation of the whole reproduction (analysis ⇄ simulated
//! system).

use anonroute_core::engine::sender_posterior;
use anonroute_core::mathutil::entropy_bits;
use anonroute_core::{PathLengthDist, SystemModel};
use anonroute_sim::{MsgId, NodeId, Origination, TransferRecord};

use crate::error::{Error, Result};
use crate::reconstruct::Adversary;

/// The adversary's verdict on one message.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageVerdict {
    /// Which message.
    pub msg: MsgId,
    /// Posterior over senders (length `n`, sums to 1).
    pub posterior: Vec<f64>,
    /// Posterior entropy in bits.
    pub entropy_bits: f64,
    /// The adversary's best guess (argmax of the posterior).
    pub best_guess: NodeId,
    /// Posterior probability assigned to the true sender.
    pub true_sender_prob: f64,
    /// Whether the best guess was correct.
    pub identified: bool,
}

/// Aggregate results of attacking a whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Per-message verdicts, in message-id order.
    pub verdicts: Vec<MessageVerdict>,
    /// Mean posterior entropy — the empirical anonymity degree `Ĥ*`.
    pub empirical_h_star: f64,
    /// Standard error of the mean entropy.
    pub std_error: f64,
    /// Fraction of messages whose sender was guessed correctly.
    pub identification_rate: f64,
    /// Mean posterior probability on the true sender.
    pub mean_true_sender_prob: f64,
}

impl AttackReport {
    /// Two-sided 95% confidence interval for the empirical anonymity
    /// degree.
    pub fn ci95(&self) -> (f64, f64) {
        (
            self.empirical_h_star - 1.96 * self.std_error,
            self.empirical_h_star + 1.96 * self.std_error,
        )
    }
}

/// Attacks every delivered message in a simulation trace.
///
/// `model` and `dist` are the adversary's (correct, per the threat model)
/// knowledge of the system parameters and the path-selection strategy.
/// `originations` supply the ground-truth labels used only for scoring.
///
/// # Errors
///
/// Returns [`Error::BadInput`] when no message can be attacked, and
/// propagates posterior-computation failures (which indicate a mismatch
/// between the simulated protocol and the declared strategy).
pub fn attack_trace(
    adversary: &Adversary,
    model: &SystemModel,
    dist: &PathLengthDist,
    trace: &[TransferRecord],
    originations: &[Origination],
) -> Result<AttackReport> {
    if adversary.c() != model.c() || adversary.compromised().len() != model.n() {
        return Err(Error::BadInput(format!(
            "adversary ({} of {}) disagrees with model (c={} of n={})",
            adversary.c(),
            adversary.compromised().len(),
            model.c(),
            model.n()
        )));
    }
    let observations = adversary.reconstruct_all(trace);
    let mut verdicts = Vec::new();
    for o in originations {
        let Some(obs) = observations.get(&o.msg) else {
            continue; // undelivered within the trace
        };
        let posterior = sender_posterior(model, dist, obs, adversary.compromised())
            .map_err(|e| Error::BadInput(format!("posterior failed for {:?}: {e}", o.msg)))?;
        let entropy = entropy_bits(&posterior);
        let best_guess = posterior
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .expect("posterior is nonempty");
        verdicts.push(MessageVerdict {
            msg: o.msg,
            entropy_bits: entropy,
            best_guess,
            true_sender_prob: posterior[o.sender],
            identified: best_guess == o.sender && posterior[best_guess] > 0.999_999,
            posterior,
        });
    }
    if verdicts.is_empty() {
        return Err(Error::BadInput("no delivered messages to attack".into()));
    }
    let k = verdicts.len() as f64;
    let mean = verdicts.iter().map(|v| v.entropy_bits).sum::<f64>() / k;
    let var = verdicts
        .iter()
        .map(|v| (v.entropy_bits - mean).powi(2))
        .sum::<f64>()
        / k;
    let report = AttackReport {
        empirical_h_star: mean,
        std_error: (var / k).sqrt(),
        identification_rate: verdicts.iter().filter(|v| v.identified).count() as f64 / k,
        mean_true_sender_prob: verdicts.iter().map(|v| v.true_sender_prob).sum::<f64>() / k,
        verdicts,
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::{engine, PathKind};
    use anonroute_protocols::crowds::crowd;
    use anonroute_protocols::onion_routing::onion_network;
    use anonroute_protocols::RouteSampler;
    use anonroute_sim::{LatencyModel, SimTime, Simulation};

    #[test]
    fn empirical_anonymity_matches_exact_engine_for_onions() {
        let n = 30;
        let c = 1;
        let dist = PathLengthDist::uniform(1, 6).unwrap();
        let model = SystemModel::new(n, c).unwrap();
        let exact = engine::anonymity_degree(&model, &dist).unwrap();

        let sampler = RouteSampler::new(n, dist.clone(), PathKind::Simple).unwrap();
        let nodes = onion_network(n, &sampler, 2048, b"attack-test").unwrap();
        let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 100, hi: 900 }, 3);
        // senders must be uniform (the model's prior)
        let mut salt = 0u64;
        for i in 0..3000u64 {
            salt = salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sender = (salt >> 33) as usize % n;
            sim.schedule_origination(SimTime::from_micros(i * 50), sender, vec![0u8; 8]);
        }
        sim.run();

        let adversary = Adversary::new(n, &[n - 1]).unwrap();
        let report =
            attack_trace(&adversary, &model, &dist, sim.trace(), sim.originations()).unwrap();
        let (lo, hi) = report.ci95();
        assert!(
            (lo - 0.05..=hi + 0.05).contains(&exact),
            "exact {exact} outside empirical CI [{lo}, {hi}] (mean {})",
            report.empirical_h_star
        );
    }

    #[test]
    fn empirical_anonymity_matches_exact_engine_for_crowds() {
        let n = 20;
        let pf = 0.6;
        let lmax = 40; // truncation far in the geometric tail
        let dist = PathLengthDist::geometric(pf, lmax).unwrap();
        let model = SystemModel::with_path_kind(n, 1, PathKind::Cyclic).unwrap();
        let exact = engine::anonymity_degree(&model, &dist).unwrap();

        let mut sim = Simulation::new(crowd(n, pf).unwrap(), LatencyModel::Constant(100), 8);
        let mut salt = 7u64;
        for i in 0..3000u64 {
            salt = salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sender = (salt >> 33) as usize % n;
            sim.schedule_origination(SimTime::from_micros(i * 1000), sender, vec![1]);
        }
        sim.run();

        let adversary = Adversary::new(n, &[0]).unwrap();
        let report =
            attack_trace(&adversary, &model, &dist, sim.trace(), sim.originations()).unwrap();
        let (lo, hi) = report.ci95();
        assert!(
            (lo - 0.08..=hi + 0.08).contains(&exact),
            "exact {exact} outside empirical CI [{lo}, {hi}] (mean {})",
            report.empirical_h_star
        );
    }

    #[test]
    fn compromised_first_hop_identifies_sender_with_fixed_length_one() {
        let n = 10;
        let dist = PathLengthDist::fixed(1);
        let model = SystemModel::new(n, 1).unwrap();
        let sampler = RouteSampler::new(n, dist.clone(), PathKind::Simple).unwrap();
        let nodes = onion_network(n, &sampler, 1024, b"id-test").unwrap();
        let mut sim = Simulation::new(nodes, LatencyModel::Constant(10), 5);
        for i in 0..200u64 {
            sim.schedule_origination(SimTime::from_micros(i * 100), (i % 10) as usize, vec![]);
        }
        sim.run();
        let adversary = Adversary::new(n, &[9]).unwrap();
        let report =
            attack_trace(&adversary, &model, &dist, sim.trace(), sim.originations()).unwrap();
        // whenever node 9 was the single intermediate (or the sender), the
        // sender is fully identified; that's 2/10 of messages in expectation
        assert!(report.identification_rate > 0.08);
        assert!(report.identification_rate < 0.40);
        // scoring sanity
        assert!(report.mean_true_sender_prob > 1.0 / n as f64);
    }

    #[test]
    fn mismatched_adversary_and_model_are_rejected() {
        let model = SystemModel::new(10, 2).unwrap();
        let adversary = Adversary::new(10, &[1]).unwrap();
        let dist = PathLengthDist::fixed(1);
        assert!(attack_trace(&adversary, &model, &dist, &[], &[]).is_err());
    }
}
