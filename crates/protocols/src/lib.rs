//! # anonroute-protocols
//!
//! Executable implementations of the anonymous communication systems
//! surveyed in Section 2 of Guan et al. (ICDCS 2002), built on the
//! `anonroute-sim` discrete-event engine and the `anonroute-crypto`
//! onion substrate:
//!
//! * [`onion_routing::OnionNode`] — layered-encryption source routing
//!   (Onion Routing I/II, Freedom, PipeNet, depending on the configured
//!   [`route::RouteSampler`]);
//! * [`crowds::JondoNode`] — hop-by-hop probabilistic forwarding with
//!   cycles (Crowds);
//! * [`mix::MixNode`] — threshold Chaum mixes: onion routing plus batching
//!   and reordering;
//! * [`anonymizer::ProxyClientNode`] — single-proxy relaying (Anonymizer,
//!   LPWA);
//! * [`dcnet::DcNet`] — the non-rerouting dining-cryptographers baseline.
//!
//! Together with `anonroute_core::strategies`, each system's route
//! selection maps onto a path-length distribution whose anonymity degree
//! the core crate computes exactly; the `anonroute-adversary` crate closes
//! the loop by attacking these very simulations and checking that the
//! measured anonymity matches the analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymizer;
pub mod crowds;
pub mod dcnet;
pub mod error;
pub mod hordes;
pub mod mix;
pub mod onion_routing;
pub mod route;

pub use error::{Error, Result};
pub use route::RouteSampler;
