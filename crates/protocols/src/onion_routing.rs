//! Onion-routing protocol nodes (Onion Routing I/II, Freedom, PipeNet).
//!
//! The sender samples a route from its strategy, wraps the payload in one
//! encryption layer per hop ([`anonroute_crypto::onion`]), and transmits a
//! fixed-size cell. Each router peels its layer, learns only its successor,
//! and re-frames the cell with fresh junk so consecutive cells are bitwise
//! unlinkable.

use std::sync::Arc;

use anonroute_crypto::keys::KeyStore;
use anonroute_crypto::onion::{self, Peeled};
use anonroute_sim::{Ctx, Endpoint, Message, NodeBehavior, NodeId};
use rand::Rng;

use crate::error::{Error, Result};
use crate::route::RouteSampler;

/// Default wire cell size in bytes.
pub const DEFAULT_CELL_SIZE: usize = 2048;

/// A member node of an onion-routing network: originates onions for its
/// own traffic and relays others' cells.
#[derive(Debug, Clone)]
pub struct OnionNode {
    id: NodeId,
    keys: Arc<KeyStore>,
    sampler: RouteSampler,
    cell_size: usize,
    relayed: u64,
    dropped: u64,
}

impl OnionNode {
    /// Creates the behavior for node `id`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the longest possible route cannot fit
    /// the cell with an empty payload.
    pub fn new(
        id: NodeId,
        keys: Arc<KeyStore>,
        sampler: RouteSampler,
        cell_size: usize,
    ) -> Result<Self> {
        let worst = onion::wire_len(sampler.dist().max_len().max(1), 0);
        if worst > cell_size {
            return Err(Error::Config(format!(
                "cell size {cell_size} cannot carry {} hops (needs {worst} bytes)",
                sampler.dist().max_len()
            )));
        }
        Ok(OnionNode {
            id,
            keys,
            sampler,
            cell_size,
            relayed: 0,
            dropped: 0,
        })
    }

    /// Cells this node relayed.
    pub fn relayed(&self) -> u64 {
        self.relayed
    }

    /// Cells this node dropped (authentication failures).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl NodeBehavior for OnionNode {
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let route = {
            let rng = ctx.rng();
            self.sampler.sample(self.id, rng)
        };
        if route.is_empty() {
            // a zero-length path is a direct send (the paper's l = 0 case)
            ctx.send_to_receiver(msg);
            return;
        }
        let hops: Vec<u16> = route.iter().map(|&h| h as u16).collect();
        let nonces: Vec<[u8; 12]> = (0..hops.len()).map(|_| ctx.rng().gen()).collect();
        let wire = onion::build(&self.keys, &hops, &msg.bytes, &nonces)
            .expect("route and payload validated against the cell size");
        let cell = {
            let rng = ctx.rng();
            let mut junk = || rng.gen::<u8>();
            onion::frame(&wire, self.cell_size, &mut junk)
                .expect("content fits: checked at construction")
        };
        ctx.send(route[0], Message::new(msg.id, cell));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
        match onion::peel(&self.keys.key(self.id), &msg.bytes) {
            Ok(Peeled::Forward { next, content }) => {
                self.relayed += 1;
                let cell = {
                    let rng = ctx.rng();
                    let mut junk = || rng.gen::<u8>();
                    onion::frame(&content, self.cell_size, &mut junk)
                        .expect("peeled content is smaller than the incoming cell")
                };
                ctx.send(next as NodeId, Message::new(msg.id, cell));
            }
            Ok(Peeled::Deliver { payload }) => {
                self.relayed += 1;
                ctx.send_to_receiver(Message::new(msg.id, payload));
            }
            Err(_) => {
                // not addressed to us / corrupted: a real router drops it
                self.dropped += 1;
            }
        }
    }
}

/// Builds a complete onion network: one [`OnionNode`] per member with a
/// shared deterministic key store.
///
/// # Errors
///
/// Propagates per-node configuration errors.
pub fn onion_network(
    n: usize,
    sampler: &RouteSampler,
    cell_size: usize,
    key_seed: &[u8],
) -> Result<Vec<OnionNode>> {
    let keys = Arc::new(KeyStore::from_seed(key_seed, n));
    (0..n)
        .map(|id| OnionNode::new(id, Arc::clone(&keys), sampler.clone(), cell_size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::{PathKind, PathLengthDist};
    use anonroute_sim::{LatencyModel, SimTime, Simulation};

    fn network(n: usize, dist: PathLengthDist) -> Simulation<OnionNode> {
        let sampler = RouteSampler::new(n, dist, PathKind::Simple).unwrap();
        let nodes = onion_network(n, &sampler, DEFAULT_CELL_SIZE, b"test").unwrap();
        Simulation::new(nodes, LatencyModel::Constant(1_000), 42)
    }

    #[test]
    fn payload_survives_the_onion_pipeline() {
        let mut sim = network(12, PathLengthDist::fixed(5));
        let id = sim.schedule_origination(SimTime::ZERO, 3, b"the secret vote".to_vec());
        sim.run();
        assert_eq!(sim.deliveries().len(), 1);
        let d = &sim.deliveries()[0];
        assert_eq!(d.msg, id);
        assert_eq!(d.payload, b"the secret vote");
    }

    #[test]
    fn path_length_matches_strategy() {
        let mut sim = network(12, PathLengthDist::fixed(5));
        sim.schedule_origination(SimTime::ZERO, 3, vec![1]);
        sim.run();
        // trace: 5 inter-node hops + 1 delivery edge + the origination edge
        // (sender→first hop) — the origination send is an edge too: total 6
        // edges: s→x1, x1→x2, ..., x4→x5, x5→R
        assert_eq!(sim.trace().len(), 6);
        assert_eq!(sim.trace().last().unwrap().to, Endpoint::Receiver);
    }

    #[test]
    fn zero_length_paths_send_directly() {
        let mut sim = network(6, PathLengthDist::fixed(0));
        sim.schedule_origination(SimTime::ZERO, 2, b"direct".to_vec());
        sim.run();
        assert_eq!(sim.trace().len(), 1);
        assert_eq!(sim.deliveries()[0].last_hop, Endpoint::Node(2));
        assert_eq!(sim.deliveries()[0].payload, b"direct");
    }

    #[test]
    fn cells_on_the_wire_are_fixed_size_and_unlinkable() {
        let mut sim = network(10, PathLengthDist::fixed(4));
        sim.schedule_origination(SimTime::ZERO, 0, vec![7; 32]);
        sim.run();
        // we cannot inspect cell bytes from the trace (it stores ids), but
        // relaying must have happened at 4 nodes with no drops
        let relayed: u64 = (0..10).map(|i| sim.node(i).relayed()).sum();
        let dropped: u64 = (0..10).map(|i| sim.node(i).dropped()).sum();
        assert_eq!(relayed, 4);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn many_messages_all_arrive_intact() {
        let mut sim = network(20, PathLengthDist::uniform(1, 7).unwrap());
        for i in 0..50u8 {
            sim.schedule_origination(
                SimTime::from_micros(i as u64 * 10),
                (i as usize) % 20,
                vec![i; 16],
            );
        }
        sim.run();
        assert_eq!(sim.deliveries().len(), 50);
        for d in sim.deliveries() {
            assert_eq!(d.payload.len(), 16);
            assert!(d.payload.iter().all(|&b| b == d.payload[0]));
        }
    }

    #[test]
    fn oversized_route_config_is_rejected() {
        let sampler = RouteSampler::new(200, PathLengthDist::fixed(100), PathKind::Simple).unwrap();
        let keys = Arc::new(KeyStore::from_seed(b"x", 200));
        // 100 hops × 32 bytes overhead > 1024-byte cells
        assert!(OnionNode::new(0, keys, sampler, 1024).is_err());
    }
}
