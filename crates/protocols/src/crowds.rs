//! The Crowds protocol (Reiter & Rubin): hop-by-hop random forwarding.
//!
//! The initiating jondo forwards the request to a uniformly random jondo
//! (possibly itself). Every jondo that receives a request flips a biased
//! coin: with probability `p_f` it forwards to another uniformly random
//! jondo, otherwise it submits to the end server. Paths may contain cycles,
//! and the induced path-length distribution is geometric:
//! `P[L = k] = (1 - p_f) · p_f^(k-1)` for `k ≥ 1`.

use anonroute_sim::{Ctx, Endpoint, Message, NodeBehavior};
use rand::Rng;

use crate::error::{Error, Result};

/// A Crowds jondo.
#[derive(Debug, Clone, PartialEq)]
pub struct JondoNode {
    n: usize,
    forward_prob: f64,
    forwarded: u64,
    submitted: u64,
}

impl JondoNode {
    /// Creates a jondo in a crowd of `n` with forwarding probability
    /// `forward_prob`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] unless `0 ≤ forward_prob < 1` (a jondo
    /// that always forwards would never deliver).
    pub fn new(n: usize, forward_prob: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&forward_prob) || !forward_prob.is_finite() {
            return Err(Error::Config(format!(
                "forwarding probability must be in [0, 1), got {forward_prob}"
            )));
        }
        if n == 0 {
            return Err(Error::Config("a crowd needs at least one jondo".into()));
        }
        Ok(JondoNode {
            n,
            forward_prob,
            forwarded: 0,
            submitted: 0,
        })
    }

    /// Requests this jondo forwarded to another jondo.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Requests this jondo submitted to the end server.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }
}

impl NodeBehavior for JondoNode {
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        // the initiator always forwards to a random jondo first (possibly
        // itself) — this is the first intermediate node
        let first = ctx.rng().gen_range(0..self.n);
        ctx.send(first, msg);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
        let coin: f64 = ctx.rng().gen();
        if coin < self.forward_prob {
            self.forwarded += 1;
            let next = ctx.rng().gen_range(0..self.n);
            ctx.send(next, msg);
        } else {
            self.submitted += 1;
            ctx.send_to_receiver(msg);
        }
    }
}

/// Builds a crowd of `n` jondos.
///
/// # Errors
///
/// Propagates [`JondoNode::new`] validation.
pub fn crowd(n: usize, forward_prob: f64) -> Result<Vec<JondoNode>> {
    (0..n).map(|_| JondoNode::new(n, forward_prob)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_sim::{LatencyModel, SimTime, Simulation};

    #[test]
    fn requests_reach_the_server() {
        let mut sim = Simulation::new(crowd(8, 0.6).unwrap(), LatencyModel::Constant(500), 9);
        for i in 0..30 {
            sim.schedule_origination(
                SimTime::from_micros(i * 100),
                (i as usize) % 8,
                vec![i as u8],
            );
        }
        sim.run();
        assert_eq!(sim.deliveries().len(), 30);
    }

    #[test]
    fn observed_path_lengths_are_geometric() {
        // measure intermediate-hop counts over many runs and compare the
        // mean with 1/(1-pf)
        let pf = 0.75;
        let mut total_hops = 0usize;
        let msgs = 400;
        let mut sim = Simulation::new(crowd(10, pf).unwrap(), LatencyModel::Constant(10), 17);
        for i in 0..msgs {
            sim.schedule_origination(SimTime::from_micros(i as u64 * 1000), i % 10, vec![]);
        }
        sim.run();
        // per message: edges = hops + 1 (the final submit edge)
        use std::collections::HashMap;
        let mut edges: HashMap<_, usize> = HashMap::new();
        for t in sim.trace() {
            *edges.entry(t.msg).or_default() += 1;
        }
        for (_, e) in edges {
            total_hops += e - 1;
        }
        let mean = total_hops as f64 / msgs as f64;
        let expect = 1.0 / (1.0 - pf);
        assert!(
            (mean - expect).abs() < 0.45,
            "mean {mean}, expected {expect}"
        );
    }

    #[test]
    fn zero_forwarding_gives_single_hop_paths() {
        let mut sim = Simulation::new(crowd(5, 0.0).unwrap(), LatencyModel::Constant(10), 3);
        sim.schedule_origination(SimTime::ZERO, 2, vec![1]);
        sim.run();
        // exactly 2 edges: sender→jondo, jondo→server
        assert_eq!(sim.trace().len(), 2);
        assert_eq!(sim.trace()[1].to, Endpoint::Receiver);
    }

    #[test]
    fn config_validation() {
        assert!(JondoNode::new(5, 1.0).is_err());
        assert!(JondoNode::new(5, -0.1).is_err());
        assert!(JondoNode::new(0, 0.5).is_err());
        assert!(JondoNode::new(5, 0.999).is_ok());
    }
}
