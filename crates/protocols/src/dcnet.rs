//! DC-Net (Chaum's dining cryptographers): the paper's non-rerouting
//! baseline.
//!
//! Every pair of participants shares a secret pad; in a round, each
//! participant announces the XOR of its pads, and the sender additionally
//! XORs in its message. The XOR of all announcements equals the message,
//! yet no coalition that excludes the sender can tell who sent it: the
//! sender hides among the honest participants.
//!
//! The paper dismisses DC-Nets for their broadcast cost (`O(n)` messages
//! of full payload size per round, `O(n²)` shared keys); this module
//! implements the round protocol so the cost/anonymity trade-off can be
//! measured against rerouting strategies.

#![allow(clippy::needless_range_loop)] // pairwise seed matrix indexing

use anonroute_crypto::hkdf;

use crate::error::{Error, Result};

/// A DC-Net session over `n` participants with pairwise shared seeds.
#[derive(Debug, Clone)]
pub struct DcNet {
    n: usize,
    /// `seeds[i][j]` = seed shared by participants `i < j`.
    seeds: Vec<Vec<[u8; 32]>>,
    round: u64,
}

/// The announcements of one DC-Net round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round {
    /// Per-participant announcement vectors.
    pub announcements: Vec<Vec<u8>>,
    /// Round number (pads are never reused across rounds).
    pub round: u64,
}

impl DcNet {
    /// Provisions pairwise seeds for `n` participants from a session seed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for `n < 2`.
    pub fn new(session_seed: &[u8], n: usize) -> Result<Self> {
        if n < 2 {
            return Err(Error::Config(
                "a DC-net needs at least two participants".into(),
            ));
        }
        let mut seeds = vec![vec![[0u8; 32]; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let mut s = [0u8; 32];
                let info = [
                    b"dcnet-pair" as &[u8],
                    &(i as u64).to_be_bytes(),
                    &(j as u64).to_be_bytes(),
                ]
                .concat();
                hkdf::derive(b"anonroute-dcnet", session_seed, &info, &mut s);
                seeds[i][j] = s;
                seeds[j][i] = s;
            }
        }
        Ok(DcNet { n, seeds, round: 0 })
    }

    /// Number of participants.
    pub fn n(&self) -> usize {
        self.n
    }

    fn pad(&self, i: usize, j: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let info = [b"dcnet-pad" as &[u8], &self.round.to_be_bytes()].concat();
        hkdf::derive(&info, &self.seeds[i][j], b"pad", &mut out);
        out
    }

    /// Runs one round in which `sender` (if any) transmits `message`.
    /// Advances the round counter.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the sender index is out of range.
    pub fn run_round(&mut self, sender: Option<usize>, message: &[u8]) -> Result<Round> {
        if let Some(s) = sender {
            if s >= self.n {
                return Err(Error::Config(format!("sender {s} out of range")));
            }
        }
        let len = message.len();
        let mut announcements = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let mut a = vec![0u8; len];
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let (lo, hi) = (i.min(j), i.max(j));
                let pad = self.pad(lo, hi, len);
                for (x, p) in a.iter_mut().zip(&pad) {
                    *x ^= p;
                }
            }
            if sender == Some(i) {
                for (x, m) in a.iter_mut().zip(message) {
                    *x ^= m;
                }
            }
            announcements.push(a);
        }
        let round = Round {
            announcements,
            round: self.round,
        };
        self.round += 1;
        Ok(round)
    }

    /// Per-round broadcast cost in bytes for a `payload_len` message:
    /// every participant announces `payload_len` bytes to everyone.
    pub fn broadcast_bytes(&self, payload_len: usize) -> usize {
        self.n * self.n * payload_len
    }
}

impl Round {
    /// Recovers the round's message: the XOR of all announcements
    /// (all-zero when nobody sent).
    pub fn decode(&self) -> Vec<u8> {
        let len = self.announcements.first().map_or(0, Vec::len);
        let mut out = vec![0u8; len];
        for a in &self.announcements {
            for (x, b) in out.iter_mut().zip(a) {
                *x ^= b;
            }
        }
        out
    }
}

/// Anonymity degree of a DC-Net round against the paper's adversary
/// (`c` compromised participants that pool their pads): a compromised
/// sender is exposed; an honest sender is information-theoretically hidden
/// among all `n - c` honest participants, so
/// `H* = (n-c)/n · log2(n-c)`.
pub fn anonymity_degree(n: usize, c: usize) -> f64 {
    if c >= n {
        return 0.0;
    }
    let honest = (n - c) as f64;
    (honest / n as f64) * honest.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_recovered() {
        let mut net = DcNet::new(b"round-table", 5).unwrap();
        let round = net.run_round(Some(2), b"the NSA pays").unwrap();
        assert_eq!(round.decode(), b"the NSA pays");
    }

    #[test]
    fn silent_round_decodes_to_zero() {
        let mut net = DcNet::new(b"s", 4).unwrap();
        let round = net.run_round(None, &[0u8; 8]).unwrap();
        assert_eq!(round.decode(), vec![0u8; 8]);
    }

    #[test]
    fn pads_differ_across_rounds() {
        let mut net = DcNet::new(b"s", 3).unwrap();
        let r1 = net.run_round(Some(0), b"aaaa").unwrap();
        let r2 = net.run_round(Some(0), b"aaaa").unwrap();
        assert_ne!(r1.announcements, r2.announcements);
        assert_eq!(r1.decode(), r2.decode());
    }

    #[test]
    fn announcements_alone_do_not_identify_the_sender() {
        // swap the sender: the set of announcements is differently
        // distributed, but each individual announcement looks random;
        // check at least that no announcement equals the raw message
        let mut net = DcNet::new(b"s", 6).unwrap();
        let round = net.run_round(Some(3), b"attack at dawn!!").unwrap();
        for a in &round.announcements {
            assert_ne!(a.as_slice(), b"attack at dawn!!");
        }
    }

    #[test]
    fn coalition_excluding_sender_learns_nothing() {
        // participants {0,1} pool all their pads; the residual XOR of the
        // remaining announcements (2,3,4) is identical whether 2, 3 or 4
        // sent, so the coalition cannot attribute the message.
        let residual = |sender: usize| -> Vec<u8> {
            let mut net = DcNet::new(b"fixed", 5).unwrap();
            let round = net.run_round(Some(sender), b"msg!").unwrap();
            // XOR of announcements of honest participants 2..5
            let mut out = vec![0u8; 4];
            for i in 2..5 {
                for (x, b) in out.iter_mut().zip(&round.announcements[i]) {
                    *x ^= b;
                }
            }
            out
        };
        let r2 = residual(2);
        let r3 = residual(3);
        let r4 = residual(4);
        assert_eq!(r2, r3);
        assert_eq!(r3, r4);
    }

    #[test]
    fn anonymity_degree_formula() {
        assert_eq!(anonymity_degree(100, 100), 0.0);
        let h = anonymity_degree(100, 0);
        assert!((h - 100f64.log2()).abs() < 1e-12);
        let h1 = anonymity_degree(100, 1);
        assert!((h1 - 0.99 * 99f64.log2()).abs() < 1e-12);
        // DC-nets dominate rerouting at equal c (no path leakage at all)
        assert!(h1 > 6.5);
    }

    #[test]
    fn cost_scales_quadratically() {
        let net = DcNet::new(b"s", 10).unwrap();
        assert_eq!(net.broadcast_bytes(100), 10 * 10 * 100);
    }

    #[test]
    fn config_validation() {
        assert!(DcNet::new(b"s", 1).is_err());
        let mut net = DcNet::new(b"s", 3).unwrap();
        assert!(net.run_round(Some(3), b"x").is_err());
    }
}
