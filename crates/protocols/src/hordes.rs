//! Hordes (Shields & Levine): Crowds-style forward paths with a
//! multicast reply channel.
//!
//! Forward traffic travels through jondos exactly like Crowds; the reply,
//! however, is *multicast* by the receiver to the whole horde, and only
//! the initiator (who knows the session tag) picks it up. This removes the
//! reverse path entirely — the paper's threat model only observes the
//! forward path, so Hordes' sender anonymity matches Crowds' while its
//! reply latency drops to one multicast hop.

use anonroute_sim::{Ctx, Endpoint, Message, MsgId, NodeBehavior};
use rand::Rng;

use crate::error::{Error, Result};

/// A Hordes member node: forwards requests like a jondo and listens to
/// the multicast reply channel for sessions it initiated.
#[derive(Debug, Clone, Default)]
pub struct HordeNode {
    n: usize,
    forward_prob: f64,
    /// Sessions this node initiated (it will claim their replies).
    initiated: Vec<MsgId>,
    /// Replies this node successfully picked up off the multicast.
    claimed: u64,
    /// Multicast frames this node discarded (not the initiator).
    discarded: u64,
}

impl HordeNode {
    /// Creates a member of a horde of `n` with the given forwarding
    /// probability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] unless `0 ≤ forward_prob < 1` and `n > 0`.
    pub fn new(n: usize, forward_prob: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&forward_prob) || !forward_prob.is_finite() {
            return Err(Error::Config(format!(
                "forwarding probability must be in [0, 1), got {forward_prob}"
            )));
        }
        if n == 0 {
            return Err(Error::Config("a horde needs at least one member".into()));
        }
        Ok(HordeNode {
            n,
            forward_prob,
            ..Default::default()
        })
    }

    /// Replies this node claimed from the multicast channel.
    pub fn claimed(&self) -> u64 {
        self.claimed
    }

    /// Multicast frames discarded as not-for-us.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Whether this node initiated the given session.
    pub fn initiated(&self, msg: MsgId) -> bool {
        self.initiated.contains(&msg)
    }
}

/// Marker prefix distinguishing reply multicast frames from forward
/// traffic inside the payload.
const REPLY_TAG: u8 = b'R';
const FORWARD_TAG: u8 = b'F';

impl HordeNode {
    /// Handles one frame from the receiver's multicast reply channel.
    /// Returns whether this node claimed the reply (it initiated the
    /// session).
    pub fn receive_multicast(&mut self, msg: &Message) -> bool {
        if msg.bytes.first() == Some(&REPLY_TAG) && self.initiated(msg.id) {
            self.claimed += 1;
            true
        } else {
            self.discarded += 1;
            false
        }
    }
}

impl NodeBehavior for HordeNode {
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        self.initiated.push(msg.id);
        let mut bytes = Vec::with_capacity(msg.bytes.len() + 1);
        bytes.push(FORWARD_TAG);
        bytes.extend_from_slice(&msg.bytes);
        let first = ctx.rng().gen_range(0..self.n);
        ctx.send(first, Message::new(msg.id, bytes));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
        match msg.bytes.first().copied() {
            Some(FORWARD_TAG) => {
                let coin: f64 = ctx.rng().gen();
                if coin < self.forward_prob {
                    let next = ctx.rng().gen_range(0..self.n);
                    ctx.send(next, msg);
                } else {
                    ctx.send_to_receiver(msg);
                }
            }
            Some(REPLY_TAG) => {
                self.receive_multicast(&msg);
            }
            _ => self.discarded += 1,
        }
    }
}

/// Builds a horde of `n` members.
///
/// # Errors
///
/// Propagates [`HordeNode::new`] validation.
pub fn horde(n: usize, forward_prob: f64) -> Result<Vec<HordeNode>> {
    (0..n).map(|_| HordeNode::new(n, forward_prob)).collect()
}

/// Simulates the receiver's reply step for delivered requests: multicasts
/// a reply frame for each delivered message to every member (the
/// receiver is outside the member set, so this is modelled as direct
/// scheduling of reply messages).
///
/// Returns the reply frames to inject, one per member per reply.
pub fn multicast_replies(delivered: &[MsgId], n: usize) -> Vec<(usize, Message)> {
    let mut frames = Vec::with_capacity(delivered.len() * n);
    for &msg in delivered {
        for member in 0..n {
            frames.push((member, Message::new(msg, vec![REPLY_TAG])));
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_sim::{LatencyModel, SimTime, Simulation};

    #[test]
    fn forward_path_reaches_the_receiver() {
        let mut sim = Simulation::new(horde(8, 0.5).unwrap(), LatencyModel::Constant(100), 3);
        for i in 0..30u64 {
            sim.schedule_origination(
                SimTime::from_micros(i * 50),
                (i % 8) as usize,
                vec![i as u8],
            );
        }
        sim.run();
        assert_eq!(sim.deliveries().len(), 30);
        // delivered payloads carry the forward tag plus original byte
        for d in sim.deliveries() {
            assert_eq!(d.payload[0], FORWARD_TAG);
        }
    }

    #[test]
    fn only_the_initiator_claims_the_multicast_reply() {
        let n = 6;
        let msg = MsgId(0);
        let frames = multicast_replies(&[msg], n);
        assert_eq!(frames.len(), n);

        let mut nodes = horde(n, 0.0).unwrap();
        nodes[2].initiated.push(msg); // node 2 initiated this session
        let mut claimed = 0;
        for (member, frame) in frames {
            if nodes[member].receive_multicast(&frame) {
                claimed += 1;
            }
        }
        assert_eq!(claimed, 1, "exactly the initiator claims");
        assert!(nodes[2].initiated(msg));
        assert_eq!(nodes[2].claimed(), 1);
        let discarded: u64 = nodes.iter().map(HordeNode::discarded).sum();
        assert_eq!(discarded, (n - 1) as u64);
    }

    #[test]
    fn non_reply_frames_are_discarded_by_multicast_handler() {
        let mut node = HordeNode::new(4, 0.5).unwrap();
        assert!(!node.receive_multicast(&Message::new(MsgId(9), vec![FORWARD_TAG])));
        assert!(!node.receive_multicast(&Message::new(MsgId(9), vec![])));
        assert_eq!(node.discarded(), 2);
    }

    #[test]
    fn config_validation() {
        assert!(HordeNode::new(0, 0.5).is_err());
        assert!(HordeNode::new(5, 1.0).is_err());
        assert!(HordeNode::new(5, 0.0).is_ok());
    }
}
