//! Route sampling: turning a path-length strategy into concrete paths.

use anonroute_core::engine::sample_path;
use anonroute_core::{PathKind, PathLengthDist, SystemModel};
use anonroute_sim::NodeId;
use rand::Rng;

/// Samples rerouting routes according to a path-length distribution and a
/// path kind (the two knobs of the paper's Figure-2 selection algorithm).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSampler {
    dist: PathLengthDist,
    kind: PathKind,
    n: usize,
    scratch: Vec<NodeId>,
}

impl RouteSampler {
    /// Creates a sampler for an `n`-node system.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemModel`] validation (e.g. simple-path supports
    /// longer than `n - 1`).
    pub fn new(n: usize, dist: PathLengthDist, kind: PathKind) -> anonroute_core::Result<Self> {
        let model = SystemModel::with_path_kind(n, 0, kind)?;
        model.validate_dist(&dist)?;
        Ok(RouteSampler {
            dist,
            kind,
            n,
            scratch: (0..n).collect(),
        })
    }

    /// The induced path-length distribution.
    pub fn dist(&self) -> &PathLengthDist {
        &self.dist
    }

    /// The path kind.
    pub fn kind(&self) -> PathKind {
        self.kind
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Draws a route (sequence of intermediate nodes) for `sender`.
    pub fn sample<R: Rng + ?Sized>(&mut self, sender: NodeId, rng: &mut R) -> Vec<NodeId> {
        let l = self.dist.sample(rng);
        // SystemModel::with_path_kind(n, 0, …) cannot fail here: n >= 1 was
        // validated at construction.
        let model =
            SystemModel::with_path_kind(self.n, 0, self.kind).expect("validated at construction");
        sample_path(&model, sender, l, rng, &mut self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simple_routes_avoid_sender_and_repeats() {
        let mut s = RouteSampler::new(10, PathLengthDist::uniform(1, 6).unwrap(), PathKind::Simple)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let route = s.sample(3, &mut rng);
            assert!((1..=6).contains(&route.len()));
            assert!(!route.contains(&3));
            let mut dedup = route.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), route.len());
        }
    }

    #[test]
    fn cyclic_routes_may_repeat_and_include_sender() {
        let mut s = RouteSampler::new(4, PathLengthDist::fixed(8), PathKind::Cyclic).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_repeat = false;
        let mut saw_sender = false;
        for _ in 0..200 {
            let route = s.sample(0, &mut rng);
            assert_eq!(route.len(), 8);
            let mut dedup = route.clone();
            dedup.sort_unstable();
            dedup.dedup();
            saw_repeat |= dedup.len() < route.len();
            saw_sender |= route.contains(&0);
        }
        assert!(saw_repeat && saw_sender);
    }

    #[test]
    fn sampled_lengths_match_distribution() {
        let mut s = RouteSampler::new(
            30,
            PathLengthDist::two_point(2, 0.3, 5).unwrap(),
            PathKind::Simple,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let mut twos = 0;
        for _ in 0..trials {
            match s.sample(0, &mut rng).len() {
                2 => twos += 1,
                5 => {}
                other => panic!("unexpected length {other}"),
            }
        }
        let freq = twos as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn rejects_unrealizable_support() {
        assert!(RouteSampler::new(5, PathLengthDist::fixed(5), PathKind::Simple).is_err());
        assert!(RouteSampler::new(5, PathLengthDist::fixed(5), PathKind::Cyclic).is_ok());
    }
}
