//! Route sampling: turning a path-length strategy into concrete paths.

use anonroute_core::engine::sample_path_into;
use anonroute_core::{PathKind, PathLengthDist, SystemModel};
use anonroute_sim::NodeId;
use rand::Rng;

/// Samples rerouting routes according to a path-length distribution and a
/// path kind (the two knobs of the paper's Figure-2 selection algorithm).
///
/// Memory: the sampler is O(1) in the system size. Short simple paths
/// (`l ≪ n`, the regime of every realistic strategy) are drawn by
/// rejection sampling — uniform over distinct non-sender nodes, the same
/// distribution a partial Fisher–Yates produces — so a million-node
/// network can clone one sampler per node (as
/// [`crate::onion_routing::onion_network`] does) without materializing a
/// million `0..n` scratch tables. Only when a path needs a large
/// fraction of the membership does the sampler lazily build the
/// Fisher–Yates scratch, and a [`Clone`] never copies it.
#[derive(Debug)]
pub struct RouteSampler {
    dist: PathLengthDist,
    kind: PathKind,
    n: usize,
    /// Lazily built Fisher–Yates table (long-path fallback only).
    scratch: Vec<NodeId>,
}

/// Clones share configuration, never the (re-buildable) scratch table.
impl Clone for RouteSampler {
    fn clone(&self) -> Self {
        RouteSampler {
            dist: self.dist.clone(),
            kind: self.kind,
            n: self.n,
            scratch: Vec::new(),
        }
    }
}

/// Samplers are equal when they draw from the same distribution over the
/// same system — scratch is cached state, not identity.
impl PartialEq for RouteSampler {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.kind == other.kind && self.n == other.n
    }
}

impl RouteSampler {
    /// Creates a sampler for an `n`-node system.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemModel`] validation (e.g. simple-path supports
    /// longer than `n - 1`).
    pub fn new(n: usize, dist: PathLengthDist, kind: PathKind) -> anonroute_core::Result<Self> {
        let model = SystemModel::with_path_kind(n, 0, kind)?;
        model.validate_dist(&dist)?;
        Ok(RouteSampler {
            dist,
            kind,
            n,
            scratch: Vec::new(),
        })
    }

    /// The induced path-length distribution.
    pub fn dist(&self) -> &PathLengthDist {
        &self.dist
    }

    /// The path kind.
    pub fn kind(&self) -> PathKind {
        self.kind
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Draws a route (sequence of intermediate nodes) for `sender`.
    pub fn sample<R: Rng + ?Sized>(&mut self, sender: NodeId, rng: &mut R) -> Vec<NodeId> {
        let l = self.dist.sample(rng);
        let mut route = Vec::with_capacity(l);
        match self.kind {
            PathKind::Cyclic => {
                // intermediates are i.i.d. uniform over all members
                route.extend((0..l).map(|_| rng.gen_range(0..self.n)));
            }
            // short simple paths (the common case): rejection sampling is
            // uniform over l-subsets-in-order excluding the sender — the
            // same law as partial Fisher–Yates — with expected < 2 draws
            // per hop at l ≤ n/2, and no O(n) scratch at all
            PathKind::Simple if 2 * (l + 1) <= self.n => {
                while route.len() < l {
                    let candidate = rng.gen_range(0..self.n);
                    if candidate != sender && !route.contains(&candidate) {
                        route.push(candidate);
                    }
                }
            }
            // long paths relative to n: fall back to partial Fisher–Yates
            // over a lazily built (and reused) scratch table
            PathKind::Simple => {
                if self.scratch.len() != self.n {
                    self.scratch.clear();
                    self.scratch.extend(0..self.n);
                }
                // SystemModel::with_path_kind(n, 0, …) cannot fail here:
                // n >= 1 was validated at construction.
                let model = SystemModel::with_path_kind(self.n, 0, self.kind)
                    .expect("validated at construction");
                sample_path_into(&model, sender, l, rng, &mut self.scratch, &mut route);
            }
        }
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simple_routes_avoid_sender_and_repeats() {
        let mut s = RouteSampler::new(10, PathLengthDist::uniform(1, 6).unwrap(), PathKind::Simple)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let route = s.sample(3, &mut rng);
            assert!((1..=6).contains(&route.len()));
            assert!(!route.contains(&3));
            let mut dedup = route.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), route.len());
        }
    }

    #[test]
    fn cyclic_routes_may_repeat_and_include_sender() {
        let mut s = RouteSampler::new(4, PathLengthDist::fixed(8), PathKind::Cyclic).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_repeat = false;
        let mut saw_sender = false;
        for _ in 0..200 {
            let route = s.sample(0, &mut rng);
            assert_eq!(route.len(), 8);
            let mut dedup = route.clone();
            dedup.sort_unstable();
            dedup.dedup();
            saw_repeat |= dedup.len() < route.len();
            saw_sender |= route.contains(&0);
        }
        assert!(saw_repeat && saw_sender);
    }

    #[test]
    fn sampled_lengths_match_distribution() {
        let mut s = RouteSampler::new(
            30,
            PathLengthDist::two_point(2, 0.3, 5).unwrap(),
            PathKind::Simple,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let mut twos = 0;
        for _ in 0..trials {
            match s.sample(0, &mut rng).len() {
                2 => twos += 1,
                5 => {}
                other => panic!("unexpected length {other}"),
            }
        }
        let freq = twos as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn long_path_fallback_still_avoids_sender_and_repeats() {
        // l = n - 1 forces the Fisher–Yates branch (rejection sampling
        // would thrash near exhaustion)
        let mut s = RouteSampler::new(8, PathLengthDist::fixed(7), PathKind::Simple).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let route = s.sample(2, &mut rng);
            assert_eq!(route.len(), 7);
            assert!(!route.contains(&2));
            let mut dedup = route.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 7, "all non-sender nodes exactly once");
        }
    }

    #[test]
    fn rejection_branch_is_unbiased_over_non_sender_nodes() {
        // n = 40, l = 3: every non-sender node should appear in routes
        // with equal frequency (3/39 per route)
        let n = 40;
        let mut s = RouteSampler::new(n, PathLengthDist::fixed(3), PathKind::Simple).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 30_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            for hop in s.sample(0, &mut rng) {
                counts[hop] += 1;
            }
        }
        assert_eq!(counts[0], 0, "the sender never appears");
        let expect = 3.0 * trials as f64 / (n - 1) as f64;
        for (node, &count) in counts.iter().enumerate().skip(1) {
            let ratio = count as f64 / expect;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "node {node}: {count} vs expected {expect}"
            );
        }
    }

    #[test]
    fn clones_are_cheap_and_equal() {
        let mut s = RouteSampler::new(
            1_000_000,
            PathLengthDist::uniform(1, 6).unwrap(),
            PathKind::Simple,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // sampling at n = 1e6 must not build an n-entry table
        let route = s.sample(123, &mut rng);
        assert!(!route.is_empty());
        assert!(s.scratch.is_empty(), "short paths never build scratch");
        let clone = s.clone();
        assert_eq!(clone, s);
        assert!(clone.scratch.is_empty());
    }

    #[test]
    fn rejects_unrealizable_support() {
        assert!(RouteSampler::new(5, PathLengthDist::fixed(5), PathKind::Simple).is_err());
        assert!(RouteSampler::new(5, PathLengthDist::fixed(5), PathKind::Cyclic).is_ok());
    }
}
