//! Threshold (Chaum) mixes: onion routers that additionally batch and
//! reorder traffic to destroy timing correlation.
//!
//! A mix collects incoming cells until its batch reaches `threshold` (or a
//! straggler timer fires), then flushes the whole batch in a random order.
//! The paper's adversary assumes messages *can* be correlated across hops;
//! mixes are the classic countermeasure, and the extension experiments use
//! this node type to quantify how much the correlation assumption matters.

use std::sync::Arc;

use anonroute_crypto::keys::KeyStore;
use anonroute_crypto::onion::{self, Peeled};
use anonroute_sim::{Ctx, Endpoint, Message, NodeBehavior, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{Error, Result};
use crate::route::RouteSampler;

/// A batching mix node.
#[derive(Debug, Clone)]
pub struct MixNode {
    id: NodeId,
    keys: Arc<KeyStore>,
    sampler: RouteSampler,
    cell_size: usize,
    threshold: usize,
    flush_timeout_us: u64,
    pool: Vec<(Option<NodeId>, Message)>, // None = deliver to receiver
    timer_armed: bool,
    flushes: u64,
}

impl MixNode {
    /// Creates a mix for node `id` flushing every `threshold` cells or
    /// after `flush_timeout_us` microseconds, whichever comes first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a zero threshold or an unrealizable
    /// route/cell combination.
    pub fn new(
        id: NodeId,
        keys: Arc<KeyStore>,
        sampler: RouteSampler,
        cell_size: usize,
        threshold: usize,
        flush_timeout_us: u64,
    ) -> Result<Self> {
        if threshold == 0 {
            return Err(Error::Config("mix threshold must be at least 1".into()));
        }
        let worst = onion::wire_len(sampler.dist().max_len().max(1), 0);
        if worst > cell_size {
            return Err(Error::Config(format!(
                "cell size {cell_size} cannot carry {} hops (needs {worst} bytes)",
                sampler.dist().max_len()
            )));
        }
        Ok(MixNode {
            id,
            keys,
            sampler,
            cell_size,
            threshold,
            flush_timeout_us,
            pool: Vec::new(),
            timer_armed: false,
            flushes: 0,
        })
    }

    /// Number of batch flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Cells currently held in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.pool.is_empty() {
            return;
        }
        self.flushes += 1;
        let mut batch = std::mem::take(&mut self.pool);
        batch.shuffle(ctx.rng());
        for (dest, msg) in batch {
            match dest {
                Some(next) => ctx.send(next, msg),
                None => ctx.send_to_receiver(msg),
            }
        }
    }
}

impl NodeBehavior for MixNode {
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let route = {
            let rng = ctx.rng();
            self.sampler.sample(self.id, rng)
        };
        if route.is_empty() {
            ctx.send_to_receiver(msg);
            return;
        }
        let hops: Vec<u16> = route.iter().map(|&h| h as u16).collect();
        let nonces: Vec<[u8; 12]> = (0..hops.len()).map(|_| ctx.rng().gen()).collect();
        let wire = onion::build(&self.keys, &hops, &msg.bytes, &nonces)
            .expect("route and payload validated against the cell size");
        let cell = {
            let rng = ctx.rng();
            let mut junk = || rng.gen::<u8>();
            onion::frame(&wire, self.cell_size, &mut junk).expect("fits by construction")
        };
        ctx.send(route[0], Message::new(msg.id, cell));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
        let entry = match onion::peel(&self.keys.key(self.id), &msg.bytes) {
            Ok(Peeled::Forward { next, content }) => {
                let cell = {
                    let rng = ctx.rng();
                    let mut junk = || rng.gen::<u8>();
                    onion::frame(&content, self.cell_size, &mut junk)
                        .expect("peeled content shrinks")
                };
                (Some(next as NodeId), Message::new(msg.id, cell))
            }
            Ok(Peeled::Deliver { payload }) => (None, Message::new(msg.id, payload)),
            Err(_) => return, // drop unauthenticated traffic
        };
        self.pool.push(entry);
        if self.pool.len() >= self.threshold {
            self.flush(ctx);
            self.timer_armed = false;
        } else if !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(self.flush_timeout_us, 1);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        // straggler flush so the network always drains
        self.timer_armed = false;
        self.flush(ctx);
    }
}

/// Builds a network of threshold mixes with a shared key store.
///
/// # Errors
///
/// Propagates per-node configuration errors.
pub fn mix_network(
    n: usize,
    sampler: &RouteSampler,
    cell_size: usize,
    threshold: usize,
    flush_timeout_us: u64,
    key_seed: &[u8],
) -> Result<Vec<MixNode>> {
    let keys = Arc::new(KeyStore::from_seed(key_seed, n));
    (0..n)
        .map(|id| {
            MixNode::new(
                id,
                Arc::clone(&keys),
                sampler.clone(),
                cell_size,
                threshold,
                flush_timeout_us,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::{PathKind, PathLengthDist};
    use anonroute_sim::{LatencyModel, SimTime, Simulation};

    fn network(n: usize, threshold: usize) -> Simulation<MixNode> {
        let sampler = RouteSampler::new(n, PathLengthDist::fixed(3), PathKind::Simple).unwrap();
        let nodes = mix_network(n, &sampler, 2048, threshold, 50_000, b"mix").unwrap();
        Simulation::new(nodes, LatencyModel::Constant(1_000), 11)
    }

    #[test]
    fn all_messages_drain_despite_batching() {
        let mut sim = network(10, 3);
        for i in 0..25 {
            sim.schedule_origination(
                SimTime::from_micros(i * 200),
                (i as usize) % 10,
                vec![i as u8],
            );
        }
        sim.run();
        assert_eq!(sim.deliveries().len(), 25);
    }

    #[test]
    fn straggler_timer_flushes_partial_batches() {
        let mut sim = network(6, 100); // threshold never reached
        sim.schedule_origination(SimTime::ZERO, 1, b"lonely".to_vec());
        sim.run();
        assert_eq!(sim.deliveries().len(), 1);
        // delivery had to wait for at least one flush timeout
        assert!(sim.deliveries()[0].time.as_micros() >= 50_000);
    }

    #[test]
    fn batching_collapses_departure_times() {
        // with a high threshold, messages entering a mix within the window
        // leave it at the same instant (the flush), unlike plain onions
        let mut sim = network(4, 4);
        for i in 0..4 {
            sim.schedule_origination(SimTime::from_micros(i * 10), 0, vec![i as u8]);
        }
        sim.run();
        assert_eq!(sim.deliveries().len(), 4);
        let flushes: u64 = (0..4).map(|i| sim.node(i).flushes()).sum();
        assert!(flushes > 0);
    }

    #[test]
    fn config_validation() {
        let sampler = RouteSampler::new(8, PathLengthDist::fixed(2), PathKind::Simple).unwrap();
        let keys = Arc::new(KeyStore::from_seed(b"k", 8));
        assert!(MixNode::new(0, Arc::clone(&keys), sampler.clone(), 2048, 0, 1).is_err());
        assert!(MixNode::new(0, keys, sampler, 2048, 3, 1).is_ok());
    }
}
