//! Error types for `anonroute-protocols`.

use std::fmt;

/// Errors from protocol construction and configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid protocol parameters (threshold, probability, cell size…).
    Config(String),
    /// An underlying strategy/distribution was rejected by the core model.
    Core(String),
    /// The crypto substrate rejected an operation.
    Crypto(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "protocol configuration error: {msg}"),
            Error::Core(msg) => write!(f, "strategy error: {msg}"),
            Error::Crypto(msg) => write!(f, "crypto error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<anonroute_core::Error> for Error {
    fn from(e: anonroute_core::Error) -> Self {
        Error::Core(e.to_string())
    }
}

impl From<anonroute_crypto::Error> for Error {
    fn from(e: anonroute_crypto::Error) -> Self {
        Error::Crypto(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let core_err = anonroute_core::Error::InvalidModel("n is zero".into());
        let e: Error = core_err.into();
        assert!(e.to_string().contains("n is zero"));
        let crypto_err = anonroute_crypto::Error::BadMac;
        let e: Error = crypto_err.into();
        assert!(e.to_string().contains("authentication"));
    }
}
