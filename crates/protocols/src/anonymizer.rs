//! Single-proxy systems (Anonymizer, LPWA): every request is relayed
//! through one designated proxy that strips identifying information.
//!
//! The rerouting path always has exactly one intermediate node — the
//! weakest strategy the paper evaluates (and, if the proxy itself is
//! compromised, no strategy at all).

use anonroute_sim::{Ctx, Endpoint, Message, NodeBehavior, NodeId};

/// A member of a single-proxy deployment. One node (the `proxy`) relays
/// for everyone; other members send their traffic to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyClientNode {
    me: NodeId,
    proxy: NodeId,
    relayed: u64,
}

impl ProxyClientNode {
    /// Creates the behavior for node `me` in a deployment whose designated
    /// proxy is `proxy`.
    pub fn new(me: NodeId, proxy: NodeId) -> Self {
        ProxyClientNode {
            me,
            proxy,
            relayed: 0,
        }
    }

    /// Requests relayed (nonzero only on the proxy).
    pub fn relayed(&self) -> u64 {
        self.relayed
    }
}

impl NodeBehavior for ProxyClientNode {
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if self.me == self.proxy {
            // the proxy's own traffic still goes "through" itself: a
            // zero-intermediate path straight to the server
            ctx.send_to_receiver(msg);
        } else {
            ctx.send(self.proxy, msg);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
        // only the proxy receives member traffic; strip and relay
        self.relayed += 1;
        ctx.send_to_receiver(msg);
    }
}

/// Builds an `n`-member single-proxy deployment with the given proxy.
pub fn anonymizer_network(n: usize, proxy: NodeId) -> Vec<ProxyClientNode> {
    (0..n).map(|me| ProxyClientNode::new(me, proxy)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_sim::{LatencyModel, SimTime, Simulation};

    #[test]
    fn all_traffic_relays_through_the_proxy() {
        let mut sim = Simulation::new(anonymizer_network(6, 2), LatencyModel::Constant(100), 4);
        for i in 0..6 {
            sim.schedule_origination(SimTime::from_micros(i as u64), i, vec![i as u8]);
        }
        sim.run();
        assert_eq!(sim.deliveries().len(), 6);
        // 5 client messages relayed; the proxy's own went direct
        assert_eq!(sim.node(2).relayed(), 5);
        for t in sim.trace() {
            match t.to {
                Endpoint::Node(id) => assert_eq!(id, 2, "only the proxy receives traffic"),
                Endpoint::Receiver => {}
            }
        }
    }

    #[test]
    fn proxy_own_traffic_is_direct() {
        let mut sim = Simulation::new(anonymizer_network(3, 0), LatencyModel::Constant(100), 4);
        sim.schedule_origination(SimTime::ZERO, 0, b"me".to_vec());
        sim.run();
        assert_eq!(sim.trace().len(), 1);
        assert_eq!(sim.deliveries()[0].last_hop, Endpoint::Node(0));
    }
}
