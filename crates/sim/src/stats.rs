//! Run statistics: delivery latency and throughput summaries.

use std::collections::HashMap;

use crate::message::Delivery;
use crate::message::MsgId;
use crate::simulation::Origination;

/// Summary statistics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Messages originated.
    pub originated: usize,
    /// Messages delivered to the receiver.
    pub delivered: usize,
    /// Mean end-to-end latency in microseconds over delivered messages.
    pub mean_latency_us: f64,
    /// Maximum end-to-end latency in microseconds.
    pub max_latency_us: u64,
    /// 95th-percentile latency in microseconds.
    pub p95_latency_us: u64,
}

impl RunStats {
    /// Computes statistics from origination and delivery logs.
    ///
    /// Messages that never reached the receiver (e.g. cut off by a run
    /// horizon) count toward `originated` only.
    pub fn compute(originations: &[Origination], deliveries: &[Delivery]) -> RunStats {
        let start: HashMap<MsgId, u64> = originations
            .iter()
            .map(|o| (o.msg, o.time.as_micros()))
            .collect();
        let mut latencies: Vec<u64> = deliveries
            .iter()
            .filter_map(|d| {
                start
                    .get(&d.msg)
                    .map(|&s| d.time.as_micros().saturating_sub(s))
            })
            .collect();
        latencies.sort_unstable();
        let delivered = latencies.len();
        let mean = if delivered == 0 {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / delivered as f64
        };
        let max = latencies.last().copied().unwrap_or(0);
        let p95 = if delivered == 0 {
            0
        } else {
            latencies[((delivered as f64 * 0.95).ceil() as usize).min(delivered) - 1]
        };
        RunStats {
            originated: originations.len(),
            delivered,
            mean_latency_us: mean,
            max_latency_us: max,
            p95_latency_us: p95,
        }
    }

    /// Delivery ratio in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.originated == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.originated as f64
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} delivered, latency mean={:.0}us p95={}us max={}us",
            self.delivered,
            self.originated,
            self.mean_latency_us,
            self.p95_latency_us,
            self.max_latency_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Endpoint;
    use crate::time::SimTime;

    fn orig(t: u64, msg: u64) -> Origination {
        Origination {
            time: SimTime::from_micros(t),
            sender: 0,
            msg: MsgId(msg),
        }
    }

    fn deliv(t: u64, msg: u64) -> Delivery {
        Delivery {
            time: SimTime::from_micros(t),
            msg: MsgId(msg),
            last_hop: Endpoint::Node(0),
            payload: vec![],
        }
    }

    #[test]
    fn basic_latency_stats() {
        let o = vec![orig(0, 1), orig(100, 2), orig(200, 3)];
        let d = vec![deliv(1000, 1), deliv(1100, 2)];
        let s = RunStats::compute(&o, &d);
        assert_eq!(s.originated, 3);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.mean_latency_us, 1000.0);
        assert_eq!(s.max_latency_us, 1000);
        assert!((s.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_runs_do_not_divide_by_zero() {
        let s = RunStats::compute(&[], &[]);
        assert_eq!(s.delivered, 0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.delivery_ratio(), 0.0);
    }

    #[test]
    fn p95_of_uniform_ladder() {
        let o: Vec<Origination> = (0..100).map(|i| orig(0, i)).collect();
        let d: Vec<Delivery> = (0..100).map(|i| deliv((i + 1) * 10, i)).collect();
        let s = RunStats::compute(&o, &d);
        assert_eq!(s.p95_latency_us, 950);
        assert_eq!(s.max_latency_us, 1000);
    }

    #[test]
    fn display_is_informative() {
        let s = RunStats::compute(&[orig(0, 1)], &[deliv(10, 1)]);
        assert!(s.to_string().contains("1/1 delivered"));
    }
}
