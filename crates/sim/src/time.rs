//! Virtual time for the discrete-event simulator.

/// A point in virtual time, in integer microseconds since simulation start.
///
/// Integer ticks keep the event queue total-ordered and runs bit-for-bit
/// reproducible across platforms (no float accumulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time advanced by `delta` microseconds (saturating).
    #[must_use]
    pub const fn after_micros(self, delta: u64) -> Self {
        SimTime(self.0.saturating_add(delta))
    }

    /// Duration since `earlier` in microseconds (saturating).
    pub const fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3000));
        assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_micros(5);
        let b = a.after_micros(10);
        assert!(b > a);
        assert_eq!(b.since(a), 10);
        assert_eq!(a.since(b), 0); // saturating
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
