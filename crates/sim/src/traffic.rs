//! Workload generators: who sends when.

use rand::Rng;

use crate::message::NodeId;
use crate::time::SimTime;

/// One planned message origination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Origination time.
    pub at: SimTime,
    /// Sending node (uniform over members — the paper's a-priori model).
    pub sender: NodeId,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Poisson arrival process: exponential inter-arrival times at `rate`
/// messages per second, senders uniform over the `n` members.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonTraffic {
    /// Mean arrival rate in messages per second.
    pub rate_per_sec: f64,
    /// Generation stops at this time.
    pub horizon: SimTime,
    /// Payload size per message in bytes.
    pub payload_len: usize,
}

impl PoissonTraffic {
    /// Generates the arrival schedule.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive or `n == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Arrival> {
        assert!(self.rate_per_sec > 0.0, "rate must be positive");
        assert!(n > 0, "need at least one sender");
        let mut arrivals = Vec::new();
        let mut t_us = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t_us += -u.ln() / self.rate_per_sec * 1e6;
            let at = SimTime::from_micros(t_us as u64);
            if at > self.horizon {
                break;
            }
            let sender = rng.gen_range(0..n);
            let mut payload = vec![0u8; self.payload_len];
            rng.fill(payload.as_mut_slice());
            arrivals.push(Arrival {
                at,
                sender,
                payload,
            });
        }
        arrivals
    }
}

/// Deterministic workload: `count` messages at a fixed interval, senders
/// drawn uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformTraffic {
    /// Total messages to emit.
    pub count: usize,
    /// Spacing between consecutive originations in microseconds.
    pub interval_us: u64,
    /// Payload size per message in bytes.
    pub payload_len: usize,
}

impl UniformTraffic {
    /// Generates the arrival schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Arrival> {
        assert!(n > 0, "need at least one sender");
        (0..self.count)
            .map(|i| {
                let mut payload = vec![0u8; self.payload_len];
                rng.fill(payload.as_mut_slice());
                Arrival {
                    at: SimTime::from_micros(i as u64 * self.interval_us),
                    sender: rng.gen_range(0..n),
                    payload,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let traffic = PoissonTraffic {
            rate_per_sec: 100.0,
            horizon: SimTime::from_secs(50),
            payload_len: 8,
        };
        let arrivals = traffic.generate(10, &mut rng);
        // expect ~5000 arrivals; Poisson sd ~ 71
        assert!(
            (arrivals.len() as f64 - 5000.0).abs() < 300.0,
            "got {} arrivals",
            arrivals.len()
        );
        // times sorted and within horizon
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(arrivals.last().unwrap().at <= SimTime::from_secs(50));
    }

    #[test]
    fn poisson_senders_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let traffic = PoissonTraffic {
            rate_per_sec: 1000.0,
            horizon: SimTime::from_secs(20),
            payload_len: 0,
        };
        let arrivals = traffic.generate(4, &mut rng);
        let mut counts = [0usize; 4];
        for a in &arrivals {
            counts[a.sender] += 1;
        }
        let total: usize = counts.iter().sum();
        for &c in &counts {
            let freq = c as f64 / total as f64;
            assert!((freq - 0.25).abs() < 0.03, "sender freq {freq}");
        }
    }

    #[test]
    fn uniform_traffic_is_evenly_spaced() {
        let mut rng = StdRng::seed_from_u64(7);
        let arrivals = UniformTraffic {
            count: 5,
            interval_us: 250,
            payload_len: 4,
        }
        .generate(3, &mut rng);
        assert_eq!(arrivals.len(), 5);
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.at, SimTime::from_micros(i as u64 * 250));
            assert_eq!(a.payload.len(), 4);
            assert!(a.sender < 3);
        }
    }
}
