//! Workload generators: who sends when.
//!
//! Two shapes: **materialized** schedules ([`PoissonTraffic::generate`]
//! and friends return a `Vec<Arrival>` up front) and **streamed**
//! processes ([`PoissonProcess`], [`UniformProcess`], [`CoverTraffic`])
//! that implement [`TrafficProcess`] and feed the simulation one arrival
//! at a time — O(1) queue memory for million-message cover workloads.

use rand::rngs::StdRng;
use rand::Rng;

use crate::message::{MsgId, NodeId};
use crate::simulation::TrafficProcess;
use crate::time::SimTime;

/// One planned message origination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Origination time.
    pub at: SimTime,
    /// Sending node (uniform over members — the paper's a-priori model).
    pub sender: NodeId,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Poisson arrival process: exponential inter-arrival times at `rate`
/// messages per second, senders uniform over the `n` members.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonTraffic {
    /// Mean arrival rate in messages per second.
    pub rate_per_sec: f64,
    /// Generation stops at this time.
    pub horizon: SimTime,
    /// Payload size per message in bytes.
    pub payload_len: usize,
}

impl PoissonTraffic {
    /// Generates the arrival schedule.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive or `n == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Arrival> {
        assert!(self.rate_per_sec > 0.0, "rate must be positive");
        assert!(n > 0, "need at least one sender");
        let mut arrivals = Vec::new();
        let mut t_us = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t_us += -u.ln() / self.rate_per_sec * 1e6;
            let at = SimTime::from_micros(t_us as u64);
            if at > self.horizon {
                break;
            }
            let sender = rng.gen_range(0..n);
            let mut payload = vec![0u8; self.payload_len];
            rng.fill(payload.as_mut_slice());
            arrivals.push(Arrival {
                at,
                sender,
                payload,
            });
        }
        arrivals
    }
}

/// Deterministic workload: `count` messages at a fixed interval, senders
/// drawn uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformTraffic {
    /// Total messages to emit.
    pub count: usize,
    /// Spacing between consecutive originations in microseconds.
    pub interval_us: u64,
    /// Payload size per message in bytes.
    pub payload_len: usize,
}

impl UniformTraffic {
    /// Generates the arrival schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Arrival> {
        assert!(n > 0, "need at least one sender");
        (0..self.count)
            .map(|i| {
                let mut payload = vec![0u8; self.payload_len];
                rng.fill(payload.as_mut_slice());
                Arrival {
                    at: SimTime::from_micros(i as u64 * self.interval_us),
                    sender: rng.gen_range(0..n),
                    payload,
                }
            })
            .collect()
    }
}

/// Streamed Poisson arrivals: the [`TrafficProcess`] counterpart of
/// [`PoissonTraffic`]. Each pull draws the exponential gap, a uniform
/// sender, and fresh payload junk — in that order — from the simulation
/// PRNG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    /// Mean arrival rate in messages per second.
    pub rate_per_sec: f64,
    /// Generation stops at this time.
    pub horizon: SimTime,
    /// Payload size per message in bytes.
    pub payload_len: usize,
    /// Number of candidate senders (uniform).
    pub n: usize,
    /// Accumulated arrival time in fractional microseconds.
    t_us: f64,
}

impl PoissonProcess {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive or `n == 0`.
    pub fn new(rate_per_sec: f64, horizon: SimTime, payload_len: usize, n: usize) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(n > 0, "need at least one sender");
        PoissonProcess {
            rate_per_sec,
            horizon,
            payload_len,
            n,
            t_us: 0.0,
        }
    }
}

impl TrafficProcess for PoissonProcess {
    fn next_arrival(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<Arrival> {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.t_us += -u.ln() / self.rate_per_sec * 1e6;
        let at = SimTime::from_micros(self.t_us as u64);
        if at > self.horizon {
            return None;
        }
        let sender = rng.gen_range(0..self.n);
        let mut payload = vec![0u8; self.payload_len];
        rng.fill(payload.as_mut_slice());
        Some(Arrival {
            at,
            sender,
            payload,
        })
    }
}

/// Streamed fixed-interval arrivals: the [`TrafficProcess`] counterpart
/// of [`UniformTraffic`] (random uniform senders, evenly spaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformProcess {
    /// Total messages to emit.
    pub count: usize,
    /// Spacing between consecutive originations in microseconds.
    pub interval_us: u64,
    /// Payload size per message in bytes.
    pub payload_len: usize,
    /// Number of candidate senders (uniform).
    pub n: usize,
    emitted: usize,
}

impl UniformProcess {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(count: usize, interval_us: u64, payload_len: usize, n: usize) -> Self {
        assert!(n > 0, "need at least one sender");
        UniformProcess {
            count,
            interval_us,
            payload_len,
            n,
            emitted: 0,
        }
    }
}

impl TrafficProcess for UniformProcess {
    fn next_arrival(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<Arrival> {
        if self.emitted == self.count {
            return None;
        }
        let at = SimTime::from_micros(self.emitted as u64 * self.interval_us);
        self.emitted += 1;
        let mut payload = vec![0u8; self.payload_len];
        rng.fill(payload.as_mut_slice());
        Some(Arrival {
            at,
            sender: rng.gen_range(0..self.n),
            payload,
        })
    }
}

/// Deterministic cover traffic: every member emits `rounds` dummy
/// messages, round-robin across the `n` senders, spaced `interval_us`
/// apart — the constant-rate background the paper's protocols hide real
/// traffic in. No randomness: cover is schedule, not signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverTraffic {
    /// Number of members emitting cover.
    pub n: usize,
    /// Dummy messages per member.
    pub rounds: usize,
    /// Spacing between consecutive cover emissions in microseconds.
    pub interval_us: u64,
    /// Payload size per dummy in bytes (zeroed).
    pub payload_len: usize,
    emitted: usize,
}

impl CoverTraffic {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, rounds: usize, interval_us: u64, payload_len: usize) -> Self {
        assert!(n > 0, "need at least one sender");
        CoverTraffic {
            n,
            rounds,
            interval_us,
            payload_len,
            emitted: 0,
        }
    }
}

impl TrafficProcess for CoverTraffic {
    fn next_arrival(&mut self, _now: SimTime, _rng: &mut StdRng) -> Option<Arrival> {
        if self.emitted == self.n * self.rounds {
            return None;
        }
        let k = self.emitted;
        self.emitted += 1;
        Some(Arrival {
            at: SimTime::from_micros(k as u64 * self.interval_us),
            sender: k % self.n,
            payload: vec![0u8; self.payload_len],
        })
    }
}

/// Persistent sender–receiver sessions for multi-round (epoch) runs:
/// each session pins one sender who sends exactly one message per epoch
/// it is active in — the workload the long-term intersection adversary
/// correlates across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTraffic {
    /// Number of persistent sessions.
    pub sessions: usize,
    /// Spacing between consecutive originations within an epoch, in
    /// microseconds.
    pub interval_us: u64,
    /// Payload size per message in bytes.
    pub payload_len: usize,
}

impl SessionTraffic {
    /// Draws the persistent senders, uniformly over the `n` members (the
    /// paper's a-priori sender model). `senders[s]` is session `s`'s
    /// sender for the whole multi-round run.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn senders<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<NodeId> {
        assert!(n > 0, "need at least one sender");
        (0..self.sessions).map(|_| rng.gen_range(0..n)).collect()
    }

    /// Generates one epoch's arrival schedule over the nodes active this
    /// epoch. `local_of` maps a persistent sender to its id in the
    /// epoch's (possibly churned) address space — `None` means the
    /// sender is offline and its session sits the epoch out. Returns the
    /// arrivals (senders already in epoch-local ids) paired with, per
    /// arrival, the session id it belongs to: the correlation key a
    /// multi-round adversary folds on, and the map callers use to
    /// rewrite engine-assigned message ids back to session ids. Payload
    /// junk is drawn fresh per epoch from `rng` (active sessions only).
    pub fn epoch_arrivals<R: Rng + ?Sized>(
        &self,
        senders: &[NodeId],
        mut local_of: impl FnMut(NodeId) -> Option<NodeId>,
        rng: &mut R,
    ) -> (Vec<Arrival>, Vec<MsgId>) {
        let mut arrivals = Vec::with_capacity(senders.len());
        let mut session_of = Vec::with_capacity(senders.len());
        for (session, &sender) in senders.iter().enumerate() {
            let Some(local_sender) = local_of(sender) else {
                continue;
            };
            let mut payload = vec![0u8; self.payload_len];
            rng.fill(payload.as_mut_slice());
            arrivals.push(Arrival {
                at: SimTime::from_micros(arrivals.len() as u64 * self.interval_us),
                sender: local_sender,
                payload,
            });
            session_of.push(MsgId(session as u64));
        }
        (arrivals, session_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let traffic = PoissonTraffic {
            rate_per_sec: 100.0,
            horizon: SimTime::from_secs(50),
            payload_len: 8,
        };
        let arrivals = traffic.generate(10, &mut rng);
        // expect ~5000 arrivals; Poisson sd ~ 71
        assert!(
            (arrivals.len() as f64 - 5000.0).abs() < 300.0,
            "got {} arrivals",
            arrivals.len()
        );
        // times sorted and within horizon
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(arrivals.last().unwrap().at <= SimTime::from_secs(50));
    }

    #[test]
    fn poisson_senders_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let traffic = PoissonTraffic {
            rate_per_sec: 1000.0,
            horizon: SimTime::from_secs(20),
            payload_len: 0,
        };
        let arrivals = traffic.generate(4, &mut rng);
        let mut counts = [0usize; 4];
        for a in &arrivals {
            counts[a.sender] += 1;
        }
        let total: usize = counts.iter().sum();
        for &c in &counts {
            let freq = c as f64 / total as f64;
            assert!((freq - 0.25).abs() < 0.03, "sender freq {freq}");
        }
    }

    #[test]
    fn session_traffic_pins_senders_across_epochs() {
        let mut rng = StdRng::seed_from_u64(9);
        let traffic = SessionTraffic {
            sessions: 40,
            interval_us: 100,
            payload_len: 8,
        };
        let senders = traffic.senders(6, &mut rng);
        assert_eq!(senders.len(), 40);
        assert!(senders.iter().all(|&s| s < 6));
        let (epoch_a, sess_a) = traffic.epoch_arrivals(&senders, Some, &mut rng);
        let (epoch_b, sess_b) = traffic.epoch_arrivals(&senders, Some, &mut rng);
        assert_eq!(epoch_a.len(), 40);
        assert_eq!(sess_a, sess_b);
        for (i, (a, b)) in epoch_a.iter().zip(&epoch_b).enumerate() {
            assert_eq!(sess_a[i], MsgId(i as u64), "full activity keeps order");
            assert_eq!(a.sender, senders[i], "arrival i belongs to session i");
            assert_eq!(a.sender, b.sender, "senders persist across epochs");
            assert_eq!(a.at, SimTime::from_micros(i as u64 * 100));
            assert_eq!(a.payload.len(), 8);
        }
        // payload junk is re-drawn per epoch
        assert!(epoch_a
            .iter()
            .zip(&epoch_b)
            .any(|(a, b)| a.payload != b.payload));
    }

    #[test]
    fn churned_sessions_sit_epochs_out_but_keep_their_ids() {
        let mut rng = StdRng::seed_from_u64(3);
        let traffic = SessionTraffic {
            sessions: 10,
            interval_us: 50,
            payload_len: 2,
        };
        let senders: Vec<NodeId> = (0..10).map(|s| s % 5).collect();
        // epoch where nodes 0 and 3 are offline; actives compact to
        // local ids: 1 -> 0, 2 -> 1, 4 -> 2
        let local_of = |u: NodeId| match u {
            1 => Some(0),
            2 => Some(1),
            4 => Some(2),
            _ => None,
        };
        let (arrivals, session_of) = traffic.epoch_arrivals(&senders, local_of, &mut rng);
        assert_eq!(arrivals.len(), 6, "sessions with offline senders sit out");
        assert_eq!(arrivals.len(), session_of.len());
        for (k, (a, &sess)) in arrivals.iter().zip(&session_of).enumerate() {
            assert_eq!(
                a.at,
                SimTime::from_micros(k as u64 * 50),
                "gapless schedule"
            );
            assert_eq!(a.sender, local_of(senders[sess.0 as usize]).unwrap());
        }
        // session ids refer to the persistent universe numbering
        assert_eq!(session_of[0], MsgId(1), "session 0 (sender 0) is offline");
    }

    #[test]
    fn streamed_poisson_matches_the_materialized_schedule() {
        let traffic = PoissonTraffic {
            rate_per_sec: 500.0,
            horizon: SimTime::from_secs(2),
            payload_len: 4,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let materialized = traffic.generate(7, &mut rng);
        // the stream draws (gap, sender, payload) in the same order, so
        // an identically seeded RNG reproduces the schedule exactly
        let mut rng = StdRng::seed_from_u64(11);
        let mut stream = PoissonProcess::new(500.0, SimTime::from_secs(2), 4, 7);
        let streamed: Vec<Arrival> =
            std::iter::from_fn(|| stream.next_arrival(SimTime::ZERO, &mut rng)).collect();
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn streamed_uniform_matches_the_materialized_schedule() {
        let traffic = UniformTraffic {
            count: 30,
            interval_us: 120,
            payload_len: 3,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let materialized = traffic.generate(5, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let mut stream = UniformProcess::new(30, 120, 3, 5);
        let streamed: Vec<Arrival> =
            std::iter::from_fn(|| stream.next_arrival(SimTime::ZERO, &mut rng)).collect();
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn cover_traffic_is_round_robin_and_exhausts() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cover = CoverTraffic::new(3, 2, 10, 1);
        let arrivals: Vec<Arrival> =
            std::iter::from_fn(|| cover.next_arrival(SimTime::ZERO, &mut rng)).collect();
        assert_eq!(arrivals.len(), 6);
        let senders: Vec<NodeId> = arrivals.iter().map(|a| a.sender).collect();
        assert_eq!(senders, vec![0, 1, 2, 0, 1, 2]);
        for (k, a) in arrivals.iter().enumerate() {
            assert_eq!(a.at, SimTime::from_micros(k as u64 * 10));
            assert_eq!(a.payload, vec![0u8]);
        }
    }

    #[test]
    fn uniform_traffic_is_evenly_spaced() {
        let mut rng = StdRng::seed_from_u64(7);
        let arrivals = UniformTraffic {
            count: 5,
            interval_us: 250,
            payload_len: 4,
        }
        .generate(3, &mut rng);
        assert_eq!(arrivals.len(), 5);
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.at, SimTime::from_micros(i as u64 * 250));
            assert_eq!(a.payload.len(), 4);
            assert!(a.sender < 3);
        }
    }
}
