//! A live, multi-threaded runtime executing the same [`NodeBehavior`]
//! protocols as the discrete-event engine.
//!
//! Each member node runs on its own OS thread and exchanges messages over
//! `crossbeam` channels through a router thread that applies link latency
//! and records the ground-truth trace. This demonstrates that the protocol
//! implementations are not simulation artifacts — they run under real
//! concurrency — at the cost of determinism (event interleaving depends on
//! the scheduler; use the discrete-event engine for reproducible
//! experiments).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::latency::LatencyModel;
use crate::message::{Delivery, Endpoint, Message, MsgId, NodeId, TransferRecord};
use crate::node::{Action, Ctx, NodeBehavior};
use crate::simulation::Origination;
use crate::time::SimTime;
use crate::traffic::Arrival;

/// Configuration of the live runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Real microseconds slept per virtual microsecond of link latency
    /// (0.0 = as fast as possible).
    pub time_scale: f64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig { time_scale: 0.0 }
    }
}

/// Result of a live run.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// Edge trace with wall-clock-derived timestamps.
    pub trace: Vec<TransferRecord>,
    /// Messages delivered to the receiver.
    pub deliveries: Vec<Delivery>,
    /// Ground-truth senders.
    pub originations: Vec<Origination>,
}

enum NodeEvent {
    Originate(Message),
    Incoming { from: Endpoint, msg: Message },
    Timer { tag: u64 },
    Shutdown,
}

enum RouterMsg {
    Transfer {
        from: Endpoint,
        to: Endpoint,
        msg: Message,
    },
    TimerRequest {
        node: NodeId,
        fire_at: Instant,
        tag: u64,
    },
    Shutdown,
}

/// Fires a router shutdown if its owning thread unwinds, so one
/// panicking node cannot strand the rest of the network: the router
/// broadcasts shutdown, every thread drains, and [`run_live`] gets to
/// observe (and re-raise) the panic instead of hanging on a join.
struct PanicShutdown {
    tx: Sender<RouterMsg>,
}

impl Drop for PanicShutdown {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.tx.send(RouterMsg::Shutdown);
        }
    }
}

/// Runs `arrivals` through the node behaviors under real concurrency and
/// returns the collected trace once the network drains.
///
/// # Panics
///
/// Panics if an arrival names a sender out of range, and re-raises any
/// panic from a node or router thread after the network has wound down —
/// a crashing [`NodeBehavior`] fails the run loudly rather than hanging
/// the caller on a join that can never finish.
pub fn run_live<B>(
    nodes: Vec<B>,
    latency: LatencyModel,
    seed: u64,
    arrivals: Vec<Arrival>,
    config: LiveConfig,
) -> LiveOutcome
where
    B: NodeBehavior + Send + 'static,
{
    let n = nodes.len();
    let epoch = Instant::now();
    let work = Arc::new(AtomicI64::new(0));
    let trace = Arc::new(Mutex::new(Vec::<TransferRecord>::new()));
    let deliveries = Arc::new(Mutex::new(Vec::<Delivery>::new()));

    let (router_tx, router_rx) = unbounded::<RouterMsg>();
    let mut node_txs: Vec<Sender<NodeEvent>> = Vec::with_capacity(n);
    let mut node_rxs: Vec<Receiver<NodeEvent>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        node_txs.push(tx);
        node_rxs.push(rx);
    }

    // --- node threads -----------------------------------------------------
    let mut handles = Vec::new();
    for (id, mut behavior) in nodes.into_iter().enumerate() {
        let rx = node_rxs.remove(0);
        let tx_router = router_tx.clone();
        let work = Arc::clone(&work);
        let time_scale = config.time_scale;
        let epoch_local = epoch;
        handles.push(std::thread::spawn(move || {
            let _panic_guard = PanicShutdown {
                tx: tx_router.clone(),
            };
            let mut rng =
                StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15));
            while let Ok(event) = rx.recv() {
                let mut actions = Vec::new();
                let now = SimTime::from_micros(epoch_local.elapsed().as_micros() as u64);
                match event {
                    NodeEvent::Shutdown => break,
                    NodeEvent::Originate(msg) => {
                        let mut ctx = Ctx::new(now, id, &mut rng, &mut actions);
                        behavior.on_originate(&mut ctx, msg);
                    }
                    NodeEvent::Incoming { from, msg } => {
                        let mut ctx = Ctx::new(now, id, &mut rng, &mut actions);
                        behavior.on_message(&mut ctx, from, msg);
                    }
                    NodeEvent::Timer { tag } => {
                        let mut ctx = Ctx::new(now, id, &mut rng, &mut actions);
                        behavior.on_timer(&mut ctx, tag);
                    }
                }
                for action in actions {
                    work.fetch_add(1, Ordering::SeqCst);
                    let msg = match action {
                        Action::Send { to, msg } => RouterMsg::Transfer {
                            from: Endpoint::Node(id),
                            to,
                            msg,
                        },
                        Action::SetTimer { delay_us, tag } => RouterMsg::TimerRequest {
                            node: id,
                            fire_at: Instant::now()
                                + Duration::from_micros(
                                    (delay_us as f64 * time_scale.max(0.0)) as u64,
                                ),
                            tag,
                        },
                    };
                    let _ = tx_router.send(msg);
                }
                if work.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let _ = tx_router.send(RouterMsg::Shutdown);
                }
            }
        }));
    }

    // --- router thread ------------------------------------------------------
    let router = {
        let node_txs = node_txs.clone();
        let work = Arc::clone(&work);
        let trace = Arc::clone(&trace);
        let deliveries = Arc::clone(&deliveries);
        let time_scale = config.time_scale;
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
            let mut timers: Vec<(Instant, NodeId, u64)> = Vec::new();
            loop {
                // fire due timers first
                let now = Instant::now();
                let mut i = 0;
                while i < timers.len() {
                    if timers[i].0 <= now {
                        let (_, node, tag) = timers.swap_remove(i);
                        let _ = node_txs[node].send(NodeEvent::Timer { tag });
                    } else {
                        i += 1;
                    }
                }
                let timeout = timers
                    .iter()
                    .map(|(t, _, _)| t.saturating_duration_since(now))
                    .min()
                    .unwrap_or(Duration::from_millis(50));
                let msg = match router_rx.recv_timeout(timeout) {
                    Ok(m) => m,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                };
                match msg {
                    RouterMsg::Shutdown => {
                        for tx in &node_txs {
                            let _ = tx.send(NodeEvent::Shutdown);
                        }
                        break;
                    }
                    RouterMsg::TimerRequest { node, fire_at, tag } => {
                        timers.push((fire_at, node, tag));
                    }
                    RouterMsg::Transfer { from, to, msg } => {
                        if time_scale > 0.0 {
                            let delay = latency.sample(&mut rng);
                            std::thread::sleep(Duration::from_micros(
                                (delay as f64 * time_scale) as u64,
                            ));
                        }
                        let at = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
                        trace.lock().push(TransferRecord {
                            time: at,
                            from,
                            to,
                            msg: msg.id,
                        });
                        match to {
                            Endpoint::Receiver => {
                                deliveries.lock().push(Delivery {
                                    time: at,
                                    msg: msg.id,
                                    last_hop: from,
                                    payload: msg.bytes,
                                });
                                if work.fetch_sub(1, Ordering::SeqCst) == 1 {
                                    for tx in &node_txs {
                                        let _ = tx.send(NodeEvent::Shutdown);
                                    }
                                    break;
                                }
                            }
                            Endpoint::Node(id) => {
                                let _ = node_txs[id].send(NodeEvent::Incoming { from, msg });
                            }
                        }
                    }
                }
            }
        })
    };

    // --- inject originations ------------------------------------------------
    let mut originations = Vec::with_capacity(arrivals.len());
    work.fetch_add(arrivals.len() as i64, Ordering::SeqCst);
    for (i, arrival) in arrivals.into_iter().enumerate() {
        assert!(arrival.sender < n, "arrival sender out of range");
        let id = MsgId(i as u64);
        let record = Origination {
            time: SimTime::from_micros(epoch.elapsed().as_micros() as u64),
            sender: arrival.sender,
            msg: id,
        };
        if node_txs[arrival.sender]
            .send(NodeEvent::Originate(Message::new(id, arrival.payload)))
            .is_err()
        {
            // a worker panicked and its PanicShutdown already tore the
            // network down mid-injection; stop injecting so the joins
            // below re-raise the worker's own panic message (the work
            // counter was pre-incremented, so a send can only fail on
            // abnormal shutdown)
            break;
        }
        originations.push(record);
    }
    drop(router_tx);
    drop(node_txs);

    let mut worker_panics: Vec<String> = Vec::new();
    for h in handles {
        if let Err(payload) = h.join() {
            worker_panics.push(panic_text(payload));
        }
    }
    if let Err(payload) = router.join() {
        worker_panics.push(panic_text(payload));
    }
    if !worker_panics.is_empty() {
        panic!("live runtime worker panicked: {}", worker_panics.join("; "));
    }

    let trace = Arc::try_unwrap(trace).expect("threads joined").into_inner();
    let deliveries = Arc::try_unwrap(deliveries)
        .expect("threads joined")
        .into_inner();
    LiveOutcome {
        trace,
        deliveries,
        originations,
    }
}

/// [`run_live`] under a wall-clock deadline: the runtime runs on a
/// watchdog helper thread and the caller waits at most `deadline` for
/// its outcome. A run that overruns — or panics — becomes an `Err`
/// instead of a hang, and an overrunning helper is **registered with
/// the process-wide [`crate::reaper`]** rather than leaked: the next
/// [`crate::reaper::ThreadReaper::join_abandoned`] call joins it once
/// its own teardown finishes.
///
/// # Errors
///
/// Returns an error if a node or router thread panicked, or if no
/// outcome arrived within `deadline`.
pub fn run_live_deadline<B>(
    nodes: Vec<B>,
    latency: LatencyModel,
    seed: u64,
    arrivals: Vec<Arrival>,
    config: LiveConfig,
    deadline: Duration,
) -> Result<LiveOutcome, String>
where
    B: NodeBehavior + Send + 'static,
{
    let n = nodes.len();
    let (result_tx, result_rx) = std::sync::mpsc::channel();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let runner = std::thread::spawn(move || {
        let _done = crate::reaper::DoneGuard::new(done_tx);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_live(nodes, latency, seed, arrivals, config)
        }));
        // the receiver may have hung up (deadline fired); nothing to do
        let _ = result_tx.send(result);
    });
    match result_rx.recv_timeout(deadline) {
        Ok(result) => {
            // the runner already sent its outcome: nothing left but the
            // guard drop and return, so this join is near-instant
            let _ = runner.join();
            result.map_err(|payload| format!("live runtime panicked: {}", panic_text(payload)))
        }
        Err(_) => {
            // park the runner for a bounded reap instead of leaking it
            crate::reaper::global().register(done_rx, runner);
            Err(format!(
                "live run exceeded its {deadline:?} deadline (n={n} node threads); the runner \
                 thread was handed to the abandoned-thread reaper"
            ))
        }
    }
}

/// Renders a `JoinHandle::join` panic payload as a message (shared with
/// the downstream crates that join worker threads, e.g. `anonroute-relay`).
pub fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forwards k times through random peers, then delivers.
    struct RandomWalk {
        remaining_hops: std::collections::HashMap<MsgId, usize>,
        hops: usize,
        n: usize,
    }
    impl RandomWalk {
        fn new(hops: usize, n: usize) -> Self {
            RandomWalk {
                remaining_hops: Default::default(),
                hops,
                n,
            }
        }
        fn step(&mut self, ctx: &mut Ctx<'_>, msg: Message, remaining: usize) {
            use rand::Rng;
            if remaining == 0 {
                ctx.send_to_receiver(msg);
            } else {
                let next = ctx.rng().gen_range(0..self.n);
                self.remaining_hops.insert(msg.id, remaining);
                ctx.send(next, msg);
            }
        }
    }
    impl NodeBehavior for RandomWalk {
        fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            let hops = self.hops;
            self.step(ctx, msg, hops);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
            // hop budget travels in the payload to keep nodes stateless
            let mut remaining = msg.bytes[0] as usize;
            remaining = remaining.saturating_sub(1);
            let mut msg = msg;
            msg.bytes[0] = remaining as u8;
            if remaining == 0 {
                ctx.send_to_receiver(msg);
            } else {
                use rand::Rng;
                let next = ctx.rng().gen_range(0..self.n);
                ctx.send(next, msg);
            }
        }
    }

    #[test]
    fn live_runtime_delivers_everything_and_drains() {
        let n = 6;
        let nodes: Vec<RandomWalk> = (0..n).map(|_| RandomWalk::new(0, n)).collect();
        let arrivals: Vec<Arrival> = (0..40)
            .map(|i| Arrival {
                at: SimTime::ZERO,
                sender: i % n,
                payload: vec![3u8], // 3 hops left
            })
            .collect();
        let out = run_live(
            nodes,
            LatencyModel::Constant(10),
            99,
            arrivals,
            LiveConfig::default(),
        );
        assert_eq!(out.originations.len(), 40);
        assert_eq!(out.deliveries.len(), 40, "all messages must drain");
        // every delivered id originated
        for d in &out.deliveries {
            assert!(out.originations.iter().any(|o| o.msg == d.msg));
        }
        // trace contains one receiver edge per delivery
        let recv_edges = out
            .trace
            .iter()
            .filter(|t| t.to == Endpoint::Receiver)
            .count();
        assert_eq!(recv_edges, 40);
    }

    struct EchoTimer {
        pending: Vec<Message>,
    }
    impl NodeBehavior for EchoTimer {
        fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            self.pending.push(msg);
            ctx.set_timer(100, 1);
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: Message) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            for m in self.pending.drain(..) {
                ctx.send_to_receiver(m);
            }
        }
    }

    /// A behavior that panics while relaying, stranding in-flight work.
    struct Crasher {
        n: usize,
    }
    impl NodeBehavior for Crasher {
        fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            use rand::Rng;
            let next = ctx.rng().gen_range(0..self.n);
            ctx.send(next, msg);
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, msg: Message) {
            panic!("crashed relaying {:?}", msg.id);
        }
    }

    #[test]
    fn crashing_behavior_propagates_instead_of_hanging() {
        // run_live must surface the panic within a bound, not deadlock on
        // the drained-work counter that the crashed node never decremented;
        // run_live_deadline joins the runner (or parks it with the reaper
        // on overrun) instead of leaking a polled thread
        let nodes: Vec<Crasher> = (0..4).map(|_| Crasher { n: 4 }).collect();
        let arrivals = vec![Arrival {
            at: SimTime::ZERO,
            sender: 0,
            payload: vec![1],
        }];
        let err = run_live_deadline(
            nodes,
            LatencyModel::Constant(1),
            3,
            arrivals,
            LiveConfig::default(),
            Duration::from_secs(10),
        )
        .expect_err("the panic must propagate");
        assert!(err.contains("crashed relaying"), "unexpected panic: {err}");
    }

    /// A behavior that wedges its node thread long enough to overrun a
    /// short deadline.
    struct SlowPoke;
    impl NodeBehavior for SlowPoke {
        fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            std::thread::sleep(Duration::from_millis(300));
            ctx.send_to_receiver(msg);
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: Message) {}
    }

    #[test]
    fn overrunning_live_runs_are_parked_with_the_reaper_not_leaked() {
        let arrivals = vec![Arrival {
            at: SimTime::ZERO,
            sender: 0,
            payload: vec![1],
        }];
        let err = run_live_deadline(
            vec![SlowPoke],
            LatencyModel::Constant(1),
            8,
            arrivals,
            LiveConfig::default(),
            Duration::from_millis(20),
        )
        .expect_err("a 300 ms node cannot beat a 20 ms deadline");
        assert!(err.contains("deadline"), "unexpected error: {err}");
        // the runner was registered, and once its sleep drains the reaper
        // joins it within the bound
        let (joined, _pending) = crate::reaper::global().join_abandoned(Duration::from_secs(10));
        assert!(joined >= 1, "the overrunning runner must be reaped");
    }

    #[test]
    fn live_runtime_supports_timers() {
        let nodes = vec![EchoTimer { pending: vec![] }, EchoTimer { pending: vec![] }];
        let arrivals = vec![
            Arrival {
                at: SimTime::ZERO,
                sender: 0,
                payload: vec![1],
            },
            Arrival {
                at: SimTime::ZERO,
                sender: 1,
                payload: vec![2],
            },
        ];
        let out = run_live(
            nodes,
            LatencyModel::Constant(1),
            5,
            arrivals,
            LiveConfig { time_scale: 0.01 },
        );
        assert_eq!(out.deliveries.len(), 2);
    }
}
