//! Messages and trace records.

use crate::time::SimTime;

/// Member node identifier, `0..n`.
pub type NodeId = usize;

/// Globally unique message identifier within one simulation run.
///
/// Identifiers follow the *message*, not the cell bytes: when an onion hop
/// re-encrypts a cell the id is preserved, modelling the paper's worst-case
/// assumption that the adversary can correlate sightings of the same
/// message (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u64);

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Correlation identifier (see [`MsgId`]).
    pub id: MsgId,
    /// Opaque bytes — typically an onion cell built by
    /// `anonroute-protocols`, but plain payloads are fine for abstract
    /// simulations.
    pub bytes: Vec<u8>,
}

impl Message {
    /// Creates a message.
    pub fn new(id: MsgId, bytes: Vec<u8>) -> Self {
        Message { id, bytes }
    }
}

/// A communication endpoint: a member node or the (external) receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Member node.
    Node(NodeId),
    /// The destination server (always compromised in the threat model).
    Receiver,
}

/// One edge traversal in the ground-truth trace: `from` handed message
/// `msg` to `to`, arriving at `time`.
///
/// The simulator records *everything*; the `anonroute-adversary` crate then
/// filters this trace down to what compromised agents may legitimately see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Arrival time at `to`.
    pub time: SimTime,
    /// Sending endpoint.
    pub from: Endpoint,
    /// Receiving endpoint.
    pub to: Endpoint,
    /// Message identity.
    pub msg: MsgId,
}

/// A payload delivered to the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Delivery time.
    pub time: SimTime,
    /// Message identity.
    pub msg: MsgId,
    /// The node that handed the message to the receiver (or the sender
    /// itself for direct sends).
    pub last_hop: Endpoint,
    /// Delivered bytes.
    pub payload: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_construction() {
        let m = Message::new(MsgId(7), vec![1, 2, 3]);
        assert_eq!(m.id, MsgId(7));
        assert_eq!(m.bytes.len(), 3);
    }

    #[test]
    fn endpoint_equality() {
        assert_eq!(Endpoint::Node(3), Endpoint::Node(3));
        assert_ne!(Endpoint::Node(3), Endpoint::Node(4));
        assert_ne!(Endpoint::Node(3), Endpoint::Receiver);
    }

    #[test]
    fn msg_ids_are_ordered() {
        assert!(MsgId(1) < MsgId(2));
    }
}
