//! The discrete-event core: one clock, one PRNG, one event queue.
//!
//! [`DesCore`] bundles the three pieces of state every seeded
//! discrete-event simulation shares — a monotone virtual clock, a single
//! per-simulation PRNG, and a deterministic [`EventQueue`] — behind a
//! small API that makes the determinism contract structural:
//!
//! * the clock only moves forward, and only by popping events;
//! * all randomness flows through the one seeded PRNG, in event order;
//! * equal-time events fire in schedule order (the queue's `(time, seq)`
//!   tie-break).
//!
//! Domain engines ([`crate::simulation::Simulation`] here; anything else
//! downstream) own a `DesCore<E>` for their event payload type `E` and
//! drive it with [`DesCore::pop_due`], which advances the clock and hands
//! back the payload — borrow-friendly, because the payload is detached
//! from the core before the caller's handlers run.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{EventId, EventQueue};
use crate::time::SimTime;

/// Seeded clock + PRNG + event queue: the engine-agnostic kernel of a
/// discrete-event simulation over event payloads `E`.
#[derive(Debug)]
pub struct DesCore<E> {
    queue: EventQueue<E>,
    now: SimTime,
    rng: StdRng,
    events_processed: u64,
}

impl<E> DesCore<E> {
    /// Creates a core at time zero with a PRNG seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        DesCore {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            events_processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The per-simulation PRNG. Every random draw of the simulation must
    /// come from here, so a seed pins the whole run.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Pending (scheduled, not yet fired or canceled) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (the clock is monotone).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event)
    }

    /// Schedules `event` after `delay_us` virtual microseconds.
    pub fn schedule_after(&mut self, delay_us: u64, event: E) -> EventId {
        let at = self.now.after_micros(delay_us);
        self.queue.push(at, event)
    }

    /// Cancels a scheduled event, returning its payload if it was still
    /// pending.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        self.queue.cancel(id)
    }

    /// Time of the next pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event if it fires at or before `horizon`, advancing
    /// the clock to its timestamp. Returns `None` when the queue is
    /// drained or the next event lies beyond the horizon (the clock is
    /// *not* advanced to the horizon — callers decide what a partial
    /// window means; see [`DesCore::advance_to`]).
    pub fn pop_due(&mut self, horizon: SimTime) -> Option<E> {
        match self.queue.peek_time() {
            Some(at) if at <= horizon => {
                let (at, event) = self.queue.pop().expect("peeked event exists");
                self.now = at;
                self.events_processed += 1;
                Some(event)
            }
            _ => None,
        }
    }

    /// Moves the clock forward to `at` without firing anything (e.g. to
    /// pin the clock at a run horizon). No-op if `at` is in the past.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn pop_due_advances_the_clock_in_order() {
        let mut core: DesCore<u32> = DesCore::new(1);
        core.schedule_at(SimTime::from_micros(10), 1);
        core.schedule_after(5, 2);
        assert_eq!(core.pop_due(SimTime(u64::MAX)), Some(2));
        assert_eq!(core.now(), SimTime::from_micros(5));
        assert_eq!(core.pop_due(SimTime(u64::MAX)), Some(1));
        assert_eq!(core.now(), SimTime::from_micros(10));
        assert_eq!(core.pop_due(SimTime(u64::MAX)), None);
        assert_eq!(core.events_processed(), 2);
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut core: DesCore<&str> = DesCore::new(2);
        core.schedule_at(SimTime::from_millis(3), "late");
        assert_eq!(core.pop_due(SimTime::from_millis(1)), None);
        assert_eq!(core.now(), SimTime::ZERO, "horizon misses leave the clock");
        core.advance_to(SimTime::from_millis(1));
        assert_eq!(core.now(), SimTime::from_millis(1));
        assert_eq!(core.pop_due(SimTime::from_millis(3)), Some("late"));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut core: DesCore<()> = DesCore::new(3);
        core.schedule_at(SimTime::from_micros(5), ());
        core.pop_due(SimTime(u64::MAX));
        core.schedule_at(SimTime::from_micros(1), ());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut core: DesCore<u8> = DesCore::new(4);
        let id = core.schedule_at(SimTime::from_micros(1), 9);
        core.schedule_at(SimTime::from_micros(2), 7);
        assert_eq!(core.cancel(id), Some(9));
        assert_eq!(core.pop_due(SimTime(u64::MAX)), Some(7));
        assert!(core.is_idle());
    }

    #[test]
    fn rng_is_seed_deterministic() {
        let mut a: DesCore<()> = DesCore::new(42);
        let mut b: DesCore<()> = DesCore::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.rng().gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.rng().gen()).collect();
        assert_eq!(xs, ys);
    }
}
