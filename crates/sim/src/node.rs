//! Node behaviors: the protocol logic plugged into the simulator.
//!
//! A behavior is a **passive event handler**: the discrete-event loop
//! calls it with one event at a time and a [`Ctx`] to emit actions
//! through. Behaviors never block, sleep, or spawn — time only passes
//! between events — which is what lets one process host a million of
//! them. The same handlers also run unmodified on the thread-per-node
//! live runtime ([`crate::runtime`]), where the no-blocking discipline
//! is a correctness requirement rather than a structural guarantee.

use rand::rngs::StdRng;

use crate::message::{Endpoint, Message, NodeId};
use crate::time::SimTime;

/// An action a node emits in response to an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Transmit `msg` to `to` over the clique (subject to link latency).
    Send {
        /// Destination endpoint.
        to: Endpoint,
        /// The message to transmit.
        msg: Message,
    },
    /// Request a timer callback after `delay_us` virtual microseconds.
    SetTimer {
        /// Delay until the callback.
        delay_us: u64,
        /// Opaque tag passed back to [`NodeBehavior::on_timer`].
        tag: u64,
    },
}

/// Execution context handed to a behavior while it processes one event.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node this behavior instance runs on.
    pub me: NodeId,
    rng: &'a mut StdRng,
    out: &'a mut Vec<Action>,
}

impl<'a> Ctx<'a> {
    /// Creates a context (used by the simulation engines).
    pub(crate) fn new(
        now: SimTime,
        me: NodeId,
        rng: &'a mut StdRng,
        out: &'a mut Vec<Action>,
    ) -> Self {
        Ctx { now, me, rng, out }
    }

    /// Transmits `msg` to another member node.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        self.out.push(Action::Send {
            to: Endpoint::Node(to),
            msg,
        });
    }

    /// Delivers `msg` to the receiver.
    pub fn send_to_receiver(&mut self, msg: Message) {
        self.out.push(Action::Send {
            to: Endpoint::Receiver,
            msg,
        });
    }

    /// Schedules [`NodeBehavior::on_timer`] after `delay_us` microseconds.
    pub fn set_timer(&mut self, delay_us: u64, tag: u64) {
        self.out.push(Action::SetTimer { delay_us, tag });
    }

    /// Deterministic per-simulation randomness (seeded at construction).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Protocol logic of one member node.
///
/// Implementations live in `anonroute-protocols` (Crowds jondos, onion
/// routers, threshold mixes, single-proxy anonymizers); the simulator is
/// protocol-agnostic.
pub trait NodeBehavior {
    /// A fresh message originates here: this node is the sender and must
    /// route `msg` toward the receiver.
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message);

    /// A message arrived from `from`.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, msg: Message);

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}
}

/// Boxed behaviors forward to their contents, so heterogeneous or
/// runtime-chosen networks (`Vec<Box<dyn NodeBehavior>>`) run in the
/// same simulator as concrete ones.
impl<T: NodeBehavior + ?Sized> NodeBehavior for Box<T> {
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        (**self).on_originate(ctx, msg);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, msg: Message) {
        (**self).on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        (**self).on_timer(ctx, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_collects_actions_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        let mut ctx = Ctx::new(SimTime::from_micros(5), 2, &mut rng, &mut out);
        ctx.send(7, Message::new(crate::message::MsgId(1), vec![1]));
        ctx.set_timer(100, 9);
        ctx.send_to_receiver(Message::new(crate::message::MsgId(1), vec![2]));
        assert_eq!(out.len(), 3);
        assert!(matches!(
            out[0],
            Action::Send {
                to: Endpoint::Node(7),
                ..
            }
        ));
        assert!(matches!(
            out[1],
            Action::SetTimer {
                delay_us: 100,
                tag: 9
            }
        ));
        assert!(matches!(
            out[2],
            Action::Send {
                to: Endpoint::Receiver,
                ..
            }
        ));
    }

    #[test]
    fn ctx_rng_is_usable() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        let mut ctx = Ctx::new(SimTime::ZERO, 0, &mut rng, &mut out);
        let x: u32 = ctx.rng().gen_range(0..10);
        assert!(x < 10);
    }
}
