//! Bounded reaping of abandoned worker threads.
//!
//! A caller that gives up on a thread (watchdog deadline, wedged I/O)
//! cannot just `join` it — that's the hang it was escaping — and must
//! not detach it silently, or threads pile up across a long campaign.
//! The pattern here, shared by the campaign live backend's watchdog and
//! [`crate::runtime::run_live_deadline`]:
//!
//! 1. the worker holds a [`DoneGuard`] that signals on unwind — panic or
//!    normal return alike;
//! 2. the abandoning caller registers `(done_receiver, join_handle)`
//!    with a [`ThreadReaper`];
//! 3. a quiescence point (end of a sweep, end of a test) calls
//!    [`ThreadReaper::join_abandoned`] with a total time budget: workers
//!    whose guards fired are joined, truly wedged ones stay registered
//!    for the next reap rather than hanging anyone.

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sends on its channel when dropped — normal return or unwind — so an
/// abandoned thread can later be joined with a bound. Hold one at the
/// top of the worker's closure.
#[derive(Debug)]
pub struct DoneGuard(Sender<()>);

impl DoneGuard {
    /// Wraps the sender half of the worker's done-channel.
    pub fn new(tx: Sender<()>) -> Self {
        DoneGuard(tx)
    }
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        let _ = self.0.send(());
    }
}

/// An abandoned worker: the done-signal receiver paired with the thread
/// to join once it fires.
type Abandoned = (Receiver<()>, JoinHandle<()>);

/// A registry of abandoned worker threads awaiting a bounded join.
#[derive(Debug, Default)]
pub struct ThreadReaper {
    registry: Mutex<Vec<Abandoned>>,
}

impl ThreadReaper {
    /// Creates an empty reaper.
    pub const fn new() -> Self {
        ThreadReaper {
            registry: Mutex::new(Vec::new()),
        }
    }

    /// Parks an abandoned worker for a later bounded reap.
    pub fn register(&self, done: Receiver<()>, handle: JoinHandle<()>) {
        self.registry
            .lock()
            .expect("thread reaper registry lock")
            .push((done, handle));
    }

    /// Number of workers currently parked.
    pub fn pending(&self) -> usize {
        self.registry
            .lock()
            .expect("thread reaper registry lock")
            .len()
    }

    /// Joins every parked worker whose [`DoneGuard`] has fired, spending
    /// at most `deadline` in *total*, and re-parks the rest. Returns
    /// `(joined, still_pending)`.
    pub fn join_abandoned(&self, deadline: Duration) -> (usize, usize) {
        let mut pending = {
            let mut registry = self.registry.lock().expect("thread reaper registry lock");
            std::mem::take(&mut *registry)
        };
        let start = Instant::now();
        let mut joined = 0;
        let mut still = Vec::new();
        for (done, handle) in pending.drain(..) {
            let remaining = deadline.saturating_sub(start.elapsed());
            match done.recv_timeout(remaining) {
                // a disconnect means the guard dropped — the worker is done
                Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                    let _ = handle.join();
                    joined += 1;
                }
                Err(RecvTimeoutError::Timeout) => still.push((done, handle)),
            }
        }
        let still_pending = still.len();
        self.registry
            .lock()
            .expect("thread reaper registry lock")
            .extend(still);
        (joined, still_pending)
    }
}

/// The process-wide reaper shared by every subsystem that abandons
/// watchdogged workers (campaign live cells, deadline-bounded live
/// runs).
pub fn global() -> &'static ThreadReaper {
    static GLOBAL: OnceLock<ThreadReaper> = OnceLock::new();
    GLOBAL.get_or_init(ThreadReaper::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn finished_workers_are_reaped_within_the_bound() {
        let reaper = ThreadReaper::new();
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let _done = DoneGuard::new(tx);
        });
        while !handle.is_finished() {
            std::thread::yield_now();
        }
        reaper.register(rx, handle);
        let (joined, pending) = reaper.join_abandoned(Duration::from_secs(5));
        assert_eq!((joined, pending), (1, 0));
    }

    #[test]
    fn guards_signal_on_panic_too() {
        let reaper = ThreadReaper::new();
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let _done = DoneGuard::new(tx);
            panic!("worker blew up");
        });
        reaper.register(rx, handle);
        let (joined, pending) = reaper.join_abandoned(Duration::from_secs(5));
        assert_eq!((joined, pending), (1, 0));
    }

    #[test]
    fn wedged_workers_stay_parked_instead_of_hanging_the_reap() {
        let reaper = ThreadReaper::new();
        let (tx, rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let _done = DoneGuard::new(tx);
            let _ = release_rx.recv(); // wedged until released
        });
        reaper.register(rx, handle);
        let start = Instant::now();
        let (joined, pending) = reaper.join_abandoned(Duration::from_millis(50));
        assert!(start.elapsed() < Duration::from_secs(5), "reap must bound");
        assert_eq!((joined, pending), (0, 1));
        assert_eq!(reaper.pending(), 1);
        // release the worker; the next reap collects it
        release_tx.send(()).unwrap();
        let (joined, pending) = reaper.join_abandoned(Duration::from_secs(5));
        assert_eq!((joined, pending), (1, 0));
    }
}
