//! The deterministic, cancelable event queue at the heart of the
//! discrete-event engine.
//!
//! Ordering is a total order on `(time, sequence number)`: events pop in
//! nondecreasing time, and events scheduled for the same instant pop in
//! the order they were pushed (FIFO ties). The sequence number is
//! assigned at push time, so the order is a pure function of the push
//! history — no hash maps, no pointer addresses, nothing that could vary
//! between runs.
//!
//! Payloads live in a slab indexed by stable slots; the binary heap holds
//! only small `Copy` keys. Cancellation marks the slot free and bumps its
//! generation counter — the stale heap key is skipped lazily when it
//! surfaces, so `cancel` is O(1) and `pop` stays amortized O(log m).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// Ids are invalidated when their event pops or is canceled; a stale id
/// is detected (generation counter) and `cancel` returns `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Heap key: full ordering state plus the slab address of the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One slab slot: a generation counter plus the payload (present while
/// the event is live).
#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    payload: Option<T>,
}

/// A seeded simulation's pending-event set: push events for future
/// instants, pop them in deterministic `(time, seq)` order, cancel by
/// [`EventId`].
///
/// # Examples
///
/// ```
/// use anonroute_sim::event::EventQueue;
/// use anonroute_sim::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(20), "late");
/// let early = q.push(SimTime::from_micros(5), "early");
/// q.push(SimTime::from_micros(5), "early-tie");
/// assert_eq!(q.cancel(early), Some("early"));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "early-tie")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<HeapKey>>,
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    seq: u64,
    live: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            live: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            seq: 0,
            live: 0,
        }
    }

    /// Number of live (pushed, not yet popped or canceled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever pushed (the deterministic tie-break sequence).
    pub fn pushes(&self) -> u64 {
        self.seq
    }

    /// Schedules `payload` for time `at`. Events at equal times pop in
    /// push order.
    pub fn push(&mut self, at: SimTime, payload: T) -> EventId {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none(), "free slot must be vacant");
                s.payload = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Reverse(HeapKey { at, seq, slot, gen }));
        self.live += 1;
        EventId { slot, gen }
    }

    /// Cancels a pending event, returning its payload; `None` if the id
    /// already fired or was already canceled. O(1) — the heap entry is
    /// skipped lazily.
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        let slot = self.slots.get_mut(id.slot as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        let payload = slot.payload.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        Some(payload)
    }

    /// The time of the next event to fire, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_stale();
        self.heap.peek().map(|Reverse(k)| k.at)
    }

    /// Pops the next event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.skip_stale();
        let Reverse(key) = self.heap.pop()?;
        let slot = &mut self.slots[key.slot as usize];
        let payload = slot.payload.take().expect("live head has a payload");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.slot);
        self.live -= 1;
        Some((key.at, payload))
    }

    /// Drops heap keys whose slot was canceled (generation mismatch).
    fn skip_stale(&mut self) {
        while let Some(Reverse(key)) = self.heap.peek() {
            let slot = &self.slots[key.slot as usize];
            if slot.gen == key.gen && slot.payload.is_some() {
                return;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_push_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 'c');
        q.push(SimTime::from_micros(10), 'a');
        q.push(SimTime::from_micros(10), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn cancel_removes_exactly_one_event() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(1), 1);
        q.push(SimTime::from_micros(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(a), Some(1));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(1), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn stale_ids_do_not_cancel_reused_slots() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(1), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(1), 1)));
        // the slot is recycled for a new event; the old id must not bite
        let b = q.push(SimTime::from_micros(2), 2);
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.cancel(b), Some(2));
    }

    #[test]
    fn peek_time_skips_canceled_heads() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(1), 1);
        q.push(SimTime::from_micros(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
    }

    #[test]
    fn slots_are_reused_not_leaked() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let id = q.push(SimTime::from_micros(round), round);
            if round % 2 == 0 {
                q.cancel(id);
            } else {
                q.pop();
            }
        }
        assert!(q.slots.len() <= 2, "slab must recycle: {}", q.slots.len());
    }
}
