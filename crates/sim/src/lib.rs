//! # anonroute-sim
//!
//! A deterministic discrete-event simulator for clique-topology anonymous
//! communication systems — the substrate on which the `anonroute`
//! reproduction of Guan et al. (ICDCS 2002) runs its protocols.
//!
//! The simulator is deliberately protocol-agnostic: member nodes implement
//! [`NodeBehavior`] (the protocol logic — Crowds forwarding, onion peeling,
//! mix batching, … — lives in `anonroute-protocols`), while this crate
//! provides:
//!
//! * a seeded **discrete-event core** ([`des::DesCore`]): one monotone
//!   clock, one per-simulation PRNG, and a cancelable
//!   [`event::EventQueue`] with deterministic `(time, sequence)`
//!   ordering — the dslab-style kernel that lets one process simulate
//!   10⁵–10⁶ member nodes;
//! * the **protocol engine** ([`Simulation`]) on top of it: virtual
//!   time, link-latency models, per-hop queueing delay, timers, and a
//!   complete ground-truth [`TransferRecord`] trace (what an omniscient
//!   observer would see; the `anonroute-adversary` crate filters it down
//!   to the threat model);
//! * **workload generators** ([`traffic`]): Poisson and fixed-interval
//!   arrivals with uniformly random senders, matching the paper's a-priori
//!   sender distribution; streamed cover/Poisson processes
//!   ([`simulation::TrafficProcess`]) that cost O(1) queue memory; and
//!   persistent multi-epoch sessions ([`traffic::SessionTraffic`]) for
//!   intersection-attack workloads;
//! * **run statistics** ([`stats::RunStats`]): delivery ratio and latency
//!   percentiles — the overhead side of the anonymity/overhead trade-off;
//! * a **live multi-threaded runtime** ([`runtime::run_live`]) executing
//!   the identical behaviors over `crossbeam` channels, demonstrating the
//!   protocols under real concurrency (small n only — use the
//!   discrete-event engine for scale and reproducibility), plus the
//!   [`reaper`] for bounded cleanup of abandoned watchdogged threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod event;
pub mod latency;
pub mod message;
pub mod node;
pub mod reaper;
pub mod runtime;
pub mod simulation;
pub mod stats;
pub mod time;
pub mod traffic;

pub use des::DesCore;
pub use event::{EventId, EventQueue};
pub use latency::LatencyModel;
pub use message::{Delivery, Endpoint, Message, MsgId, NodeId, TransferRecord};
pub use node::{Action, Ctx, NodeBehavior};
pub use simulation::{Origination, Simulation, TrafficProcess};
pub use time::SimTime;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::des::DesCore;
    pub use crate::event::{EventId, EventQueue};
    pub use crate::latency::LatencyModel;
    pub use crate::message::{Delivery, Endpoint, Message, MsgId, NodeId, TransferRecord};
    pub use crate::node::{Action, Ctx, NodeBehavior};
    pub use crate::simulation::{Origination, Simulation, TrafficProcess};
    pub use crate::time::SimTime;
    pub use crate::traffic::{
        Arrival, CoverTraffic, PoissonProcess, PoissonTraffic, SessionTraffic, UniformProcess,
        UniformTraffic,
    };
}
