//! # anonroute-sim
//!
//! A deterministic discrete-event simulator for clique-topology anonymous
//! communication systems — the substrate on which the `anonroute`
//! reproduction of Guan et al. (ICDCS 2002) runs its protocols.
//!
//! The simulator is deliberately protocol-agnostic: member nodes implement
//! [`NodeBehavior`] (the protocol logic — Crowds forwarding, onion peeling,
//! mix batching, … — lives in `anonroute-protocols`), while this crate
//! provides:
//!
//! * a seeded, reproducible **event engine** ([`Simulation`]) with virtual
//!   time, link-latency models, timers, and a complete ground-truth
//!   [`TransferRecord`] trace (what an omniscient observer would see; the
//!   `anonroute-adversary` crate filters it down to the threat model);
//! * **workload generators** ([`traffic`]): Poisson and fixed-interval
//!   arrivals with uniformly random senders, matching the paper's a-priori
//!   sender distribution, plus persistent multi-epoch sessions
//!   ([`traffic::SessionTraffic`]) for intersection-attack workloads;
//! * **run statistics** ([`stats::RunStats`]): delivery ratio and latency
//!   percentiles — the overhead side of the anonymity/overhead trade-off;
//! * a **live multi-threaded runtime** ([`runtime::run_live`]) executing
//!   the identical behaviors over `crossbeam` channels, demonstrating the
//!   protocols under real concurrency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod message;
pub mod node;
pub mod runtime;
pub mod simulation;
pub mod stats;
pub mod time;
pub mod traffic;

pub use latency::LatencyModel;
pub use message::{Delivery, Endpoint, Message, MsgId, NodeId, TransferRecord};
pub use node::{Action, Ctx, NodeBehavior};
pub use simulation::{Origination, Simulation};
pub use time::SimTime;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::latency::LatencyModel;
    pub use crate::message::{Delivery, Endpoint, Message, MsgId, NodeId, TransferRecord};
    pub use crate::node::{Action, Ctx, NodeBehavior};
    pub use crate::simulation::{Origination, Simulation};
    pub use crate::time::SimTime;
    pub use crate::traffic::{Arrival, PoissonTraffic, SessionTraffic, UniformTraffic};
}
