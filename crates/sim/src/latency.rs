//! Per-hop link latency models for the clique network.

use rand::Rng;

/// Distribution of one-hop transmission delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every hop takes exactly this many microseconds.
    Constant(u64),
    /// Uniform in `[lo, hi]` microseconds.
    Uniform {
        /// Lower bound (inclusive), microseconds.
        lo: u64,
        /// Upper bound (inclusive), microseconds.
        hi: u64,
    },
    /// Exponentially distributed with the given mean in microseconds
    /// (memoryless queueing-style jitter).
    Exponential {
        /// Mean delay in microseconds.
        mean: u64,
    },
}

impl LatencyModel {
    /// Samples one hop delay in microseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a `Uniform` model has `lo > hi`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            LatencyModel::Constant(us) => us,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform bounds out of order");
                rng.gen_range(lo..=hi)
            }
            LatencyModel::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (-(u.ln()) * mean as f64).round() as u64
            }
        }
    }

    /// Expected hop delay in microseconds.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Constant(us) => us as f64,
            LatencyModel::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            LatencyModel::Exponential { mean } => mean as f64,
        }
    }
}

impl Default for LatencyModel {
    /// 10 ms constant per hop — a round internet-like default.
    fn default() -> Self {
        LatencyModel::Constant(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Constant(42);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 42);
        }
        assert_eq!(m.mean(), 42.0);
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Uniform { lo: 10, hi: 20 };
        let mut sum = 0.0;
        let trials = 20_000;
        for _ in 0..trials {
            let s = m.sample(&mut rng);
            assert!((10..=20).contains(&s));
            sum += s as f64;
        }
        assert!((sum / trials as f64 - 15.0).abs() < 0.2);
        assert_eq!(m.mean(), 15.0);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::Exponential { mean: 1000 };
        let trials = 50_000;
        let sum: f64 = (0..trials).map(|_| m.sample(&mut rng) as f64).sum();
        let emp = sum / trials as f64;
        assert!((emp - 1000.0).abs() < 30.0, "empirical mean {emp}");
    }
}
