//! The deterministic discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::latency::LatencyModel;
use crate::message::{Delivery, Endpoint, Message, MsgId, NodeId, TransferRecord};
use crate::node::{Action, Ctx, NodeBehavior};
use crate::time::SimTime;

#[derive(Debug)]
enum EventKind {
    Originate {
        sender: NodeId,
        msg: Message,
    },
    Deliver {
        from: Endpoint,
        to: Endpoint,
        msg: Message,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
}

#[derive(Debug)]
struct QueuedEvent {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Record of a message origination (ground truth, used by statistics and
/// by the adversary's evaluation harness as the label to recover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Origination {
    /// When the message was created.
    pub time: SimTime,
    /// The true sender.
    pub sender: NodeId,
    /// Message identity.
    pub msg: MsgId,
}

/// A deterministic discrete-event simulation of a clique of `n` nodes
/// running protocol behavior `B`, with per-hop latencies and a full
/// ground-truth trace.
///
/// # Examples
///
/// ```
/// use anonroute_sim::prelude::*;
///
/// /// Trivial protocol: forward straight to the receiver.
/// struct Direct;
/// impl NodeBehavior for Direct {
///     fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
///         ctx.send_to_receiver(msg);
///     }
///     fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: Message) {}
/// }
///
/// let mut sim = Simulation::new(vec![Direct, Direct], LatencyModel::Constant(10), 42);
/// sim.schedule_origination(SimTime::ZERO, 1, b"hi".to_vec());
/// sim.run();
/// assert_eq!(sim.deliveries().len(), 1);
/// ```
#[derive(Debug)]
pub struct Simulation<B> {
    nodes: Vec<B>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    latency: LatencyModel,
    loss_probability: f64,
    lost: u64,
    trace: Vec<TransferRecord>,
    deliveries: Vec<Delivery>,
    originations: Vec<Origination>,
    next_msg: u64,
    events_processed: u64,
}

impl<B: NodeBehavior> Simulation<B> {
    /// Creates a simulation over the given per-node behaviors.
    pub fn new(nodes: Vec<B>, latency: LatencyModel, seed: u64) -> Self {
        Simulation {
            nodes,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            latency,
            loss_probability: 0.0,
            lost: 0,
            trace: Vec::new(),
            deliveries: Vec::new(),
            originations: Vec::new(),
            next_msg: 0,
            events_processed: 0,
        }
    }

    /// Enables fault injection: every transmission is silently dropped
    /// with probability `p` (best-effort links; the paper's protocols have
    /// no retransmission layer, so losses surface as undelivered
    /// messages).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability out of range: {p}"
        );
        self.loss_probability = p;
        self
    }

    /// Transmissions dropped by fault injection so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Number of member nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ground-truth edge trace, in delivery-time order.
    pub fn trace(&self) -> &[TransferRecord] {
        &self.trace
    }

    /// Messages delivered to the receiver so far.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// All message originations (the labels the adversary tries to
    /// recover).
    pub fn originations(&self) -> &[Origination] {
        &self.originations
    }

    /// Consumes the simulation, returning the owned `(trace,
    /// originations)` pair — what a post-run attack needs — without
    /// copying either vector. Use after [`Simulation::run`] when the
    /// simulation itself is no longer needed.
    pub fn into_artifacts(self) -> (Vec<TransferRecord>, Vec<Origination>) {
        (self.trace, self.originations)
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a node's behavior (e.g. to read protocol
    /// counters after a run).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &B {
        &self.nodes[id]
    }

    /// Schedules a message to originate at node `sender` at time `at`.
    /// Returns the assigned message id.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn schedule_origination(&mut self, at: SimTime, sender: NodeId, payload: Vec<u8>) -> MsgId {
        assert!(sender < self.nodes.len(), "sender {sender} out of range");
        let id = MsgId(self.next_msg);
        self.next_msg += 1;
        self.push(
            at,
            EventKind::Originate {
                sender,
                msg: Message::new(id, payload),
            },
        );
        id
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, kind }));
    }

    /// Runs until the event queue is empty. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime(u64::MAX))
    }

    /// Runs until the queue drains or virtual time would pass `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if ev.at > horizon {
                // put it back and stop
                self.queue.push(Reverse(ev));
                self.now = horizon;
                break;
            }
            self.now = ev.at;
            self.events_processed += 1;
            self.dispatch(ev.kind);
        }
        self.now
    }

    fn dispatch(&mut self, kind: EventKind) {
        let mut actions = Vec::new();
        match kind {
            EventKind::Originate { sender, msg } => {
                self.originations.push(Origination {
                    time: self.now,
                    sender,
                    msg: msg.id,
                });
                let mut ctx = Ctx::new(self.now, sender, &mut self.rng, &mut actions);
                self.nodes[sender].on_originate(&mut ctx, msg);
                self.apply(Endpoint::Node(sender), actions);
            }
            EventKind::Deliver { from, to, msg } => {
                self.trace.push(TransferRecord {
                    time: self.now,
                    from,
                    to,
                    msg: msg.id,
                });
                match to {
                    Endpoint::Receiver => {
                        self.deliveries.push(Delivery {
                            time: self.now,
                            msg: msg.id,
                            last_hop: from,
                            payload: msg.bytes,
                        });
                    }
                    Endpoint::Node(id) => {
                        let mut ctx = Ctx::new(self.now, id, &mut self.rng, &mut actions);
                        self.nodes[id].on_message(&mut ctx, from, msg);
                        self.apply(Endpoint::Node(id), actions);
                    }
                }
            }
            EventKind::Timer { node, tag } => {
                let mut ctx = Ctx::new(self.now, node, &mut self.rng, &mut actions);
                self.nodes[node].on_timer(&mut ctx, tag);
                self.apply(Endpoint::Node(node), actions);
            }
        }
    }

    fn apply(&mut self, me: Endpoint, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    if self.loss_probability > 0.0 {
                        use rand::Rng;
                        if self.rng.gen::<f64>() < self.loss_probability {
                            self.lost += 1;
                            continue;
                        }
                    }
                    let delay = self.latency.sample(&mut self.rng);
                    let at = self.now.after_micros(delay);
                    self.push(at, EventKind::Deliver { from: me, to, msg });
                }
                Action::SetTimer { delay_us, tag } => {
                    let Endpoint::Node(node) = me else {
                        unreachable!("timers are only set by nodes")
                    };
                    self.push(
                        self.now.after_micros(delay_us),
                        EventKind::Timer { node, tag },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forwards along a scripted path, then to the receiver.
    struct ScriptedHop {
        route: Vec<NodeId>,
    }
    impl NodeBehavior for ScriptedHop {
        fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(&first) = self.route.first() {
                ctx.send(first, msg);
            } else {
                ctx.send_to_receiver(msg);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
            if let Some(&next) = self.route.first() {
                ctx.send(next, msg);
            } else {
                ctx.send_to_receiver(msg);
            }
        }
    }

    fn scripted(n: usize, routes: Vec<Vec<NodeId>>) -> Simulation<ScriptedHop> {
        assert_eq!(routes.len(), n);
        Simulation::new(
            routes
                .into_iter()
                .map(|route| ScriptedHop { route })
                .collect(),
            LatencyModel::Constant(1_000),
            7,
        )
    }

    #[test]
    fn message_follows_route_and_is_traced() {
        // node 0 sends to 1; 1 forwards to 2; 2 delivers
        let mut sim = scripted(3, vec![vec![1], vec![2], vec![]]);
        let id = sim.schedule_origination(SimTime::ZERO, 0, vec![0xAB]);
        sim.run();
        assert_eq!(sim.deliveries().len(), 1);
        let d = &sim.deliveries()[0];
        assert_eq!(d.msg, id);
        assert_eq!(d.last_hop, Endpoint::Node(2));
        assert_eq!(d.payload, vec![0xAB]);
        // trace: 0→1, 1→2, 2→R at 1ms, 2ms, 3ms
        let hops: Vec<(Endpoint, Endpoint)> = sim.trace().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            hops,
            vec![
                (Endpoint::Node(0), Endpoint::Node(1)),
                (Endpoint::Node(1), Endpoint::Node(2)),
                (Endpoint::Node(2), Endpoint::Receiver),
            ]
        );
        assert_eq!(sim.trace()[2].time, SimTime::from_millis(3));
        assert_eq!(sim.originations()[0].sender, 0);
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut sim = scripted(2, vec![vec![], vec![]]);
        sim.schedule_origination(SimTime::from_millis(5), 0, vec![1]);
        sim.schedule_origination(SimTime::from_millis(1), 1, vec![2]);
        sim.schedule_origination(SimTime::from_millis(5), 1, vec![3]);
        sim.run();
        let senders: Vec<NodeId> = sim.originations().iter().map(|o| o.sender).collect();
        assert_eq!(senders, vec![1, 0, 1]); // time order, FIFO within ties
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = scripted(2, vec![vec![1], vec![]]);
        sim.schedule_origination(SimTime::ZERO, 0, vec![]);
        // horizon cuts off before the second hop arrives
        sim.run_until(SimTime::from_micros(1_500));
        assert_eq!(sim.trace().len(), 1);
        assert!(sim.deliveries().is_empty());
        // resume to completion
        sim.run();
        assert_eq!(sim.deliveries().len(), 1);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                vec![
                    ScriptedHop { route: vec![1, 1] }, // note: scripted, not real routing
                    ScriptedHop { route: vec![] },
                ],
                LatencyModel::Uniform { lo: 100, hi: 5_000 },
                seed,
            );
            for i in 0..20 {
                sim.schedule_origination(SimTime::from_micros(i * 7), (i % 2) as usize, vec![]);
            }
            sim.run();
            sim.trace().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn loss_injection_drops_expected_fraction() {
        // direct senders: delivery ratio should track 1 - p
        let p = 0.3;
        let mut sim = Simulation::new(
            (0..4).map(|_| ScriptedHop { route: vec![] }).collect(),
            LatencyModel::Constant(10),
            5,
        )
        .with_loss(p);
        let total = 4000u64;
        for i in 0..total {
            sim.schedule_origination(SimTime::from_micros(i), (i % 4) as usize, vec![]);
        }
        sim.run();
        let ratio = sim.deliveries().len() as f64 / total as f64;
        assert!((ratio - (1.0 - p)).abs() < 0.03, "ratio {ratio}");
        assert_eq!(sim.lost() as usize + sim.deliveries().len(), total as usize);
    }

    #[test]
    fn multi_hop_loss_compounds_per_edge() {
        // sender -> node 1 -> receiver: survival is (1-p)^2 over two edges
        let p = 0.2;
        let mut sim = Simulation::new(
            vec![
                ScriptedHop { route: vec![1] },
                ScriptedHop { route: vec![] },
            ],
            LatencyModel::Constant(10),
            7,
        )
        .with_loss(p);
        let total = 6000u64;
        for i in 0..total {
            sim.schedule_origination(SimTime::from_micros(i * 3), 0, vec![]);
        }
        sim.run();
        let ratio = sim.deliveries().len() as f64 / total as f64;
        let expect = (1.0 - p) * (1.0 - p);
        assert!(
            (ratio - expect).abs() < 0.03,
            "ratio {ratio} expect {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "loss probability out of range")]
    fn loss_probability_is_validated() {
        let _ = Simulation::new(
            vec![ScriptedHop { route: vec![] }],
            LatencyModel::Constant(1),
            0,
        )
        .with_loss(1.5);
    }

    /// Behavior with a timer: batch two messages, flush on timeout.
    struct TinyBatcher {
        held: Vec<Message>,
    }
    impl NodeBehavior for TinyBatcher {
        fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            ctx.send(0, msg); // self-loop entry: route everything through node 0
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
            self.held.push(msg);
            if self.held.len() == 1 {
                ctx.set_timer(10_000, 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            for m in self.held.drain(..) {
                ctx.send_to_receiver(m);
            }
        }
    }

    #[test]
    fn timers_batch_and_flush() {
        let mut sim = Simulation::new(
            vec![TinyBatcher { held: vec![] }, TinyBatcher { held: vec![] }],
            LatencyModel::Constant(100),
            1,
        );
        sim.schedule_origination(SimTime::ZERO, 1, vec![1]);
        sim.schedule_origination(SimTime::from_micros(50), 1, vec![2]);
        sim.run();
        assert_eq!(sim.deliveries().len(), 2);
        // both were flushed by the same timer: identical delivery times
        assert_eq!(sim.deliveries()[0].time, sim.deliveries()[1].time);
    }
}
