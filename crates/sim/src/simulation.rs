//! The deterministic discrete-event simulation engine.
//!
//! [`Simulation`] is a thin protocol layer over [`DesCore`]: nodes are
//! passive [`NodeBehavior`] handlers invoked from the single event loop,
//! latencies and timers are scheduled events, and the whole run is a pure
//! function of the seed. One process comfortably simulates 10⁵–10⁶
//! member nodes — there are no per-node threads or channels, only a
//! binary heap of `(time, seq)`-ordered events and one PRNG.
//!
//! Scale notes: memory is O(nodes + pending events + trace). The trace
//! records every edge, so a long run's footprint is dominated by
//! `TransferRecord`s (32 bytes each); cap workloads accordingly or drain
//! via [`Simulation::run_until`] windows.

use rand::Rng;

use crate::des::DesCore;
use crate::latency::LatencyModel;
use crate::message::{Delivery, Endpoint, Message, MsgId, NodeId, TransferRecord};
use crate::node::{Action, Ctx, NodeBehavior};
use crate::time::SimTime;
use crate::traffic::Arrival;

#[derive(Debug)]
enum EventKind {
    Originate {
        sender: NodeId,
        msg: Message,
    },
    Deliver {
        from: Endpoint,
        to: Endpoint,
        msg: Message,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
    /// A streamed workload's next origination is due (see
    /// [`Simulation::attach_traffic`]).
    NextArrival {
        stream: usize,
    },
}

/// Record of a message origination (ground truth, used by statistics and
/// by the adversary's evaluation harness as the label to recover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Origination {
    /// When the message was created.
    pub time: SimTime,
    /// The true sender.
    pub sender: NodeId,
    /// Message identity.
    pub msg: MsgId,
}

/// A lazily generated workload: instead of materializing every
/// [`Arrival`] up front, the simulation asks the process for the next
/// one each time the previous fires — million-message cover or session
/// streams cost O(1) memory in the queue.
///
/// Randomness comes from the simulation's own PRNG (passed in), so a
/// streamed run is exactly as seed-deterministic as a pre-scheduled one.
pub trait TrafficProcess: std::fmt::Debug {
    /// Returns the next origination at or after `now`, or `None` when
    /// the stream is exhausted.
    fn next_arrival(&mut self, now: SimTime, rng: &mut rand::rngs::StdRng) -> Option<Arrival>;
}

/// A streamed workload attached to the simulation: the generator plus
/// its already-drawn next arrival (scheduled as a `NextArrival` event).
#[derive(Debug)]
struct StreamSlot {
    process: Box<dyn TrafficProcess>,
    pending: Option<Arrival>,
}

/// A deterministic discrete-event simulation of a clique of `n` nodes
/// running protocol behavior `B`, with per-hop latencies, optional
/// per-hop queueing delay, and a full ground-truth trace.
///
/// # Examples
///
/// ```
/// use anonroute_sim::prelude::*;
///
/// /// Trivial protocol: forward straight to the receiver.
/// struct Direct;
/// impl NodeBehavior for Direct {
///     fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
///         ctx.send_to_receiver(msg);
///     }
///     fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: Message) {}
/// }
///
/// let mut sim = Simulation::new(vec![Direct, Direct], LatencyModel::Constant(10), 42);
/// sim.schedule_origination(SimTime::ZERO, 1, b"hi".to_vec());
/// sim.run();
/// assert_eq!(sim.deliveries().len(), 1);
/// ```
#[derive(Debug)]
pub struct Simulation<B> {
    nodes: Vec<B>,
    core: DesCore<EventKind>,
    latency: LatencyModel,
    loss_probability: f64,
    lost: u64,
    /// Per-hop service time in µs; 0 disables the queueing model.
    service_us: u64,
    /// When each node finishes its current backlog (queueing model).
    node_ready: Vec<SimTime>,
    streams: Vec<StreamSlot>,
    trace: Vec<TransferRecord>,
    deliveries: Vec<Delivery>,
    originations: Vec<Origination>,
    next_msg: u64,
    /// Reusable action buffer: one allocation for the whole run instead
    /// of one per event.
    scratch: Vec<Action>,
}

impl<B: NodeBehavior> Simulation<B> {
    /// Creates a simulation over the given per-node behaviors.
    pub fn new(nodes: Vec<B>, latency: LatencyModel, seed: u64) -> Self {
        Simulation {
            nodes,
            core: DesCore::new(seed),
            latency,
            loss_probability: 0.0,
            lost: 0,
            service_us: 0,
            node_ready: Vec::new(),
            streams: Vec::new(),
            trace: Vec::new(),
            deliveries: Vec::new(),
            originations: Vec::new(),
            next_msg: 0,
            scratch: Vec::new(),
        }
    }

    /// Enables fault injection: every transmission is silently dropped
    /// with probability `p` (best-effort links; the paper's protocols have
    /// no retransmission layer, so losses surface as undelivered
    /// messages).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability out of range: {p}"
        );
        self.loss_probability = p;
        self
    }

    /// Enables the per-hop queueing model: each node serves incoming
    /// transmissions one at a time, `service_us` virtual microseconds
    /// apiece, so a hot relay builds a backlog and deliveries queue
    /// behind it. `0` (the default) disables queueing — transmissions
    /// are handled the instant their link latency elapses — and leaves
    /// existing seeded runs byte-identical.
    pub fn with_service_time(mut self, service_us: u64) -> Self {
        self.service_us = service_us;
        if service_us > 0 {
            self.node_ready = vec![SimTime::ZERO; self.nodes.len()];
        } else {
            self.node_ready = Vec::new();
        }
        self
    }

    /// Transmissions dropped by fault injection so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Number of member nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Ground-truth edge trace, in delivery-time order.
    pub fn trace(&self) -> &[TransferRecord] {
        &self.trace
    }

    /// Messages delivered to the receiver so far.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// All message originations (the labels the adversary tries to
    /// recover).
    pub fn originations(&self) -> &[Origination] {
        &self.originations
    }

    /// Consumes the simulation, returning the owned `(trace,
    /// originations)` pair — what a post-run attack needs — without
    /// copying either vector. Use after [`Simulation::run`] when the
    /// simulation itself is no longer needed.
    pub fn into_artifacts(self) -> (Vec<TransferRecord>, Vec<Origination>) {
        (self.trace, self.originations)
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed()
    }

    /// Immutable access to a node's behavior (e.g. to read protocol
    /// counters after a run).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &B {
        &self.nodes[id]
    }

    /// Schedules a message to originate at node `sender` at time `at`.
    /// Returns the assigned message id.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn schedule_origination(&mut self, at: SimTime, sender: NodeId, payload: Vec<u8>) -> MsgId {
        assert!(sender < self.nodes.len(), "sender {sender} out of range");
        let id = MsgId(self.next_msg);
        self.next_msg += 1;
        self.core.schedule_at(
            at,
            EventKind::Originate {
                sender,
                msg: Message::new(id, payload),
            },
        );
        id
    }

    /// Schedules a whole batch of arrivals, consuming them (no payload
    /// clones). Message ids are assigned in iteration order, exactly as
    /// if [`Simulation::schedule_origination`] had been called per
    /// arrival.
    ///
    /// # Panics
    ///
    /// Panics if an arrival names a sender out of range.
    pub fn schedule_arrivals(&mut self, arrivals: impl IntoIterator<Item = Arrival>) {
        for arrival in arrivals {
            self.schedule_origination(arrival.at, arrival.sender, arrival.payload);
        }
    }

    /// Attaches a lazily generated workload: the process's arrivals are
    /// scheduled one at a time, each drawing from the simulation PRNG in
    /// event order. Any number of streams can run alongside pre-scheduled
    /// originations; interleaving is by `(time, seq)` like every other
    /// event.
    pub fn attach_traffic(&mut self, process: impl TrafficProcess + 'static) {
        let mut process: Box<dyn TrafficProcess> = Box::new(process);
        let stream = self.streams.len();
        let pending = process.next_arrival(self.core.now(), self.core.rng());
        if let Some(arrival) = &pending {
            assert!(
                arrival.sender < self.nodes.len(),
                "stream sender {} out of range",
                arrival.sender
            );
            let at = arrival.at.max(self.core.now());
            self.core.schedule_at(at, EventKind::NextArrival { stream });
        }
        self.streams.push(StreamSlot { process, pending });
    }

    /// Runs until the event queue is empty. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime(u64::MAX))
    }

    /// Runs until the queue drains or virtual time would pass `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(kind) = self.core.pop_due(horizon) {
            self.dispatch(kind);
        }
        if !self.core.is_idle() {
            // events remain beyond the horizon: the window was exhausted,
            // so the clock pins to it (resume later from here)
            self.core.advance_to(horizon);
        }
        self.core.now()
    }

    fn dispatch(&mut self, kind: EventKind) {
        // reuse one actions buffer across all events (returned below)
        let mut actions = std::mem::take(&mut self.scratch);
        let now = self.core.now();
        match kind {
            EventKind::Originate { sender, msg } => {
                self.originations.push(Origination {
                    time: now,
                    sender,
                    msg: msg.id,
                });
                let mut ctx = Ctx::new(now, sender, self.core.rng(), &mut actions);
                self.nodes[sender].on_originate(&mut ctx, msg);
                self.apply(Endpoint::Node(sender), &mut actions);
            }
            EventKind::Deliver { from, to, msg } => {
                self.trace.push(TransferRecord {
                    time: now,
                    from,
                    to,
                    msg: msg.id,
                });
                match to {
                    Endpoint::Receiver => {
                        self.deliveries.push(Delivery {
                            time: now,
                            msg: msg.id,
                            last_hop: from,
                            payload: msg.bytes,
                        });
                    }
                    Endpoint::Node(id) => {
                        let mut ctx = Ctx::new(now, id, self.core.rng(), &mut actions);
                        self.nodes[id].on_message(&mut ctx, from, msg);
                        self.apply(Endpoint::Node(id), &mut actions);
                    }
                }
            }
            EventKind::Timer { node, tag } => {
                let mut ctx = Ctx::new(now, node, self.core.rng(), &mut actions);
                self.nodes[node].on_timer(&mut ctx, tag);
                self.apply(Endpoint::Node(node), &mut actions);
            }
            EventKind::NextArrival { stream } => {
                let arrival = self.streams[stream]
                    .pending
                    .take()
                    .expect("a scheduled NextArrival has a pending arrival");
                let id = MsgId(self.next_msg);
                self.next_msg += 1;
                self.originations.push(Origination {
                    time: now,
                    sender: arrival.sender,
                    msg: id,
                });
                let msg = Message::new(id, arrival.payload);
                let mut ctx = Ctx::new(now, arrival.sender, self.core.rng(), &mut actions);
                self.nodes[arrival.sender].on_originate(&mut ctx, msg);
                self.apply(Endpoint::Node(arrival.sender), &mut actions);
                // pull the stream's next arrival and reschedule
                let slot = &mut self.streams[stream];
                if let Some(next) = slot.process.next_arrival(now, self.core.rng()) {
                    assert!(
                        next.sender < self.nodes.len(),
                        "stream sender {} out of range",
                        next.sender
                    );
                    let at = next.at.max(now);
                    slot.pending = Some(next);
                    self.core.schedule_at(at, EventKind::NextArrival { stream });
                }
            }
        }
        debug_assert!(actions.is_empty(), "apply drains every action");
        self.scratch = actions;
    }

    fn apply(&mut self, me: Endpoint, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    if self.loss_probability > 0.0
                        && self.core.rng().gen::<f64>() < self.loss_probability
                    {
                        self.lost += 1;
                        continue;
                    }
                    let delay = self.latency.sample(self.core.rng());
                    let arrival = self.core.now().after_micros(delay);
                    let at = match (self.service_us, to) {
                        (0, _) | (_, Endpoint::Receiver) => arrival,
                        (service, Endpoint::Node(node)) => {
                            // the hop queues behind the node's backlog,
                            // then takes `service` µs of processing
                            let start = arrival.max(self.node_ready[node]);
                            let done = start.after_micros(service);
                            self.node_ready[node] = done;
                            done
                        }
                    };
                    self.core
                        .schedule_at(at, EventKind::Deliver { from: me, to, msg });
                }
                Action::SetTimer { delay_us, tag } => {
                    let Endpoint::Node(node) = me else {
                        unreachable!("timers are only set by nodes")
                    };
                    self.core
                        .schedule_after(delay_us, EventKind::Timer { node, tag });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forwards along a scripted path, then to the receiver.
    struct ScriptedHop {
        route: Vec<NodeId>,
    }
    impl NodeBehavior for ScriptedHop {
        fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(&first) = self.route.first() {
                ctx.send(first, msg);
            } else {
                ctx.send_to_receiver(msg);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
            if let Some(&next) = self.route.first() {
                ctx.send(next, msg);
            } else {
                ctx.send_to_receiver(msg);
            }
        }
    }

    fn scripted(n: usize, routes: Vec<Vec<NodeId>>) -> Simulation<ScriptedHop> {
        assert_eq!(routes.len(), n);
        Simulation::new(
            routes
                .into_iter()
                .map(|route| ScriptedHop { route })
                .collect(),
            LatencyModel::Constant(1_000),
            7,
        )
    }

    #[test]
    fn message_follows_route_and_is_traced() {
        // node 0 sends to 1; 1 forwards to 2; 2 delivers
        let mut sim = scripted(3, vec![vec![1], vec![2], vec![]]);
        let id = sim.schedule_origination(SimTime::ZERO, 0, vec![0xAB]);
        sim.run();
        assert_eq!(sim.deliveries().len(), 1);
        let d = &sim.deliveries()[0];
        assert_eq!(d.msg, id);
        assert_eq!(d.last_hop, Endpoint::Node(2));
        assert_eq!(d.payload, vec![0xAB]);
        // trace: 0→1, 1→2, 2→R at 1ms, 2ms, 3ms
        let hops: Vec<(Endpoint, Endpoint)> = sim.trace().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            hops,
            vec![
                (Endpoint::Node(0), Endpoint::Node(1)),
                (Endpoint::Node(1), Endpoint::Node(2)),
                (Endpoint::Node(2), Endpoint::Receiver),
            ]
        );
        assert_eq!(sim.trace()[2].time, SimTime::from_millis(3));
        assert_eq!(sim.originations()[0].sender, 0);
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut sim = scripted(2, vec![vec![], vec![]]);
        sim.schedule_origination(SimTime::from_millis(5), 0, vec![1]);
        sim.schedule_origination(SimTime::from_millis(1), 1, vec![2]);
        sim.schedule_origination(SimTime::from_millis(5), 1, vec![3]);
        sim.run();
        let senders: Vec<NodeId> = sim.originations().iter().map(|o| o.sender).collect();
        assert_eq!(senders, vec![1, 0, 1]); // time order, FIFO within ties
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = scripted(2, vec![vec![1], vec![]]);
        sim.schedule_origination(SimTime::ZERO, 0, vec![]);
        // horizon cuts off before the second hop arrives
        sim.run_until(SimTime::from_micros(1_500));
        assert_eq!(sim.trace().len(), 1);
        assert!(sim.deliveries().is_empty());
        // resume to completion
        sim.run();
        assert_eq!(sim.deliveries().len(), 1);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                vec![
                    ScriptedHop { route: vec![1, 1] }, // note: scripted, not real routing
                    ScriptedHop { route: vec![] },
                ],
                LatencyModel::Uniform { lo: 100, hi: 5_000 },
                seed,
            );
            for i in 0..20 {
                sim.schedule_origination(SimTime::from_micros(i * 7), (i % 2) as usize, vec![]);
            }
            sim.run();
            sim.trace().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn loss_injection_drops_expected_fraction() {
        // direct senders: delivery ratio should track 1 - p
        let p = 0.3;
        let mut sim = Simulation::new(
            (0..4).map(|_| ScriptedHop { route: vec![] }).collect(),
            LatencyModel::Constant(10),
            5,
        )
        .with_loss(p);
        let total = 4000u64;
        for i in 0..total {
            sim.schedule_origination(SimTime::from_micros(i), (i % 4) as usize, vec![]);
        }
        sim.run();
        let ratio = sim.deliveries().len() as f64 / total as f64;
        assert!((ratio - (1.0 - p)).abs() < 0.03, "ratio {ratio}");
        assert_eq!(sim.lost() as usize + sim.deliveries().len(), total as usize);
    }

    #[test]
    fn multi_hop_loss_compounds_per_edge() {
        // sender -> node 1 -> receiver: survival is (1-p)^2 over two edges
        let p = 0.2;
        let mut sim = Simulation::new(
            vec![
                ScriptedHop { route: vec![1] },
                ScriptedHop { route: vec![] },
            ],
            LatencyModel::Constant(10),
            7,
        )
        .with_loss(p);
        let total = 6000u64;
        for i in 0..total {
            sim.schedule_origination(SimTime::from_micros(i * 3), 0, vec![]);
        }
        sim.run();
        let ratio = sim.deliveries().len() as f64 / total as f64;
        let expect = (1.0 - p) * (1.0 - p);
        assert!(
            (ratio - expect).abs() < 0.03,
            "ratio {ratio} expect {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "loss probability out of range")]
    fn loss_probability_is_validated() {
        let _ = Simulation::new(
            vec![ScriptedHop { route: vec![] }],
            LatencyModel::Constant(1),
            0,
        )
        .with_loss(1.5);
    }

    /// Behavior with a timer: batch two messages, flush on timeout.
    struct TinyBatcher {
        held: Vec<Message>,
    }
    impl NodeBehavior for TinyBatcher {
        fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            ctx.send(0, msg); // self-loop entry: route everything through node 0
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
            self.held.push(msg);
            if self.held.len() == 1 {
                ctx.set_timer(10_000, 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            for m in self.held.drain(..) {
                ctx.send_to_receiver(m);
            }
        }
    }

    #[test]
    fn timers_batch_and_flush() {
        let mut sim = Simulation::new(
            vec![TinyBatcher { held: vec![] }, TinyBatcher { held: vec![] }],
            LatencyModel::Constant(100),
            1,
        );
        sim.schedule_origination(SimTime::ZERO, 1, vec![1]);
        sim.schedule_origination(SimTime::from_micros(50), 1, vec![2]);
        sim.run();
        assert_eq!(sim.deliveries().len(), 2);
        // both were flushed by the same timer: identical delivery times
        assert_eq!(sim.deliveries()[0].time, sim.deliveries()[1].time);
    }

    #[test]
    fn service_time_queues_hops_behind_a_busy_relay() {
        // both messages route through node 1; the second queues behind
        // the first's 500 µs of service
        let mut sim = scripted(3, vec![vec![1], vec![], vec![1]]).with_service_time(500);
        sim.schedule_origination(SimTime::ZERO, 0, vec![1]);
        sim.schedule_origination(SimTime::ZERO, 2, vec![2]);
        sim.run();
        assert_eq!(sim.deliveries().len(), 2);
        // hop edges into node 1: both arrive at 1ms (constant latency),
        // service serializes them at 1.5ms and 2.0ms
        let into_relay: Vec<SimTime> = sim
            .trace()
            .iter()
            .filter(|t| t.to == Endpoint::Node(1))
            .map(|t| t.time)
            .collect();
        assert_eq!(
            into_relay,
            vec![SimTime::from_micros(1_500), SimTime::from_micros(2_000)]
        );
    }

    #[test]
    fn zero_service_time_is_byte_identical_to_default() {
        let run = |queued: bool| {
            let mut sim = scripted(3, vec![vec![1], vec![2], vec![]]);
            if queued {
                sim = sim.with_service_time(0);
            }
            for i in 0..10 {
                sim.schedule_origination(SimTime::from_micros(i * 10), 0, vec![i as u8]);
            }
            sim.run();
            sim.trace().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn schedule_arrivals_matches_per_call_scheduling() {
        let arrivals: Vec<Arrival> = (0..12)
            .map(|i| Arrival {
                at: SimTime::from_micros(i * 11),
                sender: (i % 2) as usize,
                payload: vec![i as u8],
            })
            .collect();
        let mut bulk = scripted(2, vec![vec![], vec![]]);
        bulk.schedule_arrivals(arrivals.clone());
        bulk.run();
        let mut one_by_one = scripted(2, vec![vec![], vec![]]);
        for a in arrivals {
            one_by_one.schedule_origination(a.at, a.sender, a.payload);
        }
        one_by_one.run();
        assert_eq!(bulk.trace(), one_by_one.trace());
        assert_eq!(bulk.originations(), one_by_one.originations());
    }

    /// A deterministic stream: `count` arrivals, `gap_us` apart.
    #[derive(Debug)]
    struct Drip {
        emitted: usize,
        count: usize,
        gap_us: u64,
    }
    impl TrafficProcess for Drip {
        fn next_arrival(
            &mut self,
            _now: SimTime,
            _rng: &mut rand::rngs::StdRng,
        ) -> Option<Arrival> {
            if self.emitted == self.count {
                return None;
            }
            let at = SimTime::from_micros(self.emitted as u64 * self.gap_us);
            self.emitted += 1;
            Some(Arrival {
                at,
                sender: 0,
                payload: vec![],
            })
        }
    }

    #[test]
    fn streamed_traffic_originates_lazily() {
        let mut sim = scripted(2, vec![vec![1], vec![]]);
        sim.attach_traffic(Drip {
            emitted: 0,
            count: 25,
            gap_us: 40,
        });
        sim.run();
        assert_eq!(sim.originations().len(), 25);
        assert_eq!(sim.deliveries().len(), 25);
        for (i, o) in sim.originations().iter().enumerate() {
            assert_eq!(o.time, SimTime::from_micros(i as u64 * 40));
            assert_eq!(o.msg, MsgId(i as u64));
        }
    }

    #[test]
    fn streams_interleave_with_scheduled_originations() {
        let mut sim = scripted(2, vec![vec![], vec![]]);
        sim.schedule_origination(SimTime::from_micros(60), 1, vec![9]);
        sim.attach_traffic(Drip {
            emitted: 0,
            count: 3,
            gap_us: 50,
        });
        sim.run();
        let senders: Vec<NodeId> = sim.originations().iter().map(|o| o.sender).collect();
        // stream at 0, 50, 100 µs; scheduled at 60 µs
        assert_eq!(senders, vec![0, 0, 1, 0]);
    }
}
