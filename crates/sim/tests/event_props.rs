//! Property-based tests for the discrete-event core (proptest).
//!
//! The unit tests in `event`/`des`/`simulation` pin down hand-picked
//! scenarios; these cover the same contracts under randomized inputs:
//!
//! * the event queue pops in monotone time order, FIFO within a time;
//! * cancellation removes exactly the canceled events, once;
//! * a seeded simulation is a pure function of its seed — two runs with
//!   the same seed produce byte-identical `TransferRecord` streams (and
//!   one RNG draw of divergence would reorder everything after it).

use anonroute_sim::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// Random event schedules: many events, few distinct times, so ties are
/// common and the FIFO-within-a-time property is genuinely exercised.
fn arb_times() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..16, 1..200)
}

/// A tiny Crowds-like behavior driven by the simulation PRNG: the
/// originator picks a random first hop, every relay flips a biased coin
/// between forwarding to another random node and delivering. Randomness
/// in routing is the point — it makes the trace sensitive to every RNG
/// draw, which is what the determinism property needs.
struct RandomRelay {
    n: usize,
    forward_prob: f64,
}

impl NodeBehavior for RandomRelay {
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let hop = ctx.rng().gen_range(0..self.n);
        ctx.send(hop, msg);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, msg: Message) {
        if ctx.rng().gen::<f64>() < self.forward_prob {
            let hop = ctx.rng().gen_range(0..self.n);
            ctx.send(hop, msg);
        } else {
            ctx.send_to_receiver(msg);
        }
    }
}

/// Runs one seeded simulation to completion and returns its trace.
fn run_once(n: usize, seed: u64, arrivals: &[(u64, usize)], loss: f64) -> Vec<TransferRecord> {
    let nodes: Vec<RandomRelay> = (0..n)
        .map(|_| RandomRelay {
            n,
            forward_prob: 0.65,
        })
        .collect();
    let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 10, hi: 400 }, seed)
        .with_loss(loss)
        .with_service_time(25);
    sim.schedule_arrivals(arrivals.iter().map(|&(at, sender)| Arrival {
        at: SimTime::from_micros(at),
        sender,
        payload: vec![0u8; 4],
    }));
    sim.run();
    let (trace, _) = sim.into_artifacts();
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pops_are_monotone_in_time_and_fifo_within_a_time(times in arb_times()) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        let mut popped = 0usize;
        while let Some((at, i)) = q.pop() {
            prop_assert_eq!(at, SimTime::from_micros(times[i]));
            if let Some((pt, pi)) = prev {
                prop_assert!(at >= pt, "clock went backwards: {at:?} after {pt:?}");
                if at == pt {
                    // same instant: push order is pop order
                    prop_assert!(i > pi, "tie broken out of FIFO order");
                }
            }
            prev = Some((at, i));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_exactly_the_canceled_events_once(
        times in arb_times(),
        cancel_mask in proptest::collection::vec(any::<bool>(), 200),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_micros(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                prop_assert_eq!(q.cancel(*id), Some(i), "first cancel yields the payload");
                prop_assert_eq!(q.cancel(*id), None, "second cancel is a no-op");
            } else {
                kept.push(i);
            }
        }
        let mut survivors = Vec::new();
        while let Some((_, i)) = q.pop() {
            // a popped event's id is spent: canceling it must miss
            prop_assert_eq!(q.cancel(ids[i]), None);
            survivors.push(i);
        }
        // ordering is (time, seq); within equal times seq is push order,
        // so the kept set sorted stably by time is the exact pop order
        let mut expect = kept;
        expect.sort_by_key(|&i| times[i]);
        prop_assert_eq!(survivors, expect);
    }

    #[test]
    fn same_seed_runs_are_byte_identical(
        seed in any::<u64>(),
        raw in proptest::collection::vec(0u64..40_000, 1..40),
        loss in 0.0f64..0.3,
    ) {
        let n = 8;
        // unpack each draw into (arrival time, sender): time in
        // 0..5000 µs, sender in 0..8
        let arrivals: Vec<(u64, usize)> =
            raw.iter().map(|&v| (v % 5_000, (v / 5_000) as usize)).collect();
        let a = run_once(n, seed, &arrivals, loss);
        let b = run_once(n, seed, &arrivals, loss);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge_on_nontrivial_runs(seed in any::<u64>()) {
        // sanity check that the byte-identity property is not vacuous:
        // with 40 messages through random relays, two different seeds
        // producing the same trace would be astronomically unlikely
        let arrivals: Vec<(u64, usize)> = (0..40).map(|i| (i * 50, (i as usize) % 8)).collect();
        let a = run_once(8, seed, &arrivals, 0.1);
        let b = run_once(8, seed.wrapping_add(1), &arrivals, 0.1);
        prop_assert_ne!(a, b);
    }
}
