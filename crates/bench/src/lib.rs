//! # anonroute-bench
//!
//! Criterion benchmarks for the `anonroute` workspace. The crate body is
//! empty — see the `benches/` directory:
//!
//! * `engine` — exact anonymity-degree engines, posteriors, optimizer;
//! * `crypto` — SHA-256 / ChaCha20 throughput, onion build/peel;
//! * `simulation` — discrete-event throughput with full onion protocol;
//! * `sim` — raw discrete-event core throughput (events/sec) at 10³,
//!   10⁵, and 10⁶ member nodes — the committed `BENCH_sim.json`;
//! * `figures` — wall-clock cost of regenerating each paper figure;
//! * `campaign` — serial-vs-parallel scenario-sweep throughput;
//! * `relay` — TCP relay network: end-to-end circuit latency over
//!   loopback and whole-cluster throughput including teardown.

#![forbid(unsafe_code)]
