//! Benchmarks of the simulation stack: event throughput with the full
//! onion protocol, Crowds forwarding, and the adversary attack.

use anonroute_adversary::{attack_trace, Adversary};
use anonroute_core::{PathKind, PathLengthDist, SystemModel};
use anonroute_protocols::crowds::crowd;
use anonroute_protocols::onion_routing::onion_network;
use anonroute_protocols::RouteSampler;
use anonroute_sim::{LatencyModel, SimTime, Simulation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn onion_sim(
    n: usize,
    messages: u64,
    seed: u64,
) -> Simulation<anonroute_protocols::onion_routing::OnionNode> {
    let sampler =
        RouteSampler::new(n, PathLengthDist::uniform(1, 6).unwrap(), PathKind::Simple).unwrap();
    let nodes = onion_network(n, &sampler, 2048, b"bench").unwrap();
    let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 10, hi: 200 }, seed);
    for i in 0..messages {
        sim.schedule_origination(
            SimTime::from_micros(i * 40),
            (i % n as u64) as usize,
            vec![0; 16],
        );
    }
    sim
}

fn bench_onion_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("onion_n30_500_messages", |b| {
        b.iter(|| {
            let mut sim = onion_sim(30, 500, 3);
            sim.run();
            black_box(sim.deliveries().len())
        })
    });
    group.bench_function("crowds_n30_500_messages", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(crowd(30, 0.7).unwrap(), LatencyModel::Constant(20), 5);
            for i in 0..500u64 {
                sim.schedule_origination(SimTime::from_micros(i * 40), (i % 30) as usize, vec![]);
            }
            sim.run();
            black_box(sim.deliveries().len())
        })
    });
    group.finish();
}

fn bench_adversary_attack(c: &mut Criterion) {
    let n = 30;
    let mut sim = onion_sim(n, 500, 9);
    sim.run();
    let model = SystemModel::new(n, 2).unwrap();
    let dist = PathLengthDist::uniform(1, 6).unwrap();
    let adv = Adversary::new(n, &[0, 1]).unwrap();
    let mut group = c.benchmark_group("adversary");
    group.sample_size(10);
    group.bench_function("attack_500_messages", |b| {
        b.iter(|| {
            attack_trace(
                &adv,
                &model,
                &dist,
                black_box(sim.trace()),
                sim.originations(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_onion_simulation, bench_adversary_attack);
criterion_main!(benches);
