//! Benchmarks of the analysis engines: exact anonymity degree (simple and
//! cyclic), reusable-evaluator scoring, per-event posteriors, Monte-Carlo
//! sampling, and the optimizer.

use anonroute_core::engine::simple::Evaluator;
use anonroute_core::engine::{self, estimate_anonymity_degree, observe, sender_posterior};
use anonroute_core::{analytic, optimize, PathKind, PathLengthDist, SystemModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exact_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_engine");
    for (n, cc) in [(100usize, 1usize), (100, 5), (1000, 10)] {
        let model = SystemModel::new(n, cc).unwrap();
        let dist = PathLengthDist::uniform(2, (n / 2).min(60)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("simple", format!("n{n}_c{cc}")),
            &(model, dist),
            |b, (model, dist)| {
                b.iter(|| engine::anonymity_degree(black_box(model), black_box(dist)).unwrap())
            },
        );
    }
    let cyclic = SystemModel::with_path_kind(100, 2, PathKind::Cyclic).unwrap();
    let dist = PathLengthDist::geometric(0.7, 25).unwrap();
    group.bench_function("cyclic_n100_c2", |b| {
        b.iter(|| engine::anonymity_degree(black_box(&cyclic), black_box(&dist)).unwrap())
    });
    group.finish();
}

fn bench_evaluator_hot_loop(c: &mut Criterion) {
    let model = SystemModel::new(100, 1).unwrap();
    let ev = Evaluator::new(&model, 99).unwrap();
    let pmf = PathLengthDist::uniform(2, 60).unwrap().pmf().to_vec();
    c.bench_function("evaluator_h_star_n100", |b| {
        b.iter(|| ev.h_star(black_box(&pmf)))
    });
}

fn bench_closed_form(c: &mut Criterion) {
    c.bench_function("theorem1_closed_form", |b| {
        b.iter(|| analytic::theorem1_fixed(black_box(100), black_box(31)).unwrap())
    });
}

fn bench_posterior(c: &mut Criterion) {
    let n = 100;
    let model = SystemModel::new(n, 3).unwrap();
    let dist = PathLengthDist::uniform(1, 40).unwrap();
    let compromised: Vec<bool> = (0..n).map(|i| i < 3).collect();
    let path: Vec<usize> = vec![10, 1, 20, 2, 30, 40, 50];
    let obs = observe(5, &path, &compromised);
    c.bench_function("sender_posterior_n100_c3", |b| {
        b.iter(|| {
            sender_posterior(
                black_box(&model),
                black_box(&dist),
                black_box(&obs),
                &compromised,
            )
            .unwrap()
        })
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let model = SystemModel::new(100, 1).unwrap();
    let dist = PathLengthDist::uniform(2, 20).unwrap();
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    group.bench_function("mc_1000_samples", |b| {
        b.iter(|| estimate_anonymity_degree(&model, &dist, 1000, 7).unwrap())
    });
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let model = SystemModel::new(60, 1).unwrap();
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    group.bench_function("uniform_family_mean10", |b| {
        b.iter(|| optimize::best_uniform_with_mean(&model, 59, 10).unwrap())
    });
    group.bench_function("mean_constrained_lmax30", |b| {
        b.iter(|| optimize::maximize_with_mean(&model, 30, 8.0).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_engine,
    bench_evaluator_hot_loop,
    bench_closed_form,
    bench_posterior,
    bench_monte_carlo,
    bench_optimizer
);
criterion_main!(benches);
