//! Benchmarks of the discrete-event core at scale: raw event throughput
//! with 10³, 10⁵, and 10⁶ member nodes (the committed `BENCH_sim.json`
//! snapshot).
//!
//! The workload is protocol-free on purpose — a minimal countdown relay
//! whose per-event work is a couple of RNG draws and one send — so the
//! measured rate is the engine's (queue, clock, dispatch), not the
//! onion stack's. Arrivals come from a streamed [`UniformProcess`], the
//! O(1)-memory path a million-sender cell uses.

use anonroute_sim::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use std::hint::black_box;

/// Hops each message takes before reaching the receiver.
const HOPS: u8 = 3;

/// Messages per run; fixed across system sizes so the rate isolates the
/// cost of `n` (memory footprint, cache behavior), not workload size.
const MESSAGES: usize = 200_000;

/// Forwards `bytes[0]` more hops to random nodes, then delivers.
struct CountdownRelay {
    n: usize,
}

impl NodeBehavior for CountdownRelay {
    fn on_originate(&mut self, ctx: &mut Ctx<'_>, mut msg: Message) {
        msg.bytes[0] = HOPS;
        let hop = ctx.rng().gen_range(0..self.n);
        ctx.send(hop, msg);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Endpoint, mut msg: Message) {
        if msg.bytes[0] == 0 {
            ctx.send_to_receiver(msg);
        } else {
            msg.bytes[0] -= 1;
            let hop = ctx.rng().gen_range(0..self.n);
            ctx.send(hop, msg);
        }
    }
}

/// Runs one full simulation and returns the number of events processed.
fn des_run(n: usize, seed: u64) -> u64 {
    let nodes: Vec<CountdownRelay> = (0..n).map(|_| CountdownRelay { n }).collect();
    let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 20, hi: 200 }, seed);
    sim.attach_traffic(UniformProcess::new(MESSAGES, 5, 1, n));
    sim.run();
    sim.events_processed()
}

fn bench_des_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_events");
    group.sample_size(10);
    for &n in &[1_000usize, 100_000, 1_000_000] {
        // count once so the reported throughput is exact, not estimated
        let events = des_run(n, 7);
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(des_run(n, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_des_events);
criterion_main!(benches);
