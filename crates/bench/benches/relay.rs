//! Benchmarks of the TCP relay network: per-message end-to-end circuit
//! latency over a persistent loopback net, and whole-cluster throughput
//! including spin-up and graceful teardown.

use std::sync::Arc;
use std::time::Duration;

use anonroute_core::{PathKind, PathLengthDist};
use anonroute_relay::{
    cluster_identity, run_cluster, Client, ClusterConfig, Directory, LinkTap, NodeInfo,
    PendingRelay, ReceiverServer, RelayConfig,
};
use anonroute_sim::traffic::{Arrival, UniformTraffic};
use anonroute_sim::MsgId;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-message latency through a standing 3-hop circuit: build the onion,
/// traverse 3 relays over real sockets, await the delivery.
fn bench_end_to_end_latency(c: &mut Criterion) {
    let tap = LinkTap::new();
    let receiver = ReceiverServer::spawn(tap.clone(), Duration::from_millis(50)).unwrap();
    let config = RelayConfig {
        cell_size: 1024,
        ..RelayConfig::default()
    };
    let pending: Vec<PendingRelay> = (0..6)
        .map(|id| PendingRelay::bind(id, cluster_identity(1, id), config).unwrap())
        .collect();
    let nodes: Vec<NodeInfo> = pending
        .iter()
        .map(|p| NodeInfo {
            id: p.id(),
            addr: p.addr(),
            public: p.public(),
        })
        .collect();
    let directory = Arc::new(Directory::new(nodes, receiver.addr()).unwrap());
    let relays: Vec<_> = pending
        .into_iter()
        .map(|p| p.serve(Arc::clone(&directory), tap.clone(), 1))
        .collect();
    let mut client = Client::new(
        Arc::clone(&directory),
        PathLengthDist::fixed(3),
        PathKind::Simple,
        1024,
        None,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut sent = 0usize;
    c.bench_function("relay_e2e_3hop_1024B_cell", |b| {
        b.iter(|| {
            sent += 1;
            client
                .send(0, MsgId(sent as u64), &[7u8; 64], &mut rng)
                .unwrap();
            assert!(receiver.wait_for(sent, Duration::from_secs(10)));
        })
    });
    drop(client);
    for relay in relays {
        relay.join(Duration::from_secs(10)).unwrap();
    }
    receiver.join(Duration::from_secs(10)).unwrap();
}

/// Whole-cluster throughput: bind 8 relays, drive 100 messages, tear
/// down — the cost of one harness-style measurement run.
fn bench_cluster_run(c: &mut Criterion) {
    let arrivals: Vec<Arrival> = UniformTraffic {
        count: 100,
        interval_us: 0,
        payload_len: 16,
    }
    .generate(8, &mut StdRng::seed_from_u64(3));
    c.bench_function("cluster_8relays_100msgs_uniform_1_3", |b| {
        b.iter(|| {
            let config = ClusterConfig::new(8, PathLengthDist::uniform(1, 3).unwrap());
            let outcome = run_cluster(&config, &arrivals).unwrap();
            assert_eq!(outcome.deliveries.len(), 100);
            outcome
        })
    });
}

criterion_group!(benches, bench_end_to_end_latency, bench_cluster_run);
criterion_main!(benches);
