//! Benchmarks of the crypto substrate: hash/cipher throughput and
//! per-hop onion costs.

use anonroute_crypto::keys::KeyStore;
use anonroute_crypto::{chacha20, hmac, onion, sha256};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xabu8; 4096];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("digest_4k", |b| b.iter(|| sha256::digest(black_box(&data))));
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x55u8; 1024];
    c.bench_function("hmac_sha256_1k", |b| {
        b.iter(|| hmac::hmac_sha256(black_box(b"key material"), black_box(&data)))
    });
}

fn bench_chacha20(c: &mut Criterion) {
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    let mut data = vec![0u8; 4096];
    let mut group = c.benchmark_group("chacha20");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("xor_4k", |b| {
        b.iter(|| chacha20::xor_stream(black_box(&key), black_box(&nonce), 1, &mut data))
    });
    group.finish();
}

fn bench_onion(c: &mut Criterion) {
    let keys = KeyStore::from_seed(b"bench", 64);
    let path: Vec<u16> = vec![3, 17, 42, 8, 25];
    let nonces: Vec<[u8; 12]> = (0..5).map(|i| [i as u8 + 1; 12]).collect();
    let payload = vec![0xCDu8; 256];
    c.bench_function("onion_build_5_hops", |b| {
        b.iter(|| onion::build(&keys, black_box(&path), black_box(&payload), &nonces).unwrap())
    });

    let wire = onion::build(&keys, &path, &payload, &nonces).unwrap();
    let mut j = 0u8;
    let mut junk = move || {
        j = j.wrapping_add(41);
        j
    };
    let cell = onion::frame(&wire, 2048, &mut junk).unwrap();
    c.bench_function("onion_peel_one_hop", |b| {
        b.iter(|| onion::peel(&keys.key(3), black_box(&cell)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_chacha20,
    bench_onion
);
criterion_main!(benches);
