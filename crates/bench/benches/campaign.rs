//! Campaign throughput: the same scenario grid swept serially and on the
//! full thread pool, plus the evaluator-cache effect in isolation.

use anonroute_campaign::{run, CampaignConfig, ScenarioGrid, StrategySpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A 90-cell exact grid: 2 sizes × 3 compromise levels × 15 strategies.
fn bench_grid() -> ScenarioGrid {
    let strategies: Vec<StrategySpec> = (1..=10)
        .map(StrategySpec::Fixed)
        .chain((1..=5).map(|a| StrategySpec::Uniform(a, a + 6)))
        .collect();
    ScenarioGrid::new()
        .ns([100, 200])
        .cs([1, 2, 3])
        .strategies(strategies)
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let grid = bench_grid();
    let mut group = c.benchmark_group("campaign_sweep_90_cells");
    group.sample_size(10);
    group.bench_function("threads_1", |b| {
        b.iter(|| {
            let config = CampaignConfig {
                threads: 1,
                ..Default::default()
            };
            black_box(run(black_box(&grid), &config).ok_count())
        })
    });
    group.bench_function("threads_auto", |b| {
        b.iter(|| {
            let config = CampaignConfig {
                threads: 0,
                ..Default::default()
            };
            black_box(run(black_box(&grid), &config).ok_count())
        })
    });
    group.finish();
}

fn bench_monte_carlo_grid(c: &mut Criterion) {
    let grid = ScenarioGrid::new()
        .ns([50])
        .cs([1, 2])
        .strategies((1..=6).map(StrategySpec::Fixed))
        .engines([anonroute_campaign::EngineKind::MonteCarlo]);
    let mut group = c.benchmark_group("campaign_mc_12_cells");
    group.sample_size(10);
    for (label, threads) in [("threads_1", 1usize), ("threads_auto", 0)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = CampaignConfig {
                    threads,
                    mc_samples: 4_000,
                    ..Default::default()
                };
                black_box(run(black_box(&grid), &config).ok_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serial_vs_parallel, bench_monte_carlo_grid);
criterion_main!(benches);
