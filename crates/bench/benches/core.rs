//! Benchmarks of the multi-round intersection accumulator — the hot
//! inner loop every engine shares when a cell has `epochs > 1`.
//!
//! `fold` is the accumulate-and-renormalize step (one multiply +
//! normalize pass over the universe per epoch); `posterior` and
//! `entropy_bits` are the read-side folds the scorer takes per cell.

use anonroute_core::IntersectionPosterior;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A deterministic, strictly positive round posterior over `n`
/// candidates (normalized), with enough spread to exercise the
/// renormalization arithmetic.
fn round_posterior(n: usize) -> Vec<f64> {
    let mut p: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64 / 16.0).collect();
    let total: f64 = p.iter().sum();
    for w in &mut p {
        *w /= total;
    }
    p
}

/// An accumulator that has already folded twice, so further folds take
/// the multiply-and-renormalize path rather than the verbatim first copy.
fn warmed(n: usize, round: &[f64]) -> IntersectionPosterior {
    let mut acc = IntersectionPosterior::new(n);
    acc.fold(round).unwrap();
    acc.fold(round).unwrap();
    acc
}

/// A round that eliminates everyone except `k` evenly spaced survivors.
fn collapsing_round(n: usize, k: usize) -> Vec<f64> {
    let stride = n / k;
    let mut p = vec![0.0; n];
    for j in 0..k {
        p[j * stride] = 1.0 / k as f64;
    }
    p
}

/// An accumulator collapsed to `k` surviving candidates out of `n` — the
/// regime the intersection attack reaches after a few epochs, where the
/// accumulator has switched to its sparse representation.
fn collapsed(n: usize, k: usize, round: &[f64]) -> IntersectionPosterior {
    let mut acc = warmed(n, round);
    acc.fold(&collapsing_round(n, k)).unwrap();
    assert!(acc.is_sparse(), "k << n must trigger the sparse switchover");
    acc
}

fn bench_intersection_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection_posterior");
    for n in [1_000usize, 100_000] {
        let round = round_posterior(n);
        let acc = warmed(n, &round);
        group.bench_with_input(
            BenchmarkId::new("accumulate", format!("n{n}")),
            &(acc.clone(), round.clone()),
            |b, (acc, round)| {
                b.iter(|| {
                    let mut a = acc.clone();
                    a.fold(black_box(round)).unwrap();
                    a.folds()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("renormalize", format!("n{n}")),
            &acc,
            |b, acc| b.iter(|| black_box(acc).posterior()),
        );
        group.bench_with_input(
            BenchmarkId::new("entropy_bits", format!("n{n}")),
            &acc,
            |b, acc| b.iter(|| black_box(acc).entropy_bits()),
        );
    }
    // shrunken-support cases: after heavy elimination only 64 candidates
    // survive, so the sparse representation folds/scores in O(support)
    // regardless of the universe size
    for n in [100_000usize, 1_000_000] {
        let round = round_posterior(n);
        let acc = collapsed(n, 64, &round);
        group.bench_with_input(
            BenchmarkId::new("accumulate_collapsed", format!("n{n}")),
            &(acc.clone(), round.clone()),
            |b, (acc, round)| {
                b.iter(|| {
                    let mut a = acc.clone();
                    a.fold(black_box(round)).unwrap();
                    a.folds()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("entropy_bits_collapsed", format!("n{n}")),
            &acc,
            |b, acc| b.iter(|| black_box(acc).entropy_bits()),
        );
        group.bench_with_input(
            BenchmarkId::new("support_collapsed", format!("n{n}")),
            &acc,
            |b, acc| b.iter(|| black_box(acc).support()),
        );
        group.bench_with_input(
            BenchmarkId::new("best_guess_collapsed", format!("n{n}")),
            &acc,
            |b, acc| b.iter(|| black_box(acc).best_guess()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intersection_posterior);
criterion_main!(benches);
