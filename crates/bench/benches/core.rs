//! Benchmarks of the multi-round intersection accumulator — the hot
//! inner loop every engine shares when a cell has `epochs > 1`.
//!
//! `fold` is the accumulate-and-renormalize step (one multiply +
//! normalize pass over the universe per epoch); `posterior` and
//! `entropy_bits` are the read-side folds the scorer takes per cell.

use anonroute_core::IntersectionPosterior;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A deterministic, strictly positive round posterior over `n`
/// candidates (normalized), with enough spread to exercise the
/// renormalization arithmetic.
fn round_posterior(n: usize) -> Vec<f64> {
    let mut p: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64 / 16.0).collect();
    let total: f64 = p.iter().sum();
    for w in &mut p {
        *w /= total;
    }
    p
}

/// An accumulator that has already folded twice, so further folds take
/// the multiply-and-renormalize path rather than the verbatim first copy.
fn warmed(n: usize, round: &[f64]) -> IntersectionPosterior {
    let mut acc = IntersectionPosterior::new(n);
    acc.fold(round).unwrap();
    acc.fold(round).unwrap();
    acc
}

fn bench_intersection_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection_posterior");
    for n in [1_000usize, 100_000] {
        let round = round_posterior(n);
        let acc = warmed(n, &round);
        group.bench_with_input(
            BenchmarkId::new("accumulate", format!("n{n}")),
            &(acc.clone(), round.clone()),
            |b, (acc, round)| {
                b.iter(|| {
                    let mut a = acc.clone();
                    a.fold(black_box(round)).unwrap();
                    a.folds()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("renormalize", format!("n{n}")),
            &acc,
            |b, acc| b.iter(|| black_box(acc).posterior()),
        );
        group.bench_with_input(
            BenchmarkId::new("entropy_bits", format!("n{n}")),
            &acc,
            |b, acc| b.iter(|| black_box(acc).entropy_bits()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intersection_posterior);
criterion_main!(benches);
