//! Wall-clock cost of regenerating each paper figure — one benchmark per
//! evaluation artifact, so `cargo bench` exercises the entire reproduction
//! pipeline.

use anonroute_experiments::figures;
use anonroute_experiments::validation::theorem_table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig3a_full_sweep", |b| {
        b.iter(|| black_box(figures::fig3a()))
    });
    group.bench_function("fig4_all_panels", |b| b.iter(|| black_box(figures::fig4())));
    group.bench_function("fig5_all_panels", |b| b.iter(|| black_box(figures::fig5())));
    group.finish();
}

fn bench_fig6_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_opt");
    group.sample_size(10);
    // a compact slice of Figure 6 (the full figure runs the optimizer 49x)
    group.bench_function("fig6_L3to8_lmax30", |b| {
        b.iter(|| black_box(figures::fig6(3, 8, 30)))
    });
    group.finish();
}

fn bench_theorem_validation(c: &mut Criterion) {
    c.bench_function("theorem_table", |b| b.iter(|| black_box(theorem_table())));
}

criterion_group!(
    benches,
    bench_figures,
    bench_fig6_optimization,
    bench_theorem_validation
);
criterion_main!(benches);
