//! Property tests for the histogram invariants the exposition format
//! relies on: cumulative bucket counts are monotone non-decreasing in
//! bound order, the `+Inf` bucket equals the sample count, and the sum
//! tracks the observed values.

use anonroute_obs::Histogram;
use proptest::prelude::*;

/// Strictly increasing finite bounds derived from arbitrary positive
/// step sizes.
fn bounds_from(steps: &[f64]) -> Vec<f64> {
    let mut bounds = Vec::with_capacity(steps.len());
    let mut bound = 0.0;
    for step in steps {
        bound += 0.001 + step.abs();
        bounds.push(bound);
    }
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_counts_are_monotone_and_sum_to_sample_count(
        steps in proptest::collection::vec(0.0f64..10.0, 1..8),
        samples in proptest::collection::vec(-5.0f64..100.0, 0..64),
    ) {
        let bounds = bounds_from(&steps);
        let h = Histogram::new(&bounds);
        for &v in &samples {
            h.observe(v);
        }
        let snap = h.snapshot();

        // one entry per finite bound plus the +Inf bucket
        prop_assert_eq!(snap.cumulative.len(), bounds.len() + 1);
        prop_assert!(snap.cumulative.last().unwrap().0.is_infinite());

        // cumulative counts never decrease in bound order
        for pair in snap.cumulative.windows(2) {
            prop_assert!(
                pair[0].1 <= pair[1].1,
                "cumulative counts decreased: {:?} -> {:?}",
                pair[0],
                pair[1]
            );
        }

        // the +Inf bucket and the count both equal the sample count
        prop_assert_eq!(snap.cumulative.last().unwrap().1, samples.len() as u64);
        prop_assert_eq!(snap.count, samples.len() as u64);

        // each cumulative bucket counts exactly the samples <= its bound
        for &(bound, cumulative) in &snap.cumulative {
            let expected = samples.iter().filter(|&&v| v <= bound).count() as u64;
            prop_assert_eq!(cumulative, expected, "bound {}", bound);
        }

        // the sum tracks the observed values (float addition reorders,
        // so compare with a tolerance scaled to the magnitudes involved)
        let expected_sum: f64 = samples.iter().sum();
        prop_assert!(
            (snap.sum - expected_sum).abs() <= 1e-9 * (1.0 + expected_sum.abs()),
            "sum {} != {}",
            snap.sum,
            expected_sum
        );
    }

    #[test]
    fn observations_at_exact_bounds_are_inclusive(
        steps in proptest::collection::vec(0.0f64..10.0, 1..6),
    ) {
        let bounds = bounds_from(&steps);
        let h = Histogram::new(&bounds);
        for &b in &bounds {
            h.observe(b); // le is <=, so each lands in its own bucket
        }
        let snap = h.snapshot();
        for (i, &(_, cumulative)) in snap.cumulative.iter().enumerate() {
            let expected = (i + 1).min(bounds.len()) as u64;
            prop_assert_eq!(cumulative, expected);
        }
    }
}
