//! Property tests for the span-name stack: under arbitrary open/close
//! programs the stack stays balanced, `current_path` always mirrors the
//! model stack, and everything unwinds to empty — the invariant that
//! makes `current_path` safe to embed in seeded artifacts.

use anonroute_obs::trace::{current_depth, current_path, span, Span};
use proptest::prelude::*;

/// The fixed pool of `'static` span names the generator draws from.
const NAMES: [&str; 6] = [
    "campaign.sweep",
    "campaign.cell",
    "cell.evaluate",
    "cell.fold",
    "relay.cell",
    "cluster.boot",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // `ops` encodes an arbitrary open/close program: a value below
    // `NAMES.len()` opens a span with that name, anything else closes
    // the innermost open span (a no-op when none is open). RAII makes
    // closes inherently LIFO — exactly the discipline real
    // instrumentation follows.
    #[test]
    fn span_stack_mirrors_the_model_under_arbitrary_programs(
        ops in proptest::collection::vec(0usize..NAMES.len() + 3, 0..64),
    ) {
        // a test runner thread may interleave other tests' spans only on
        // other threads: the stack is thread-local, so we start at our
        // own baseline
        let base_depth = current_depth();
        let base_path = current_path();
        let mut open: Vec<Span> = Vec::new();
        let mut model: Vec<&'static str> = Vec::new();
        for op in ops {
            if op < NAMES.len() {
                open.push(span(NAMES[op], "prop-test"));
                model.push(NAMES[op]);
            } else {
                open.pop();
                model.pop();
            }
            prop_assert_eq!(current_depth(), base_depth + model.len());
            let expected = if base_path.is_empty() {
                model.join("/")
            } else if model.is_empty() {
                base_path.clone()
            } else {
                format!("{base_path}/{}", model.join("/"))
            };
            prop_assert_eq!(current_path(), expected);
        }
        // unwind innermost-first: dropping the Vec itself would drop
        // index 0 first and violate the LIFO span discipline
        while let Some(innermost) = open.pop() {
            drop(innermost);
        }
        prop_assert_eq!(current_depth(), base_depth);
        prop_assert_eq!(current_path(), base_path);
    }
}
