//! Golden-file test for the `/metrics` exposition.
//!
//! Pins the exact bytes `Registry::render` produces for a registry
//! exercising every instrument kind, label escaping, and the ordering
//! rules (families by name, series by rendered label set, labels by
//! label name). Scrapers and the CI smoke-run grep this format, so any
//! drift — reordering, a formatting change, an escaping fix — must show
//! up here as a deliberate golden update, not as silent churn.

use anonroute_obs::Registry;

const GOLDEN: &str = "\
# HELP relay_cells_total Cells handled by the relay, by outcome.
# TYPE relay_cells_total counter
relay_cells_total{outcome=\"dropped\"} 1
relay_cells_total{outcome=\"relayed\"} 3
# HELP sweep_boot_seconds Cluster boot wall-clock.
# TYPE sweep_boot_seconds histogram
sweep_boot_seconds_bucket{engine=\"live\",le=\"0.5\"} 1
sweep_boot_seconds_bucket{engine=\"live\",le=\"2.5\"} 2
sweep_boot_seconds_bucket{engine=\"live\",le=\"+Inf\"} 3
sweep_boot_seconds_sum{engine=\"live\"} 10.25
sweep_boot_seconds_count{engine=\"live\"} 3
# HELP sweep_budget_in_use Cluster budget permits in use.
# TYPE sweep_budget_in_use gauge
sweep_budget_in_use 1.5
# HELP sweep_cells_in_flight Cells currently being evaluated.
# TYPE sweep_cells_in_flight gauge
sweep_cells_in_flight -2
# HELP weird_total Help with a \\\\ backslash\\nand a newline.
# TYPE weird_total counter
weird_total{path=\"a\\\\b\\\"c\\nd\"} 1
";

#[test]
fn metrics_exposition_matches_golden_bytes() {
    let registry = Registry::new();
    // Registration order is deliberately scrambled relative to the
    // golden: exposition order must come from the registry, not from
    // who registered first.
    registry
        .counter(
            "weird_total",
            "Help with a \\ backslash\nand a newline.",
            &[("path", "a\\b\"c\nd")],
        )
        .inc();
    registry
        .gauge(
            "sweep_cells_in_flight",
            "Cells currently being evaluated.",
            &[],
        )
        .set(-2);
    registry
        .counter(
            "relay_cells_total",
            "Cells handled by the relay, by outcome.",
            &[("outcome", "relayed")],
        )
        .add(3);
    registry.gauge_fn(
        "sweep_budget_in_use",
        "Cluster budget permits in use.",
        &[],
        || 1.5,
    );
    let boot = registry.histogram(
        "sweep_boot_seconds",
        "Cluster boot wall-clock.",
        &[("engine", "live")],
        &[0.5, 2.5],
    );
    boot.observe(0.25);
    boot.observe(1.0);
    boot.observe(9.0);
    registry
        .counter(
            "relay_cells_total",
            "Cells handled by the relay, by outcome.",
            &[("outcome", "dropped")],
        )
        .inc();

    assert_eq!(registry.render(), GOLDEN);
}

#[test]
fn rendering_is_stable_across_repeated_calls() {
    let registry = Registry::new();
    registry.counter("a_total", "a", &[("k", "v")]).inc();
    registry.gauge("b", "b", &[]).set(4);
    let first = registry.render();
    assert_eq!(registry.render(), first);
}
