//! Golden-file test for the Chrome-trace export.
//!
//! Pins the exact bytes `render_chrome_trace` produces for a fixed
//! event set exercising sorting, args, and name escaping. Perfetto and
//! the CI smoke-run consume this format, so any drift — reordering, a
//! field rename, an escaping fix — must show up here as a deliberate
//! golden update, not as silent churn.

use anonroute_obs::{render_chrome_trace, TraceEvent};

const GOLDEN: &str = "{\"traceEvents\":[\n\
{\"name\":\"campaign.sweep\",\"cat\":\"campaign\",\"ph\":\"X\",\"ts\":0,\"dur\":900,\"pid\":1,\"tid\":1,\"args\":{\"cells\":2}},\n\
{\"name\":\"campaign.cell\",\"cat\":\"campaign\",\"ph\":\"X\",\"ts\":10,\"dur\":400,\"pid\":1,\"tid\":2,\"args\":{\"cell\":0,\"epochs\":1}},\n\
{\"name\":\"cell.evaluate\",\"cat\":\"campaign\",\"ph\":\"X\",\"ts\":15,\"dur\":300,\"pid\":1,\"tid\":2},\n\
{\"name\":\"campaign.cell\",\"cat\":\"campaign\",\"ph\":\"X\",\"ts\":15,\"dur\":500,\"pid\":1,\"tid\":3,\"args\":{\"cell\":1,\"epochs\":4}},\n\
{\"name\":\"a\\\"quoted\\\\name\",\"cat\":\"relay\",\"ph\":\"X\",\"ts\":20,\"dur\":1,\"pid\":1,\"tid\":3}\n\
]}\n";

/// The same events, deliberately out of order: the renderer must sort
/// by `(ts, tid, name)` so equal event sets render equal bytes no
/// matter how thread buffers drained.
fn events() -> Vec<TraceEvent> {
    vec![
        TraceEvent {
            name: "a\"quoted\\name",
            cat: "relay",
            ts_us: 20,
            dur_us: 1,
            tid: 3,
            args: vec![],
        },
        TraceEvent {
            name: "campaign.cell",
            cat: "campaign",
            ts_us: 15,
            dur_us: 500,
            tid: 3,
            args: vec![("cell", 1), ("epochs", 4)],
        },
        TraceEvent {
            name: "cell.evaluate",
            cat: "campaign",
            ts_us: 15,
            dur_us: 300,
            tid: 2,
            args: vec![],
        },
        TraceEvent {
            name: "campaign.sweep",
            cat: "campaign",
            ts_us: 0,
            dur_us: 900,
            tid: 1,
            args: vec![("cells", 2)],
        },
        TraceEvent {
            name: "campaign.cell",
            cat: "campaign",
            ts_us: 10,
            dur_us: 400,
            tid: 2,
            args: vec![("cell", 0), ("epochs", 1)],
        },
    ]
}

#[test]
fn chrome_trace_matches_golden_bytes() {
    assert_eq!(render_chrome_trace(&events()), GOLDEN);
}

#[test]
fn rendering_is_independent_of_input_order() {
    let mut reversed = events();
    reversed.reverse();
    assert_eq!(render_chrome_trace(&reversed), GOLDEN);
}

#[test]
fn empty_trace_is_still_a_loadable_document() {
    assert_eq!(render_chrome_trace(&[]), "{\"traceEvents\":[\n\n]}\n");
}
