//! The labeled metric registry and its text exposition.
//!
//! A [`Registry`] maps metric family names to help text, a kind, and a
//! set of labeled series. Instrumented code and the registry share the
//! same atomics through `Arc`, so registration happens once at wiring
//! time and the hot path never touches the registry's lock.
//!
//! ## Exposition determinism
//!
//! [`Registry::render`] produces the Prometheus text format
//! (`text/plain; version=0.0.4`) with **fully deterministic ordering**:
//! families sort by metric name, series within a family sort by their
//! rendered label set, and labels within a series sort by label name.
//! Label values are escaped (`\\`, `\"`, `\n`) per the format spec.
//! The golden-file test in `tests/exposition_golden.rs` pins the exact
//! bytes, so any drift in ordering, escaping, or number formatting
//! fails loudly.
//!
//! ## Polled series
//!
//! [`Registry::counter_fn`] / [`Registry::gauge_fn`] register a closure
//! evaluated at render time — the natural fit for values owned by
//! someone else (budget permits in use, a sweep's in-flight cell count).
//! Re-registering a polled series **replaces** the closure: a new
//! campaign run re-pointing `anonroute_campaign_*` at its own progress
//! state is the intended use. Closures run under the registry lock and
//! must not call back into the registry.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// What a metric family measures — fixes the `# TYPE` line and which
/// instruments the family accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One registered series: a shared instrument or a render-time poll.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// Polled; rendered as its family's kind (counter or gauge).
    Polled(Box<dyn Fn() -> f64 + Send + Sync>),
}

struct Family {
    kind: Kind,
    help: String,
    /// Keyed by the rendered label block (`{a="b",c="d"}` or empty), so
    /// iteration order *is* exposition order.
    series: BTreeMap<String, Instrument>,
}

/// A named, labeled collection of metrics with deterministic
/// Prometheus-style text exposition.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("registry lock");
        f.debug_struct("Registry")
            .field("families", &families.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry shared by every instrumented subsystem
    /// (relay clusters, campaign sweeps); the default target of
    /// `--metrics-addr` endpoints.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Gets or creates the counter series `name{labels}`.
    ///
    /// # Panics
    ///
    /// On an invalid metric/label name, or when `name` is already
    /// registered as a different kind or `name{labels}` as a different
    /// instrument — metric layouts are wiring-time decisions, so a
    /// conflict is a programming error.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.intern_with(
            name,
            help,
            labels,
            Kind::Counter,
            || Instrument::Counter(Arc::new(Counter::new())),
            |instrument| match instrument {
                Instrument::Counter(c) => Arc::clone(c),
                _ => panic!("series {name} is registered as a non-counter instrument"),
            },
        )
    }

    /// Gets or creates the gauge series `name{labels}`.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.intern_with(
            name,
            help,
            labels,
            Kind::Gauge,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |instrument| match instrument {
                Instrument::Gauge(g) => Arc::clone(g),
                _ => panic!("series {name} is registered as a non-gauge instrument"),
            },
        )
    }

    /// Gets or creates the histogram series `name{labels}`. When the
    /// series already exists its original bucket bounds win — the key is
    /// `name{labels}`, not the layout.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`], or via [`Histogram::new`] on an invalid
    /// bucket layout.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.intern_with(
            name,
            help,
            labels,
            Kind::Histogram,
            || Instrument::Histogram(Arc::new(Histogram::new(bounds))),
            |instrument| match instrument {
                Instrument::Histogram(h) => Arc::clone(h),
                _ => panic!("series {name} is registered as a non-histogram instrument"),
            },
        )
    }

    /// Registers (or **replaces**) a polled counter series: `poll` is
    /// evaluated at render time and must be monotone non-decreasing for
    /// the series to behave as a counter.
    ///
    /// # Panics
    ///
    /// On invalid names or a family-kind conflict.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        poll: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.insert_polled(name, help, labels, Kind::Counter, Box::new(poll));
    }

    /// Registers (or **replaces**) a polled gauge series.
    ///
    /// # Panics
    ///
    /// On invalid names or a family-kind conflict.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        poll: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.insert_polled(name, help, labels, Kind::Gauge, Box::new(poll));
    }

    fn insert_polled(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        poll: Box<dyn Fn() -> f64 + Send + Sync>,
    ) {
        validate_names(name, labels);
        let key = render_labels(labels);
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family {name} is registered as a {}, not a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family.series.insert(key, Instrument::Polled(poll));
    }

    /// Get-or-create of a shared-instrument series; `make` builds the
    /// instrument only when the series is new, and `read` extracts the
    /// caller's `Arc` clone inside the critical section.
    fn intern_with<R>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Instrument,
        read: impl FnOnce(&Instrument) -> R,
    ) -> R {
        validate_names(name, labels);
        let key = render_labels(labels);
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family {name} is registered as a {}, not a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let instrument = family.series.entry(key).or_insert_with(make);
        read(instrument)
    }

    /// Renders every family in the Prometheus text exposition format,
    /// deterministically ordered.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock");
        let mut out = String::with_capacity(1024);
        for (name, family) in families.iter() {
            writeln!(out, "# HELP {name} {}", escape_help(&family.help))
                .expect("writing to a String cannot fail");
            writeln!(out, "# TYPE {name} {}", family.kind.as_str())
                .expect("writing to a String cannot fail");
            for (labels, instrument) in &family.series {
                render_series(&mut out, name, labels, instrument);
            }
        }
        out
    }
}

fn render_series(out: &mut String, name: &str, labels: &str, instrument: &Instrument) {
    match instrument {
        Instrument::Counter(c) => {
            writeln!(out, "{name}{labels} {}", c.get()).expect("writing to a String cannot fail");
        }
        Instrument::Gauge(g) => {
            writeln!(out, "{name}{labels} {}", g.get()).expect("writing to a String cannot fail");
        }
        Instrument::Polled(poll) => {
            writeln!(out, "{name}{labels} {}", format_f64(poll()))
                .expect("writing to a String cannot fail");
        }
        Instrument::Histogram(h) => {
            let snap = h.snapshot();
            for (bound, cumulative) in &snap.cumulative {
                let le = if bound.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format_f64(*bound)
                };
                let with_le = splice_label(labels, &format!("le=\"{le}\""));
                writeln!(out, "{name}_bucket{with_le} {cumulative}")
                    .expect("writing to a String cannot fail");
            }
            writeln!(out, "{name}_sum{labels} {}", format_f64(snap.sum))
                .expect("writing to a String cannot fail");
            writeln!(out, "{name}_count{labels} {}", snap.count)
                .expect("writing to a String cannot fail");
        }
    }
}

/// Appends `extra` to a rendered label block (`""` or `{...}`).
fn splice_label(labels: &str, extra: &str) -> String {
    match labels.strip_suffix('}') {
        Some(open) => format!("{open},{extra}}}"),
        None => format!("{{{extra}}}"),
    }
}

/// Renders a label set as `{a="b",c="d"}` (empty string for no labels),
/// sorted by label name, values escaped.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(h: &str) -> String {
    h.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Shortest-repr float with Prometheus spellings for the specials.
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        v.to_string()
    }
}

fn validate_names(name: &str, labels: &[(&str, &str)]) {
    assert!(valid_metric_name(name), "invalid metric name `{name}`");
    for (key, _) in labels {
        assert!(valid_label_name(key), "invalid label name `{key}`");
        assert!(*key != "le", "label `le` is reserved for histogram buckets");
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_and_idempotent() {
        let registry = Registry::new();
        let a = registry.counter("requests_total", "requests", &[("path", "/metrics")]);
        let b = registry.counter("requests_total", "requests", &[("path", "/metrics")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same series shares one atomic");
        let other = registry.counter("requests_total", "requests", &[("path", "/healthz")]);
        other.inc();
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let registry = Registry::new();
        let a = registry.counter("x_total", "x", &[("a", "1"), ("b", "2")]);
        let b = registry.counter("x_total", "x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_conflicts_are_programming_errors() {
        let registry = Registry::new();
        let _ = registry.counter("x_total", "x", &[]);
        let _ = registry.gauge("x_total", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_names_are_rejected() {
        let _ = Registry::new().counter("2bad", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_is_reserved() {
        let _ = Registry::new().histogram("h", "x", &[("le", "1")], &[1.0]);
    }

    #[test]
    fn polled_series_replace_on_reregistration() {
        let registry = Registry::new();
        registry.gauge_fn("depth", "queue depth", &[], || 1.0);
        registry.gauge_fn("depth", "queue depth", &[], || 7.0);
        assert!(registry.render().contains("depth 7"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        assert!(std::ptr::eq(Registry::global(), Registry::global()));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let registry = Registry::new();
        let h = registry.histogram("lat_seconds", "latency", &[("engine", "live")], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = registry.render();
        assert!(text.contains("lat_seconds_bucket{engine=\"live\",le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{engine=\"live\",le=\"1\"} 2"));
        assert!(text.contains("lat_seconds_bucket{engine=\"live\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_sum{engine=\"live\"} 5.55"));
        assert!(text.contains("lat_seconds_count{engine=\"live\"} 3"));
    }
}
