//! The instruments: counters, gauges, and histograms over atomics.
//!
//! Every instrument is `Sync`, internally lock-free, and cheap enough to
//! sit on a hot forwarding or scoring path: a [`Counter`] increment is
//! one relaxed `fetch_add`, a [`Gauge`] update one relaxed store/add,
//! and a [`Histogram`] observation one relaxed `fetch_add` plus one CAS
//! loop on the running sum. Instruments are shared by `Arc`: the code
//! being instrumented and the [`Registry`](crate::Registry) rendering
//! `/metrics` hold clones of the same atomics, so wiring a component up
//! never adds a layer of locking around its counters.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value (exposition and tests only — see the crate-level
    /// determinism boundary).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level: queue depths, in-flight work, permits
/// in use.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level outright.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Lowers the level by `delta`.
    pub fn sub(&self, delta: i64) {
        self.0.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current level (exposition and tests only).
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A distribution of observed values over fixed upper-bound buckets,
/// Prometheus-style: `bounds` are the finite `le` thresholds and an
/// implicit `+Inf` bucket catches everything beyond the last one.
///
/// Per-bucket counts are stored *non*-cumulatively (one `fetch_add` per
/// observation); the cumulative view Prometheus expects is computed at
/// snapshot time. The running sum is an `f64` accumulated through a CAS
/// loop on its bit pattern — `std` has no atomic float.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

/// A coherent-enough point-in-time view of a [`Histogram`] (individual
/// loads are relaxed; concurrent observers may skew `sum` against
/// `count` by in-flight observations).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Cumulative count per finite bound, in bound order, with the
    /// `(+Inf, total)` bucket appended.
    pub cumulative: Vec<(f64, u64)>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    /// A histogram over the given finite upper bounds.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty, non-finite, or not strictly increasing —
    /// bucket layouts are compile-time decisions, so a bad one is a
    /// programming error, not a runtime condition.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// An exponential bucket layout: `count` bounds starting at `start`,
    /// each `factor` times the previous.
    ///
    /// # Panics
    ///
    /// Via [`Histogram::new`] when the resulting bounds are invalid
    /// (`start <= 0`, `factor <= 1`, or `count == 0`).
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        let mut bounds = Vec::with_capacity(count);
        let mut bound = start;
        for _ in 0..count {
            bounds.push(bound);
            bound *= factor;
        }
        Histogram::new(&bounds)
    }

    /// Records one observation. NaN is counted in the `+Inf` bucket and
    /// excluded from the sum, so a single bad value cannot poison the
    /// whole series.
    pub fn observe(&self, value: f64) {
        let index = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[index].fetch_add(1, Ordering::Relaxed);
        if value.is_nan() {
            return;
        }
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// The finite upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed (non-NaN) values so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The cumulative bucket view exposition renders.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.counts.len());
        let mut running = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            running += count.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            cumulative.push((bound, running));
        }
        HistogramSnapshot {
            cumulative,
            count: running,
            sum: self.sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(12);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_sums() {
        let h = Histogram::new(&[1.0, 5.0, 10.0]);
        for v in [0.5, 0.9, 3.0, 7.0, 100.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(
            snap.cumulative,
            vec![(1.0, 2), (5.0, 3), (10.0, 4), (f64::INFINITY, 5)]
        );
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 111.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_boundary_values_fall_in_the_closed_bucket() {
        let h = Histogram::new(&[1.0]);
        h.observe(1.0); // le="1" is inclusive
        assert_eq!(h.snapshot().cumulative[0].1, 1);
    }

    #[test]
    fn histogram_nan_lands_in_inf_without_poisoning_the_sum() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(0.5);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 0.5);
    }

    #[test]
    fn exponential_layout() {
        let h = Histogram::exponential(0.001, 10.0, 4);
        assert_eq!(h.bounds(), &[0.001, 0.01, 0.1, 1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let h = Arc::new(Histogram::new(&[10.0]));
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(1.0);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.sum(), 8000.0);
        assert_eq!(c.get(), 8000);
    }
}
