//! Process health: liveness, readiness, and a status note.
//!
//! The split follows the usual orchestration contract: **liveness**
//! ("is the process making progress at all?") should flip to false only
//! when the process is wedged beyond recovery, while **readiness** ("can
//! it do useful work right now?") starts false, flips true once startup
//! completes (relays bound, directory built, sweep scheduled), and flips
//! back to false during drain/shutdown so probes stop routing to it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Shared liveness/readiness state served by
/// [`ObsServer`](crate::ObsServer)'s `/healthz` and `/readyz`.
#[derive(Debug)]
pub struct Health {
    live: AtomicBool,
    ready: AtomicBool,
    status: Mutex<String>,
}

impl Default for Health {
    fn default() -> Self {
        Health::new()
    }
}

impl Health {
    /// A fresh process: live, not yet ready, status `"starting"`.
    pub fn new() -> Self {
        Health {
            live: AtomicBool::new(true),
            ready: AtomicBool::new(false),
            status: Mutex::new("starting".to_string()),
        }
    }

    /// Whether the process is making progress.
    pub fn is_live(&self) -> bool {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the process can serve useful work right now.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }

    /// Marks the process wedged; `/healthz` turns 503.
    pub fn set_live(&self, live: bool) {
        self.live.store(live, Ordering::Relaxed);
    }

    /// Flips readiness; `/readyz` follows.
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::Relaxed);
    }

    /// Replaces the free-form status note included in probe bodies
    /// (e.g. `"serving"`, `"draining"`, `"sweep 3/8"`).
    pub fn set_status(&self, status: impl Into<String>) {
        *self.status.lock().expect("health status lock") = status.into();
    }

    /// The current status note.
    pub fn status(&self) -> String {
        self.status.lock().expect("health status lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_live_but_not_ready() {
        let h = Health::new();
        assert!(h.is_live());
        assert!(!h.is_ready());
        assert_eq!(h.status(), "starting");
    }

    #[test]
    fn transitions_are_visible() {
        let h = Health::new();
        h.set_ready(true);
        h.set_status("serving");
        assert!(h.is_ready());
        assert_eq!(h.status(), "serving");
        h.set_ready(false);
        h.set_live(false);
        h.set_status("wedged in traffic phase");
        assert!(!h.is_ready());
        assert!(!h.is_live());
    }
}
