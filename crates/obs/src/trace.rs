//! Deterministic span/event tracing with Chrome-trace export.
//!
//! A [`span`] guard marks a named region of work. Every thread keeps a
//! **span-name stack** and a local event buffer: entering a span pushes
//! its `'static` name, leaving pops it and (when the global sink is
//! enabled) records one complete event with wall-clock `ts`/`dur`.
//! Buffers flush into the process-wide [`TraceSink`] in batches, so the
//! hot path touches no lock until a batch boundary.
//!
//! [`render_chrome_trace`] turns drained events into the Chrome trace
//! event format (the `{"traceEvents":[...]}` JSON array of `"ph":"X"`
//! complete events) that `chrome://tracing` and [Perfetto] load
//! directly.
//!
//! ## Determinism boundary
//!
//! The trace layer is split in two along the workspace's determinism
//! contract:
//!
//! * The **span-name stack** is maintained *unconditionally* — pushes
//!   and pops of `'static` names, no clocks, no allocation beyond the
//!   stack itself. [`current_path`] is therefore deterministic and safe
//!   to embed in error strings that land in seeded artifacts (the live
//!   cell wedge errors do exactly that).
//! * **Event recording** (timestamps, durations, the sink) only happens
//!   while the sink is [enabled](TraceSink::enable), and nothing ever
//!   reads an event to make a decision — traces are write-only, so
//!   seeded outputs are byte-identical with tracing on or off.
//!
//! Timestamps are microseconds since the sink's first use; thread ids
//! are small dense integers assigned on each thread's first span. Both
//! vary run to run — traces are an operator artifact, not a seeded one.
//!
//! [Perfetto]: https://ui.perfetto.dev

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Thread-local buffers hand batches of this size to the sink.
const FLUSH_BATCH: usize = 256;

/// One completed span, ready for Chrome-trace export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (a `'static` literal at the instrumentation site).
    pub name: &'static str,
    /// Category — the subsystem that emitted the span (`"campaign"`,
    /// `"relay"`, ...); Perfetto can filter on it.
    pub cat: &'static str,
    /// Start, in microseconds since the sink's time origin.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Dense per-process thread id (assigned at each thread's first span).
    pub tid: u64,
    /// Logical ids carried by the span (cell index, epoch, ...).
    pub args: Vec<(&'static str, u64)>,
}

/// The process-wide collection point for trace events.
///
/// Disabled by default: spans still maintain the name stack, but record
/// nothing. A sweep that was asked for `--trace-out` enables the sink
/// for its duration, [drains](TraceSink::drain) it at the end, and
/// renders the result with [`render_chrome_trace`].
#[derive(Debug)]
pub struct TraceSink {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
    origin: OnceLock<Instant>,
    next_tid: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A fresh, disabled sink.
    pub fn new() -> Self {
        TraceSink {
            enabled: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            origin: OnceLock::new(),
            next_tid: AtomicU64::new(1),
        }
    }

    /// The process-wide sink every [`span`] records into.
    pub fn global() -> &'static TraceSink {
        static GLOBAL: OnceLock<TraceSink> = OnceLock::new();
        GLOBAL.get_or_init(TraceSink::new)
    }

    /// Starts recording events.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Stops recording; spans keep maintaining the name stack.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Whether spans are currently recording events.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Flushes the calling thread's buffer and takes every event
    /// collected so far. Other threads' unflushed buffers are *not*
    /// visible — instrumented code flushes at natural quiescence points
    /// ([`flush`] at the end of each campaign cell) and on thread exit.
    pub fn drain(&self) -> Vec<TraceEvent> {
        flush();
        std::mem::take(&mut self.events.lock().expect("trace sink lock"))
    }

    /// Microseconds since the sink's (lazily fixed) time origin.
    fn now_us(&self) -> u64 {
        let origin = *self.origin.get_or_init(Instant::now);
        origin.elapsed().as_micros() as u64
    }

    fn submit(&self, batch: &mut Vec<TraceEvent>) {
        if batch.is_empty() {
            return;
        }
        self.events.lock().expect("trace sink lock").append(batch);
    }
}

struct ThreadTrace {
    stack: Vec<&'static str>,
    buffer: Vec<TraceEvent>,
    tid: u64,
}

impl Drop for ThreadTrace {
    fn drop(&mut self) {
        TraceSink::global().submit(&mut self.buffer);
    }
}

thread_local! {
    static THREAD: RefCell<ThreadTrace> = RefCell::new(ThreadTrace {
        stack: Vec::new(),
        buffer: Vec::new(),
        tid: TraceSink::global().next_tid.fetch_add(1, Ordering::Relaxed),
    });
}

/// An active span; completing (dropping) it pops the name stack and —
/// when the sink was enabled at entry — records one [`TraceEvent`].
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    args: Vec<(&'static str, u64)>,
    /// `Some` iff the sink was enabled when the span was entered.
    start_us: Option<u64>,
}

/// Enters a span named `name` in category `cat` on the current thread.
pub fn span(name: &'static str, cat: &'static str) -> Span {
    span_with(name, cat, &[])
}

/// [`span`] carrying logical ids (cell index, epoch, ...) into the
/// exported event's `args`.
pub fn span_with(name: &'static str, cat: &'static str, args: &[(&'static str, u64)]) -> Span {
    let sink = TraceSink::global();
    THREAD.with(|t| t.borrow_mut().stack.push(name));
    let start_us = sink.is_enabled().then(|| sink.now_us());
    Span {
        name,
        cat,
        args: args.to_vec(),
        start_us,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end_us = self.start_us.map(|_| TraceSink::global().now_us());
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            debug_assert_eq!(t.stack.last(), Some(&self.name), "span stack imbalance");
            t.stack.pop();
            if let (Some(start), Some(end)) = (self.start_us, end_us) {
                let tid = t.tid;
                t.buffer.push(TraceEvent {
                    name: self.name,
                    cat: self.cat,
                    ts_us: start,
                    dur_us: end.saturating_sub(start),
                    tid,
                    args: std::mem::take(&mut self.args),
                });
                if t.buffer.len() >= FLUSH_BATCH {
                    TraceSink::global().submit(&mut t.buffer);
                }
            }
        });
    }
}

/// The current thread's span path, innermost last, joined with `/`
/// (empty when no span is open). Deterministic — built from `'static`
/// span names only — so it is safe to embed in seeded artifacts such as
/// per-cell error strings.
pub fn current_path() -> String {
    THREAD.with(|t| t.borrow().stack.join("/"))
}

/// Depth of the current thread's span stack (tests and invariants).
pub fn current_depth() -> usize {
    THREAD.with(|t| t.borrow().stack.len())
}

/// Pushes the calling thread's buffered events into the global sink.
/// Instrumented code calls this at quiescence points (end of a campaign
/// cell) so [`TraceSink::drain`] sees everything.
pub fn flush() {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        TraceSink::global().submit(&mut t.buffer);
    });
}

/// Renders events as Chrome trace event format JSON — the
/// `{"traceEvents":[...]}` shape `chrome://tracing` and Perfetto load.
/// Events are sorted by `(ts, tid, name)` so equal inputs render equal
/// bytes regardless of drain interleaving.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by(|a, b| {
        (a.ts_us, a.tid, a.name)
            .cmp(&(b.ts_us, b.tid, b.name))
            .then_with(|| a.dur_us.cmp(&b.dur_us))
    });
    let mut out = String::with_capacity(64 + 96 * ordered.len());
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in ordered.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            escape_json(e.name),
            escape_json(e.cat),
            e.ts_us,
            e.dur_us,
            e.tid
        )
        .expect("writing to a String cannot fail");
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (key, value)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "\"{}\":{}", escape_json(key), value)
                    .expect("writing to a String cannot fail");
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_keep_the_stack_but_record_nothing() {
        TraceSink::global().disable();
        let before = TraceSink::global().drain().len();
        {
            let _outer = span("outer", "test");
            assert_eq!(current_path(), "outer");
            {
                let _inner = span("inner", "test");
                assert_eq!(current_path(), "outer/inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_path(), "outer");
        }
        assert_eq!(current_path(), "");
        let _ = before;
        assert!(
            TraceSink::global()
                .drain()
                .iter()
                .all(|e| e.cat != "test-disabled"),
            "no events from this test"
        );
    }

    #[test]
    fn enabled_spans_record_complete_events() {
        let sink = TraceSink::global();
        sink.enable();
        {
            let _s = span_with("unit.work", "unit-test", &[("cell", 7)]);
        }
        sink.disable();
        let events = sink.drain();
        let mine: Vec<_> = events.iter().filter(|e| e.cat == "unit-test").collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].name, "unit.work");
        assert_eq!(mine[0].args, vec![("cell", 7)]);
    }

    #[test]
    fn chrome_render_sorts_and_escapes() {
        let events = vec![
            TraceEvent {
                name: "b",
                cat: "t",
                ts_us: 5,
                dur_us: 1,
                tid: 2,
                args: vec![],
            },
            TraceEvent {
                name: "a\"q",
                cat: "t",
                ts_us: 1,
                dur_us: 3,
                tid: 1,
                args: vec![("epoch", 2)],
            },
        ];
        let json = render_chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        let a = json.find("a\\\"q").expect("escaped name present");
        let b = json.find("\"name\":\"b\"").expect("second event present");
        assert!(a < b, "events sort by timestamp");
        assert!(json.contains("\"args\":{\"epoch\":2}"));
    }
}
