//! The operator control plane for long-running sweeps.
//!
//! A [`SweepControl`] is a tiny state machine
//! (`running → paused → running`, `running|paused → draining`,
//! `any → aborted`) shared between an operator surface (the
//! `POST /control/*` routes of [`ObsServer`](crate::ObsServer)) and a
//! worker loop that polls [`SweepControl::checkpoint`] at its own
//! scheduling points.
//!
//! The determinism contract leans on *where* the worker checkpoints:
//! the campaign runner asks only **before** committing to a unit of
//! work (a cell), so pausing merely delays the same deterministic
//! schedule and drain/abort skip whole cells — the bytes of every cell
//! that does run are untouched. Pause blocks the checkpointing thread
//! on a condvar (no spinning); drain and abort wake all paused waiters
//! and turn every subsequent checkpoint into [`Checkpoint::Skip`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Lifecycle of a controlled sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepState {
    /// Scheduling work normally.
    Running,
    /// Checkpoints block until resumed (or drained/aborted).
    Paused,
    /// In-flight work finishes; nothing new is scheduled.
    Draining,
    /// As draining, recorded as an abort.
    Aborted,
}

impl SweepState {
    /// Stable lowercase label (HTTP bodies, tickers, manifests).
    pub fn as_str(self) -> &'static str {
        match self {
            SweepState::Running => "running",
            SweepState::Paused => "paused",
            SweepState::Draining => "draining",
            SweepState::Aborted => "aborted",
        }
    }
}

/// What a worker should do with the unit of work it checkpointed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checkpoint {
    /// Run it.
    Proceed,
    /// Skip it (and everything after): the sweep is draining or aborted.
    Skip,
}

/// Shared pause/resume/drain/abort handle for one sweep.
#[derive(Debug)]
pub struct SweepControl {
    state: Mutex<SweepState>,
    changed: Condvar,
    checkpoints: AtomicU64,
    /// Checkpoint index at which to self-drain; `u64::MAX` = never.
    /// A deterministic test hook: with one worker thread, exactly the
    /// first `k` units of a sweep run, in schedule order.
    drain_after: AtomicU64,
}

impl Default for SweepControl {
    fn default() -> Self {
        SweepControl::new()
    }
}

impl SweepControl {
    /// A control handle in the `Running` state.
    pub fn new() -> Self {
        SweepControl {
            state: Mutex::new(SweepState::Running),
            changed: Condvar::new(),
            checkpoints: AtomicU64::new(0),
            drain_after: AtomicU64::new(u64::MAX),
        }
    }

    /// The current state.
    pub fn state(&self) -> SweepState {
        *self.state.lock().expect("sweep control lock")
    }

    /// How many checkpoints have been taken so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::SeqCst)
    }

    /// Pauses a running sweep (no-op in any other state). Returns the
    /// resulting state.
    pub fn pause(&self) -> SweepState {
        let mut state = self.state.lock().expect("sweep control lock");
        if *state == SweepState::Running {
            *state = SweepState::Paused;
        }
        *state
    }

    /// Resumes a paused sweep (no-op in any other state).
    pub fn resume(&self) -> SweepState {
        let mut state = self.state.lock().expect("sweep control lock");
        if *state == SweepState::Paused {
            *state = SweepState::Running;
            self.changed.notify_all();
        }
        *state
    }

    /// Stops scheduling new work; in-flight work finishes. Wakes paused
    /// checkpoints (they skip). No-op once aborted.
    pub fn drain(&self) -> SweepState {
        let mut state = self.state.lock().expect("sweep control lock");
        if matches!(*state, SweepState::Running | SweepState::Paused) {
            *state = SweepState::Draining;
            self.changed.notify_all();
        }
        *state
    }

    /// As [`drain`](SweepControl::drain), recorded as an abort. Threads
    /// cannot be killed, so in-flight work still completes; only the
    /// recorded outcome differs.
    pub fn abort(&self) -> SweepState {
        let mut state = self.state.lock().expect("sweep control lock");
        *state = SweepState::Aborted;
        self.changed.notify_all();
        *state
    }

    /// Arms the deterministic self-drain hook: the checkpoint with
    /// 0-based index `k` (and every later one) drains the sweep, so
    /// exactly `k` units proceed. Tests use this with one worker thread
    /// to pin drained-output prefixes without timing races.
    pub fn drain_after_checkpoints(&self, k: u64) {
        self.drain_after.store(k, Ordering::SeqCst);
    }

    /// The worker-side poll, called before committing to each unit of
    /// work. Blocks while paused; returns [`Checkpoint::Skip`] once the
    /// sweep is draining or aborted.
    pub fn checkpoint(&self) -> Checkpoint {
        let index = self.checkpoints.fetch_add(1, Ordering::SeqCst);
        if index >= self.drain_after.load(Ordering::SeqCst) {
            self.drain();
        }
        let mut state = self.state.lock().expect("sweep control lock");
        while *state == SweepState::Paused {
            state = self.changed.wait(state).expect("sweep control lock");
        }
        match *state {
            SweepState::Running => Checkpoint::Proceed,
            SweepState::Paused => unreachable!("the wait loop holds until unpaused"),
            SweepState::Draining | SweepState::Aborted => Checkpoint::Skip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lifecycle_transitions() {
        let c = SweepControl::new();
        assert_eq!(c.state(), SweepState::Running);
        assert_eq!(
            c.resume(),
            SweepState::Running,
            "resume while running: no-op"
        );
        assert_eq!(c.pause(), SweepState::Paused);
        assert_eq!(c.pause(), SweepState::Paused, "pause is idempotent");
        assert_eq!(c.resume(), SweepState::Running);
        assert_eq!(c.drain(), SweepState::Draining);
        assert_eq!(c.pause(), SweepState::Draining, "draining cannot pause");
        assert_eq!(c.abort(), SweepState::Aborted);
        assert_eq!(c.drain(), SweepState::Aborted, "aborted is terminal");
    }

    #[test]
    fn checkpoints_proceed_until_drained() {
        let c = SweepControl::new();
        assert_eq!(c.checkpoint(), Checkpoint::Proceed);
        c.drain();
        assert_eq!(c.checkpoint(), Checkpoint::Skip);
        assert_eq!(c.checkpoints(), 2);
    }

    #[test]
    fn drain_after_k_lets_exactly_k_proceed() {
        let c = SweepControl::new();
        c.drain_after_checkpoints(3);
        let verdicts: Vec<Checkpoint> = (0..5).map(|_| c.checkpoint()).collect();
        assert_eq!(
            verdicts,
            vec![
                Checkpoint::Proceed,
                Checkpoint::Proceed,
                Checkpoint::Proceed,
                Checkpoint::Skip,
                Checkpoint::Skip
            ]
        );
        assert_eq!(c.state(), SweepState::Draining);
    }

    #[test]
    fn pause_blocks_checkpoints_until_resume() {
        let c = Arc::new(SweepControl::new());
        c.pause();
        let worker = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.checkpoint())
        };
        // the worker is (very probably) parked on the condvar by now
        std::thread::sleep(Duration::from_millis(50));
        assert!(!worker.is_finished(), "checkpoint must block while paused");
        c.resume();
        assert_eq!(worker.join().expect("worker"), Checkpoint::Proceed);
    }

    #[test]
    fn drain_wakes_paused_checkpoints_into_skip() {
        let c = Arc::new(SweepControl::new());
        c.pause();
        let worker = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.checkpoint())
        };
        std::thread::sleep(Duration::from_millis(20));
        c.drain();
        assert_eq!(worker.join().expect("worker"), Checkpoint::Skip);
    }
}
