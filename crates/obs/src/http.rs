//! A tiny hand-rolled HTTP/1.1 server for the observability surface.
//!
//! [`ObsServer`] binds a listener, answers `GET /metrics` (rendered from
//! a shared [`Registry`]), `GET /healthz`, and `GET /readyz` (from a
//! shared [`Health`]) — plus, when a [`SweepControl`] handle is
//! attached, the operator control plane: `POST /control/pause`,
//! `/control/resume`, `/control/drain`, and `/control/abort`, each
//! answering the sweep's resulting state. It is deliberately minimal:
//! thread-per-connection, `Connection: close` on every response, a read
//! timeout so a stalled scraper cannot pin a handler thread, and the
//! same shutdown discipline as the relay daemon — an atomic flag plus a
//! self-connect to wake the accept loop, then a bounded join.
//!
//! This is an operator endpoint for `curl` and Prometheus scrapers, not
//! a general web server: no keep-alive, no TLS, no request bodies.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::control::SweepControl;
use crate::health::Health;
use crate::registry::Registry;

/// How long a handler waits for a request line before hanging up.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A running observability endpoint; shuts down when dropped.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (port 0 picks a free port — see [`ObsServer::addr`])
    /// and starts serving `/metrics`, `/healthz`, and `/readyz` from the
    /// shared registry and health state. `POST /control/*` answers 404
    /// (read-only endpoint); use [`ObsServer::serve_with_control`] to
    /// attach a control plane.
    pub fn serve(
        addr: impl ToSocketAddrs,
        registry: &'static Registry,
        health: Arc<Health>,
    ) -> io::Result<ObsServer> {
        ObsServer::serve_with_control(addr, registry, health, None)
    }

    /// [`ObsServer::serve`] with an optional [`SweepControl`] handle;
    /// when present, `POST /control/{pause,resume,drain,abort}` drive
    /// it and answer the resulting state.
    pub fn serve_with_control(
        addr: impl ToSocketAddrs,
        registry: &'static Registry,
        health: Arc<Health>,
        control: Option<Arc<SweepControl>>,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_loop = std::thread::Builder::new()
            .name("obs-accept".to_string())
            .spawn(move || accept_loop(listener, accept_stop, registry, health, control))?;
        Ok(ObsServer {
            addr,
            stop,
            accept_loop: Some(accept_loop),
        })
    }

    /// The bound address — the real port when `serve` was given port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; if the
        // connect fails the listener is already gone, which is fine.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_loop.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    registry: &'static Registry,
    health: Arc<Health>,
    control: Option<Arc<SweepControl>>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let health = Arc::clone(&health);
        let control = control.clone();
        // Handlers are detached: each is bounded by READ_TIMEOUT plus one
        // response write, so none outlives shutdown by more than that.
        let _ = std::thread::Builder::new()
            .name("obs-conn".to_string())
            .spawn(move || handle_connection(stream, registry, &health, control.as_deref()));
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    health: &Health,
    control: Option<&SweepControl>,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let peer = stream.peer_addr();
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() || request_line.is_empty() {
        return;
    }
    // We answer from the request line alone; drain headers best-effort so
    // well-behaved clients see a clean close.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path, registry, health, control);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(response.as_bytes()).is_err() {
        // The scraper hung up mid-response; nothing to do.
        let _ = peer;
    }
}

fn route(
    method: &str,
    path: &str,
    registry: &Registry,
    health: &Health,
    control: Option<&SweepControl>,
) -> (&'static str, &'static str, String) {
    if method == "POST" {
        if let Some(action) = path.strip_prefix("/control/") {
            return control_route(action, control);
        }
    }
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render(),
        ),
        "/healthz" => probe(health.is_live(), "live", health),
        "/readyz" => probe(health.is_ready(), "ready", health),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}

/// Handles `POST /control/<action>`. Without an attached handle the
/// control plane does not exist: 404, matching any other unknown path.
fn control_route(
    action: &str,
    control: Option<&SweepControl>,
) -> (&'static str, &'static str, String) {
    let Some(control) = control else {
        return (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "no sweep control attached\n".to_string(),
        );
    };
    let state = match action {
        "pause" => control.pause(),
        "resume" => control.resume(),
        "drain" => control.drain(),
        "abort" => control.abort(),
        _ => {
            return (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown control action\n".to_string(),
            )
        }
    };
    (
        "200 OK",
        "text/plain; charset=utf-8",
        format!("{}\n", state.as_str()),
    )
}

fn probe(ok: bool, what: &str, health: &Health) -> (&'static str, &'static str, String) {
    let status = if ok {
        "200 OK"
    } else {
        "503 Service Unavailable"
    };
    let verdict = if ok { "ok" } else { "unavailable" };
    (
        status,
        "text/plain; charset=utf-8",
        format!("{verdict}: {what} ({})\n", health.status()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::sync::OnceLock;

    fn test_registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let r = Registry::new();
            r.counter("obs_test_requests_total", "test counter", &[])
                .add(42);
            r
        })
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn serves_metrics_health_and_ready() {
        let health = Arc::new(Health::new());
        let mut server = ObsServer::serve("127.0.0.1:0", test_registry(), Arc::clone(&health))
            .expect("bind obs server");
        let addr = server.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("obs_test_requests_total 42"));

        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200 OK"));
        assert!(get(addr, "/readyz").starts_with("HTTP/1.1 503"));
        health.set_ready(true);
        health.set_status("serving");
        let ready = get(addr, "/readyz");
        assert!(ready.starts_with("HTTP/1.1 200 OK"));
        assert!(ready.contains("serving"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        server.shutdown();
        assert!(TcpStream::connect(addr).is_err() || get_fails(addr));
    }

    // After shutdown the port may still accept (TIME_WAIT races on some
    // platforms) but nothing answers; either outcome proves the loop died.
    fn get_fails(addr: SocketAddr) -> bool {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return true;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
        let mut buf = String::new();
        stream.read_to_string(&mut buf).is_err() || buf.is_empty()
    }

    #[test]
    fn rejects_non_get() {
        let health = Arc::new(Health::new());
        let server = ObsServer::serve("127.0.0.1:0", test_registry(), health).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 405"));
    }

    fn post(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn control_routes_drive_the_sweep_handle() {
        use crate::control::{SweepControl, SweepState};
        let health = Arc::new(Health::new());
        let control = Arc::new(SweepControl::new());
        let server = ObsServer::serve_with_control(
            "127.0.0.1:0",
            test_registry(),
            health,
            Some(Arc::clone(&control)),
        )
        .expect("bind");
        let addr = server.addr();

        let paused = post(addr, "/control/pause");
        assert!(paused.starts_with("HTTP/1.1 200 OK"), "{paused}");
        assert!(paused.ends_with("paused\n"));
        assert_eq!(control.state(), SweepState::Paused);

        assert!(post(addr, "/control/resume").ends_with("running\n"));
        assert_eq!(control.state(), SweepState::Running);

        assert!(post(addr, "/control/nope").starts_with("HTTP/1.1 404"));
        // GET on a control path is not a control action
        assert!(get(addr, "/control/pause").starts_with("HTTP/1.1 404"));

        assert!(post(addr, "/control/drain").ends_with("draining\n"));
        assert!(post(addr, "/control/abort").ends_with("aborted\n"));
        assert_eq!(control.state(), SweepState::Aborted);
    }

    #[test]
    fn control_routes_without_a_handle_are_absent() {
        let health = Arc::new(Health::new());
        let server = ObsServer::serve("127.0.0.1:0", test_registry(), health).expect("bind");
        let response = post(server.addr(), "/control/pause");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    }
}
