//! # anonroute-obs
//!
//! Observability for long-running anonroute processes — relay daemons
//! and multi-minute campaign sweeps — built entirely on `std` (atomics,
//! `std::net`, threads; the workspace's vendored-deps constraint rules
//! out tokio/hyper/prometheus crates):
//!
//! * [`metrics`] — lock-cheap instruments: [`Counter`] and [`Gauge`]
//!   over single atomics, [`Histogram`] over an atomic bucket array with
//!   a CAS-accumulated sum;
//! * [`registry`] — a labeled [`Registry`] of named metric families with
//!   deterministic Prometheus-style text exposition (stable family and
//!   series ordering, label escaping);
//! * [`health`] — process [`Health`]: liveness, readiness, and a
//!   free-form status note for probe bodies;
//! * [`http`] — [`ObsServer`], a tiny hand-rolled HTTP/1.1 server
//!   exposing `GET /metrics`, `/healthz`, and `/readyz` on a
//!   thread-per-connection accept loop with bounded shutdown — plus the
//!   `POST /control/*` operator routes when a control handle is
//!   attached;
//! * [`control`] — [`SweepControl`], the pause/resume/drain/abort state
//!   machine a sweep polls at its deterministic scheduling points;
//! * [`trace`] — deterministic span tracing ([`span`] guards over
//!   thread-local stacks and buffers, a process-wide [`TraceSink`]) with
//!   Chrome-trace/Perfetto JSON export.
//!
//! ## Determinism boundary
//!
//! Metrics and traces are **write-only sinks**: evaluation code may
//! increment counters, set gauges, observe histograms, and emit spans,
//! but must never *read* one to make a decision. The workspace's seeded
//! evaluation pipeline (campaign cells, cluster runs, adversary
//! scoring) promises byte-identical artifacts per seed with
//! observability on or off — pinned by the campaign golden-file tests —
//! and that contract holds exactly because nothing numeric ever flows
//! back out of this crate into an evaluator. Instrument reads
//! ([`Counter::get`] and friends) exist for exposition and tests only.
//! The two deliberate, still-deterministic exceptions are
//! [`trace::current_path`] (built purely from `'static` span names) and
//! [`SweepControl::checkpoint`], which only ever delays or skips whole
//! units of work at scheduling boundaries — see their module docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod health;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use control::{Checkpoint, SweepControl, SweepState};
pub use health::Health;
pub use http::ObsServer;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use trace::{render_chrome_trace, span, span_with, Span, TraceEvent, TraceSink};
