//! Acceptance: a sweep with several live cells in `--shared` mode boots
//! the relay network exactly once (asserted via the process-wide
//! `anonroute_cluster_boots_total` counter), and every cell still agrees
//! with the closed-form engine.
//!
//! This lives in its own integration-test binary on purpose: the boot
//! counter is process-global, so sharing a process with other live-cell
//! tests would make the delta meaningless.

use anonroute_campaign::grid::{EngineKind, ScenarioGrid, StrategySpec};
use anonroute_campaign::runner::{run, CampaignConfig};
use anonroute_core::{engine, SystemModel};
use anonroute_relay::ClusterMetrics;

#[test]
fn shared_sweep_boots_the_cluster_exactly_once() {
    // 4 ns × 1 strategy = 4 live cells of different sub-network sizes
    let grid = ScenarioGrid::new()
        .ns([5, 6, 7, 8])
        .cs([1])
        .strategies([StrategySpec::Uniform(1, 3)])
        .engines([EngineKind::Live]);
    assert_eq!(grid.len(), 4, "the acceptance sweep needs >= 4 live cells");
    let config = CampaignConfig {
        live_messages: 120,
        live_shared: true,
        ..CampaignConfig::default()
    };

    let boots_before = ClusterMetrics::global().boots.get();
    let outcome = run(&grid, &config);
    let boots_after = ClusterMetrics::global().boots.get();

    assert_eq!(
        boots_after - boots_before,
        1,
        "a shared sweep boots one network for all {} live cells",
        outcome.cells.len()
    );
    assert_eq!(outcome.error_count(), 0, "{:?}", outcome.cells);

    // measured anonymity still tracks the closed form per cell
    for cell in &outcome.cells {
        let model = SystemModel::new(cell.scenario.n, cell.scenario.c).unwrap();
        let dist = cell.scenario.strategy.realize(&model).unwrap();
        let exact = engine::anonymity_degree(&model, &dist).unwrap();
        let metrics = cell.outcome.as_ref().unwrap();
        let est = metrics.sampled().expect("live cells are sampled");
        assert!(
            est.agrees_with(exact, 5.0),
            "{}: live {est} vs exact {exact}",
            cell.scenario
        );
        assert_eq!(metrics.profile.boot_us, 0, "shared cells amortize the boot");
    }

    // the same grid without --shared boots one cluster per cell
    let per_cell = CampaignConfig {
        live_messages: 120,
        ..CampaignConfig::default()
    };
    let before = ClusterMetrics::global().boots.get();
    let fresh = run(&grid, &per_cell);
    let after = ClusterMetrics::global().boots.get();
    assert_eq!(after - before, 4, "default mode boots per cell");
    assert_eq!(fresh.error_count(), 0);
}
