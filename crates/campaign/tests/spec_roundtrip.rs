//! Property tests: `Display` ↔ `parse` round-trips for the whole
//! scenario vocabulary — strategy specs, engine kinds, and full
//! scenarios — over generated inputs rather than hand-picked cases.

use anonroute_campaign::{EngineKind, Scenario, StrategySpec};
use anonroute_core::PathKind;
use proptest::prelude::*;

/// Generates an arbitrary strategy spec from generated raw parameters.
/// Probabilities come in thousandths so their `Display` text is short
/// but still exercises fractional forms.
fn build_strategy(family: usize, a: usize, b: usize, millis: usize) -> StrategySpec {
    let p = millis as f64 / 1000.0;
    match family % 5 {
        0 => StrategySpec::Fixed(a),
        1 => StrategySpec::Uniform(a.min(b), a.max(b)),
        2 => StrategySpec::TwoPoint { lo: a, p, hi: b },
        3 => StrategySpec::Geometric {
            forward_prob: (p * 0.999).min(0.999),
            lmax: b.max(1),
        },
        _ => StrategySpec::Optimal {
            mean: if millis.is_multiple_of(2) {
                None
            } else {
                Some(a as f64 + p)
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn strategy_display_parse_round_trips(
        family in 0usize..5,
        a in 0usize..200,
        b in 0usize..200,
        millis in 0usize..1000,
    ) {
        let spec = build_strategy(family, a, b, millis);
        let text = spec.to_string();
        let parsed = StrategySpec::parse(&text);
        prop_assert!(parsed.is_ok(), "`{}` failed to parse", text);
        prop_assert_eq!(parsed.unwrap(), spec);
    }

    #[test]
    fn engine_display_parse_round_trips(index in 0usize..4) {
        let kind = EngineKind::ALL[index];
        prop_assert_eq!(EngineKind::parse(&kind.to_string()).unwrap(), kind);
    }

    #[test]
    fn scenario_display_parse_round_trips(
        n in 1usize..5000,
        c in 0usize..100,
        cyclic in any::<bool>(),
        engine in 0usize..4,
        family in 0usize..5,
        a in 0usize..200,
        b in 0usize..200,
        millis in 0usize..1000,
    ) {
        let scenario = Scenario {
            n,
            c,
            path_kind: if cyclic { PathKind::Cyclic } else { PathKind::Simple },
            strategy: build_strategy(family, a, b, millis),
            engine: EngineKind::ALL[engine],
        };
        let text = scenario.to_string();
        let parsed = Scenario::parse(&text);
        prop_assert!(parsed.is_ok(), "`{}` failed to parse", text);
        prop_assert_eq!(parsed.unwrap(), scenario);
    }

    #[test]
    fn junk_never_round_trips_silently(
        head in 0usize..4,
        n in 0usize..50,
    ) {
        // malformed scenario text must error, not mis-parse: drop a
        // required field or scramble the bracketed engine
        let bad = match head {
            0 => format!("n={n} c=1 simple fixed:1"),
            1 => format!("c=1 n={n} simple fixed:1 [exact]"),
            2 => format!("n={n} c=1 spiral fixed:1 [exact]"),
            _ => format!("n={n} c=1 simple fixed:1 exact"),
        };
        prop_assert!(Scenario::parse(&bad).is_err(), "`{}` parsed", bad);
    }
}
