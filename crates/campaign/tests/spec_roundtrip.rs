//! Property tests: `Display` ↔ `parse` round-trips for the whole
//! scenario vocabulary — strategy specs, engine kinds, and full
//! scenarios — over generated inputs rather than hand-picked cases.

use anonroute_campaign::{
    ChurnModel, EngineKind, EpochSchedule, RotationPolicy, Scenario, StrategySpec,
};
use anonroute_core::PathKind;
use proptest::prelude::*;

/// Generates an arbitrary epoch schedule from raw parameters; index 0
/// yields the one-shot default so the legacy five-token form stays
/// covered.
fn build_dynamics(variant: usize, epochs: usize, step: usize, millis: usize) -> EpochSchedule {
    let rotation = match variant % 3 {
        0 => RotationPolicy::Static,
        1 => RotationPolicy::Shift { step },
        _ => RotationPolicy::Resample,
    };
    let churn = if variant.is_multiple_of(2) {
        ChurnModel::None
    } else {
        ChurnModel::Iid {
            rate: millis as f64 / 1001.0,
        }
    };
    if variant == 0 {
        EpochSchedule::one_shot()
    } else {
        EpochSchedule {
            epochs: epochs.max(1),
            rotation,
            churn,
        }
    }
}

/// Generates an arbitrary strategy spec from generated raw parameters.
/// Probabilities come in thousandths so their `Display` text is short
/// but still exercises fractional forms.
fn build_strategy(family: usize, a: usize, b: usize, millis: usize) -> StrategySpec {
    let p = millis as f64 / 1000.0;
    match family % 5 {
        0 => StrategySpec::Fixed(a),
        1 => StrategySpec::Uniform(a.min(b), a.max(b)),
        2 => StrategySpec::TwoPoint { lo: a, p, hi: b },
        3 => StrategySpec::Geometric {
            forward_prob: (p * 0.999).min(0.999),
            lmax: b.max(1),
        },
        _ => StrategySpec::Optimal {
            mean: if millis.is_multiple_of(2) {
                None
            } else {
                Some(a as f64 + p)
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn strategy_display_parse_round_trips(
        family in 0usize..5,
        a in 0usize..200,
        b in 0usize..200,
        millis in 0usize..1000,
    ) {
        let spec = build_strategy(family, a, b, millis);
        let text = spec.to_string();
        let parsed = StrategySpec::parse(&text);
        prop_assert!(parsed.is_ok(), "`{}` failed to parse", text);
        prop_assert_eq!(parsed.unwrap(), spec);
    }

    #[test]
    fn engine_display_parse_round_trips(index in 0usize..4) {
        let kind = EngineKind::ALL[index];
        prop_assert_eq!(EngineKind::parse(&kind.to_string()).unwrap(), kind);
    }

    #[test]
    fn scenario_display_parse_round_trips(
        n in 1usize..5000,
        c in 0usize..100,
        cyclic in any::<bool>(),
        engine in 0usize..4,
        family in 0usize..5,
        a in 0usize..200,
        b in 0usize..200,
        millis in 0usize..1000,
        dyn_variant in 0usize..12,
        epochs in 1usize..40,
        step in 0usize..10,
    ) {
        let scenario = Scenario {
            n,
            c,
            path_kind: if cyclic { PathKind::Cyclic } else { PathKind::Simple },
            strategy: build_strategy(family, a, b, millis),
            dynamics: build_dynamics(dyn_variant, epochs, step, millis),
            engine: EngineKind::ALL[engine],
        };
        let text = scenario.to_string();
        let parsed = Scenario::parse(&text);
        prop_assert!(parsed.is_ok(), "`{}` failed to parse", text);
        prop_assert_eq!(parsed.unwrap(), scenario);
    }

    #[test]
    fn dynamics_display_parse_round_trips(
        variant in 0usize..12,
        epochs in 1usize..100,
        step in 0usize..20,
        millis in 0usize..1000,
    ) {
        let schedule = build_dynamics(variant, epochs, step, millis);
        let text = schedule.to_string();
        let parsed = EpochSchedule::parse(&text);
        prop_assert!(parsed.is_ok(), "`{}` failed to parse", text);
        prop_assert_eq!(parsed.unwrap(), schedule);
    }

    #[test]
    fn junk_never_round_trips_silently(
        head in 0usize..4,
        n in 0usize..50,
    ) {
        // malformed scenario text must error, not mis-parse: drop a
        // required field or scramble the bracketed engine
        let bad = match head {
            0 => format!("n={n} c=1 simple fixed:1"),
            1 => format!("c=1 n={n} simple fixed:1 [exact]"),
            2 => format!("n={n} c=1 spiral fixed:1 [exact]"),
            _ => format!("n={n} c=1 simple fixed:1 exact"),
        };
        prop_assert!(Scenario::parse(&bad).is_err(), "`{}` parsed", bad);
    }
}
