//! Integration tests for the operator control plane and the trace
//! export: pause/resume and drain must never perturb per-seed output
//! bytes, drain must yield a clean prefix of the uninterrupted sweep,
//! and tracing must be write-only.

use std::sync::Arc;
use std::time::Duration;

use anonroute_campaign::{
    manifest, report, run, run_controlled, CampaignConfig, EngineKind, ScenarioGrid, StrategySpec,
    SweepControl, SweepState, SweepStatus,
};

/// A small all-exact grid: fast, fully deterministic, eight cells.
fn grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .ns([10, 15])
        .cs([1, 2])
        .strategies([StrategySpec::Fixed(3), StrategySpec::Uniform(1, 4)])
        .engines([EngineKind::Exact])
}

fn serial_config() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        ..Default::default()
    }
}

#[test]
fn pause_then_resume_yields_byte_identical_jsonl() {
    let baseline = run(&grid(), &serial_config());
    let control = Arc::new(SweepControl::new());
    // pause before the sweep starts: the first checkpoint blocks until
    // the resume below, so the pause path is exercised deterministically
    control.pause();
    let resumer = {
        let control = Arc::clone(&control);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(control.state(), SweepState::Paused);
            control.resume();
        })
    };
    let outcome = run_controlled(&grid(), &serial_config(), &control);
    resumer.join().expect("resumer thread");
    assert_eq!(outcome.status, SweepStatus::Completed);
    assert_eq!(outcome.skipped, 0);
    assert_eq!(
        report::render_jsonl(&outcome, false),
        report::render_jsonl(&baseline, false),
        "pause/resume must not perturb output bytes"
    );
}

#[test]
fn drained_sweeps_emit_a_clean_prefix_and_a_valid_manifest() {
    let full = run(&grid(), &serial_config());
    let full_jsonl = report::render_jsonl(&full, false);
    let k = 3;
    let control = Arc::new(SweepControl::new());
    control.drain_after_checkpoints(k);
    let outcome = run_controlled(&grid(), &serial_config(), &control);
    assert_eq!(outcome.status, SweepStatus::Drained);
    assert_eq!(outcome.cells.len(), k as usize);
    assert_eq!(outcome.skipped, grid().len() - k as usize);
    // at threads = 1 cells run in index order, so the drained artifact
    // is exactly the first k lines of the uninterrupted run
    let prefix: String = full_jsonl
        .lines()
        .take(k as usize)
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(report::render_jsonl(&outcome, false), prefix);
    let text = manifest::render_manifest(&grid(), &serial_config(), &outcome);
    manifest::validate_manifest(&text).expect("drained manifest validates");
    assert!(text.contains("\"status\": \"drained\""));
    assert!(text.contains("\"skipped\": 5"));
}

#[test]
fn aborted_sweeps_skip_every_remaining_cell() {
    let control = Arc::new(SweepControl::new());
    control.abort();
    let outcome = run_controlled(&grid(), &serial_config(), &control);
    assert_eq!(outcome.status, SweepStatus::Aborted);
    assert!(outcome.cells.is_empty());
    assert_eq!(outcome.skipped, grid().len());
    let text = manifest::render_manifest(&grid(), &serial_config(), &outcome);
    manifest::validate_manifest(&text).expect("aborted manifest validates");
    assert!(text.contains("\"status\": \"aborted\""));
}

#[test]
fn tracing_never_changes_result_bytes_and_exports_cell_spans() {
    let dir = std::env::temp_dir().join("anonroute-campaign-control-trace-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let plain = run(&grid(), &serial_config());
    let trace_path = dir.join("trace.json");
    let traced = run(
        &grid(),
        &CampaignConfig {
            threads: 1,
            trace_out: Some(trace_path.clone()),
            ..Default::default()
        },
    );
    assert_eq!(
        report::render_jsonl(&traced, false),
        report::render_jsonl(&plain, false),
        "tracing is write-only: result bytes must not change"
    );
    assert_eq!(report::render_csv(&traced), report::render_csv(&plain));
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"name\":\"campaign.sweep\""));
    assert!(trace.contains("\"name\":\"campaign.cell\""));
    assert!(trace.contains("\"name\":\"cell.evaluate\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profiles_land_in_timing_gated_artifacts_only() {
    let outcome = run(&grid(), &serial_config());
    let plain = report::render_jsonl(&outcome, false);
    assert!(
        !plain.contains("\"profile\""),
        "untimed JSONL stays diffable"
    );
    let timed = report::render_jsonl(&outcome, true);
    let first = timed.lines().next().unwrap();
    assert!(
        first.contains("\"profile\":{\"setup_us\":"),
        "timed JSONL carries the phase profile: {first}"
    );
    assert!(first.contains("\"evaluate_us\":"));
}
