//! Cross-thread-count determinism and golden-value tests for the
//! campaign runner — the contract that makes parallel sweeps trustworthy.

use anonroute_campaign::{report, run, CampaignConfig, EngineKind, ScenarioGrid, StrategySpec};
use anonroute_core::PathKind;

/// A mixed grid touching every engine and both path kinds.
fn mixed_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .ns([15, 25])
        .cs([1, 2])
        .path_kinds([PathKind::Simple, PathKind::Cyclic])
        .strategies([
            StrategySpec::Fixed(3),
            StrategySpec::Uniform(1, 5),
            StrategySpec::Geometric {
                forward_prob: 0.6,
                lmax: 10,
            },
        ])
        .engines([EngineKind::Exact, EngineKind::MonteCarlo])
}

#[test]
fn one_thread_and_many_threads_yield_identical_jsonl() {
    let grid = mixed_grid();
    let serial = run(
        &grid,
        &CampaignConfig {
            threads: 1,
            mc_samples: 2_000,
            ..Default::default()
        },
    );
    let parallel = run(
        &grid,
        &CampaignConfig {
            threads: 8,
            mc_samples: 2_000,
            ..Default::default()
        },
    );
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 8);
    let a = report::render_jsonl(&serial, false);
    let b = report::render_jsonl(&parallel, false);
    assert_eq!(a, b, "JSONL must be byte-identical across thread counts");
    // the shared memoization layer is exercised identically too: misses
    // count distinct (n, c, path_kind, lmax) evaluators whatever the
    // interleaving (racing duplicate builds count as hits by contract)
    assert_eq!(serial.cache, parallel.cache);
    assert_eq!(serial.cache.misses, 4, "one build per simple (n, c) model");
    assert_eq!(serial.cache.hits, 8, "the other simple exact cells reuse");
    let summary = report::summary(&parallel);
    assert!(
        summary.contains("evaluator cache: 4 built, 8 reused"),
        "summary must surface cache reuse: {summary}"
    );
    // ... and the same holds for sorted lines, the acceptance criterion's form
    let mut sa: Vec<&str> = a.lines().collect();
    let mut sb: Vec<&str> = b.lines().collect();
    sa.sort_unstable();
    sb.sort_unstable();
    assert_eq!(sa, sb);
    assert_eq!(report::render_csv(&serial), report::render_csv(&parallel));
}

#[test]
fn simulated_engine_is_deterministic_across_thread_counts() {
    let grid = ScenarioGrid::new()
        .ns([12])
        .cs([1])
        .strategies([StrategySpec::Uniform(1, 4), StrategySpec::Fixed(2)])
        .engines([EngineKind::Simulated]);
    let config1 = CampaignConfig {
        threads: 1,
        sim_messages: 400,
        ..Default::default()
    };
    let config4 = CampaignConfig {
        threads: 4,
        sim_messages: 400,
        ..Default::default()
    };
    let a = report::render_jsonl(&run(&grid, &config1), false);
    let b = report::render_jsonl(&run(&grid, &config4), false);
    assert_eq!(a, b);
}

#[test]
fn reruns_with_the_same_seed_are_bit_identical() {
    let grid = mixed_grid();
    let config = CampaignConfig {
        threads: 4,
        mc_samples: 2_000,
        seed: 123,
        ..Default::default()
    };
    let a = report::render_jsonl(&run(&grid, &config), false);
    let b = report::render_jsonl(&run(&grid, &config), false);
    assert_eq!(a, b);
}

#[test]
fn different_campaign_seeds_change_sampling_cells_only() {
    let grid = mixed_grid();
    let a = run(
        &grid,
        &CampaignConfig {
            seed: 1,
            mc_samples: 2_000,
            ..Default::default()
        },
    );
    let b = run(
        &grid,
        &CampaignConfig {
            seed: 2,
            mc_samples: 2_000,
            ..Default::default()
        },
    );
    let mut saw_mc_difference = false;
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        let (Ok(ma), Ok(mb)) = (&ca.outcome, &cb.outcome) else {
            continue;
        };
        match ca.scenario.engine {
            EngineKind::Exact => {
                assert_eq!(ma.h_star, mb.h_star, "exact cells must be seed-independent");
            }
            _ => saw_mc_difference |= ma.h_star != mb.h_star,
        }
    }
    assert!(
        saw_mc_difference,
        "sampling cells should respond to the seed"
    );
}

/// Golden test: the fig3(b)-equivalent campaign reproduces the paper's
/// short-path anchors at `n = 100`, `c = 1` (engine docs /
/// `engine::anonymity_degree`): `H*(F(1)) == H*(F(2)) ≈ 6.4824`,
/// `F(3)` slightly worse, `F(4)` strictly better.
#[test]
fn golden_fig3b_anchors() {
    let grid = ScenarioGrid::new()
        .ns([100])
        .cs([1])
        .strategies((0..=4).map(StrategySpec::Fixed));
    let outcome = run(&grid, &CampaignConfig::default());
    assert_eq!(outcome.error_count(), 0);
    let h: Vec<f64> = outcome
        .cells
        .iter()
        .map(|cell| cell.outcome.as_ref().unwrap().h_star)
        .collect();
    assert_eq!(h[0], 0.0, "direct send exposes the sender");
    // Theorem 1 closed form: H*(F(1)) = H*(F(2)) = (n-2)/n · log2(n-2)
    let expect = (98.0 / 100.0) * 98f64.log2();
    assert!((h[1] - expect).abs() < 1e-12, "F(1): {} vs {expect}", h[1]);
    assert!(
        (h[1] - h[2]).abs() < 1e-12,
        "short-path effect: F(1) == F(2)"
    );
    assert!((h[1] - 6.4824).abs() < 5e-4, "paper's plotted value");
    assert!(h[3] < h[2] && h[2] - h[3] < 1e-3, "F(3) is slightly worse");
    assert!(h[4] > h[3] + 0.01, "F(4) jumps up");
    // p_exposed for F(0) is total
    let m0 = outcome.cells[0].outcome.as_ref().unwrap();
    assert!((m0.p_exposed.unwrap() - 1.0).abs() < 1e-12);
}

/// Golden test: a surveyed-systems campaign row set matches the direct
/// engine evaluation used elsewhere in the workspace.
#[test]
fn golden_survey_strategies_match_direct_engine() {
    use anonroute_core::{engine, PathLengthDist, SystemModel};
    let grid = ScenarioGrid::new().ns([100]).cs([1]).strategies([
        StrategySpec::Fixed(1), // Anonymizer / LPWA
        StrategySpec::Fixed(3), // Freedom
        StrategySpec::Fixed(5), // Onion Routing I
        StrategySpec::TwoPoint {
            lo: 3,
            p: 0.5,
            hi: 4,
        }, // PipeNet
    ]);
    let outcome = run(&grid, &CampaignConfig::default());
    let dists = [
        PathLengthDist::fixed(1),
        PathLengthDist::fixed(3),
        PathLengthDist::fixed(5),
        PathLengthDist::two_point(3, 0.5, 4).unwrap(),
    ];
    let model = SystemModel::new(100, 1).unwrap();
    for (cell, dist) in outcome.cells.iter().zip(&dists) {
        let expect = engine::anonymity_degree(&model, dist).unwrap();
        let got = cell.outcome.as_ref().unwrap().h_star;
        assert!(
            (got - expect).abs() < 1e-12,
            "{}: {got} vs {expect}",
            cell.scenario
        );
    }
}

#[test]
fn acceptance_scale_grid_runs_and_stays_deterministic() {
    // the acceptance criterion's shape: 3 sizes × 5 compromise levels ×
    // 15 strategies = 225 cells
    let strategies: Vec<StrategySpec> = (1..=10)
        .map(StrategySpec::Fixed)
        .chain((1..=5).map(|a| StrategySpec::Uniform(a, a + 6)))
        .collect();
    assert_eq!(strategies.len(), 15);
    let grid = ScenarioGrid::new()
        .ns([50, 100, 200])
        .cs(1..=5)
        .strategies(strategies);
    assert_eq!(grid.len(), 225);
    let serial = run(
        &grid,
        &CampaignConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let parallel = run(
        &grid,
        &CampaignConfig {
            threads: 0,
            ..Default::default()
        },
    );
    assert_eq!(serial.cells.len(), 225);
    assert_eq!(serial.error_count(), 0);
    assert_eq!(
        report::render_jsonl(&serial, false),
        report::render_jsonl(&parallel, false)
    );
    // one evaluator per (n, c) model — 15 models for 225 cells
    assert_eq!(parallel.cache.misses, 15);
    assert_eq!(parallel.cache.hits, 210);
}
