//! One grid across all four evaluation backends — closed-form math to
//! genuine TCP traffic — pinning that every sampling backend agrees with
//! the exact engine within its std-error bound, deterministically per
//! seed.

use anonroute_campaign::{
    backend, report, run, CampaignConfig, EngineKind, ScenarioGrid, StrategySpec,
};

fn four_engine_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .ns([10])
        .cs([1])
        .strategies([StrategySpec::Uniform(1, 3)])
        .engines(EngineKind::ALL)
}

fn config() -> CampaignConfig {
    CampaignConfig {
        mc_samples: 20_000,
        sim_messages: 800,
        live_messages: 250,
        seed: 2026,
        ..CampaignConfig::default()
    }
}

#[test]
fn all_four_engines_agree_on_one_grid() {
    let outcome = run(&four_engine_grid(), &config());
    assert_eq!(outcome.cells.len(), 4);
    assert_eq!(
        outcome.error_count(),
        0,
        "{:?}",
        outcome
            .cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().err())
            .collect::<Vec<_>>()
    );
    let exact = outcome.cells[0].outcome.as_ref().unwrap();
    assert_eq!(outcome.cells[0].scenario.engine, EngineKind::Exact);
    assert!(exact.std_error.is_none(), "exact cells are not sampled");
    for cell in &outcome.cells[1..] {
        let metrics = cell.outcome.as_ref().unwrap();
        let est = metrics.sampled().expect("sampling engines report errors");
        assert!(
            est.agrees_with(exact.h_star, 5.0),
            "{}: {est} vs exact {}",
            cell.scenario,
            exact.h_star
        );
        assert!(est.std_error > 0.0);
        assert!(
            (metrics.mean_len - exact.mean_len).abs() < 1e-12,
            "all engines evaluate the same realized strategy"
        );
    }
}

#[test]
fn live_cells_are_deterministic_per_seed() {
    // identities, routes, handshakes, nonces, and junk all derive from
    // the cell seed; the adversary consumes trace structure only — so a
    // rerun renders byte-identical JSONL even for live TCP cells
    let grid = ScenarioGrid::new()
        .ns([8])
        .cs([1])
        .strategies([StrategySpec::Fixed(2)])
        .engines([EngineKind::Exact, EngineKind::Live]);
    let config = CampaignConfig {
        live_messages: 120,
        seed: 55,
        ..CampaignConfig::default()
    };
    let a = report::render_jsonl(&run(&grid, &config), false);
    let b = report::render_jsonl(&run(&grid, &config), false);
    assert_eq!(a, b, "live cells must be deterministic per seed");
    assert!(a.contains("\"engine\":\"live\""));

    // ...and a different campaign seed moves the live measurement
    let other = report::render_jsonl(&run(&grid, &CampaignConfig { seed: 56, ..config }), false);
    assert_ne!(a, other, "live sampling must respond to the seed");
}

#[test]
fn every_registered_backend_scores_through_the_trait_object() {
    // the registry is the only dispatch point: score one feasible cell
    // with each backend via `&dyn EvalBackend` and cross-check engines
    use anonroute_core::engine::EvaluatorCache;
    use anonroute_core::{PathKind, SystemModel};

    let scenario_for = |kind| anonroute_campaign::Scenario {
        n: 8,
        c: 1,
        path_kind: PathKind::Simple,
        strategy: StrategySpec::Uniform(1, 3),
        engine: kind,
    };
    let model = SystemModel::new(8, 1).unwrap();
    let dist = StrategySpec::Uniform(1, 3).realize(&model).unwrap();
    let cache = EvaluatorCache::new();
    let config = CampaignConfig {
        mc_samples: 10_000,
        sim_messages: 500,
        live_messages: 150,
        ..CampaignConfig::default()
    };
    let mut exact_h = None;
    for kind in EngineKind::ALL {
        let scenario = scenario_for(kind);
        let ctx = anonroute_campaign::CellCtx {
            scenario: &scenario,
            model: &model,
            dist: &dist,
            seed: 17,
            config: &config,
            cache: &cache,
        };
        let metrics = backend::backend(kind).evaluate(&ctx).unwrap();
        match metrics.sampled() {
            None => exact_h = Some(metrics.h_star),
            Some(est) => {
                let exact = exact_h.expect("exact runs first in ALL order");
                assert!(est.agrees_with(exact, 5.0), "{kind:?}: {est} vs {exact}");
            }
        }
    }
}
