//! One grid across all four evaluation backends — closed-form math to
//! genuine TCP traffic — pinning that every sampling backend agrees with
//! the exact engine within its std-error bound, deterministically per
//! seed.

use anonroute_campaign::{
    backend, report, run, CampaignConfig, EngineKind, ScenarioGrid, StrategySpec,
};

fn four_engine_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .ns([10])
        .cs([1])
        .strategies([StrategySpec::Uniform(1, 3)])
        .engines(EngineKind::ALL)
}

fn config() -> CampaignConfig {
    CampaignConfig {
        mc_samples: 20_000,
        sim_messages: 800,
        live_messages: 250,
        seed: 2026,
        ..CampaignConfig::default()
    }
}

#[test]
fn all_four_engines_agree_on_one_grid() {
    let outcome = run(&four_engine_grid(), &config());
    assert_eq!(outcome.cells.len(), 4);
    assert_eq!(
        outcome.error_count(),
        0,
        "{:?}",
        outcome
            .cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().err())
            .collect::<Vec<_>>()
    );
    let exact = outcome.cells[0].outcome.as_ref().unwrap();
    assert_eq!(outcome.cells[0].scenario.engine, EngineKind::Exact);
    assert!(exact.std_error.is_none(), "exact cells are not sampled");
    for cell in &outcome.cells[1..] {
        let metrics = cell.outcome.as_ref().unwrap();
        let est = metrics.sampled().expect("sampling engines report errors");
        assert!(
            est.agrees_with(exact.h_star, 5.0),
            "{}: {est} vs exact {}",
            cell.scenario,
            exact.h_star
        );
        assert!(est.std_error > 0.0);
        assert!(
            (metrics.mean_len - exact.mean_len).abs() < 1e-12,
            "all engines evaluate the same realized strategy"
        );
    }
}

#[test]
fn live_cells_are_deterministic_per_seed() {
    // identities, routes, handshakes, nonces, and junk all derive from
    // the cell seed; the adversary consumes trace structure only — so a
    // rerun renders byte-identical JSONL even for live TCP cells
    let grid = ScenarioGrid::new()
        .ns([8])
        .cs([1])
        .strategies([StrategySpec::Fixed(2)])
        .engines([EngineKind::Exact, EngineKind::Live]);
    let config = CampaignConfig {
        live_messages: 120,
        seed: 55,
        ..CampaignConfig::default()
    };
    let a = report::render_jsonl(&run(&grid, &config), false);
    let b = report::render_jsonl(&run(&grid, &config), false);
    assert_eq!(a, b, "live cells must be deterministic per seed");
    assert!(a.contains("\"engine\":\"live\""));

    // ...and a different campaign seed moves the live measurement
    let other = report::render_jsonl(&run(&grid, &CampaignConfig { seed: 56, ..config }), false);
    assert_ne!(a, other, "live sampling must respond to the seed");
}

#[test]
fn every_registered_backend_scores_through_the_trait_object() {
    // the registry is the only dispatch point: score one feasible cell
    // with each backend via `&dyn EvalBackend` and cross-check engines
    use anonroute_core::engine::EvaluatorCache;
    use anonroute_core::epochs::EpochView;
    use anonroute_core::{EpochSchedule, PathKind, SystemModel};

    let scenario_for = |kind| anonroute_campaign::Scenario {
        n: 8,
        c: 1,
        path_kind: PathKind::Simple,
        strategy: StrategySpec::Uniform(1, 3),
        dynamics: EpochSchedule::one_shot(),
        engine: kind,
    };
    let model = SystemModel::new(8, 1).unwrap();
    let dist = StrategySpec::Uniform(1, 3).realize(&model).unwrap();
    let views = vec![EpochView {
        epoch: 0,
        active: (0..8).collect(),
        compromised: vec![7],
    }];
    let cache = EvaluatorCache::new();
    let config = CampaignConfig {
        mc_samples: 10_000,
        sim_messages: 500,
        live_messages: 150,
        ..CampaignConfig::default()
    };
    let mut exact_h = None;
    for kind in EngineKind::ALL {
        let scenario = scenario_for(kind);
        let ctx = anonroute_campaign::CellCtx {
            scenario: &scenario,
            model: &model,
            dist: &dist,
            views: &views,
            seed: 17,
            dynamics_seed: 17,
            config: &config,
            cache: &cache,
            shared: None,
        };
        let metrics = backend::backend(kind).evaluate(&ctx).unwrap();
        match metrics.sampled() {
            None => exact_h = Some(metrics.h_star),
            Some(est) => {
                let exact = exact_h.expect("exact runs first in ALL order");
                assert!(est.agrees_with(exact, 5.0), "{kind:?}: {est} vs {exact}");
            }
        }
    }
}

/// The multi-round conformance grid: every engine scores the same
/// multi-epoch cells — static, rotating, and churning — and must agree
/// on the cumulative anonymity within std-error bounds, because all four
/// realize identical epochs from the engine-free dynamics seed (only
/// their session sampling is independent).
#[test]
fn all_four_engines_agree_on_multi_epoch_cells() {
    use anonroute_core::{ChurnModel, RotationPolicy};

    // U(1,2) stays feasible at any churned size the realize guard
    // permits (n_e >= c + 2 = 3), so every cell must score
    let grid = ScenarioGrid::new()
        .ns([8])
        .cs([1])
        .strategies([StrategySpec::Uniform(1, 2)])
        .epochs([3])
        .rotations([RotationPolicy::Static, RotationPolicy::Shift { step: 3 }])
        .churns([ChurnModel::None, ChurnModel::Iid { rate: 0.2 }])
        .engines(EngineKind::ALL);
    let config = CampaignConfig {
        mc_samples: 12_000,
        sim_messages: 2_400,
        live_messages: 360,
        seed: 404,
        ..CampaignConfig::default()
    };
    let outcome = run(&grid, &config);
    assert_eq!(outcome.cells.len(), 16);
    assert_eq!(
        outcome.error_count(),
        0,
        "{:?}",
        outcome
            .cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().err())
            .collect::<Vec<_>>()
    );
    // engine expands outside the dynamics axes: cells[e * 4 + d] is
    // engine e on dynamics combination d
    let dynamics_combos = 4;
    for d in 0..dynamics_combos {
        let exact_cell = &outcome.cells[d];
        let exact = exact_cell.outcome.as_ref().unwrap();
        assert_eq!(exact_cell.scenario.engine, EngineKind::Exact);
        assert_eq!(exact.epochs, 3, "three epochs folded");
        let anchor = exact.h_epoch1.expect("multi-epoch cells carry an anchor");
        // the exact anchor is the closed-form single-round H*(S)
        let model = anonroute_core::SystemModel::new(8, 1).unwrap();
        let dist = exact_cell.scenario.strategy.realize(&model).unwrap();
        let h1 = anonroute_core::engine::anonymity_degree(&model, &dist).unwrap();
        assert!((anchor - h1).abs() < 1e-12, "anchor {anchor} vs exact {h1}");
        // folding epochs can only help the adversary
        assert!(
            exact.h_star <= anchor + 1e-9,
            "{}: cumulative {} above anchor {anchor}",
            exact_cell.scenario,
            exact.h_star
        );
        let exact_est = exact
            .sampled()
            .expect("multi-epoch exact cells are sampled");
        for e in 1..EngineKind::ALL.len() {
            let cell = &outcome.cells[e * dynamics_combos + d];
            assert_eq!(cell.scenario.dynamics, exact_cell.scenario.dynamics);
            let metrics = cell.outcome.as_ref().unwrap();
            let est = metrics.sampled().expect("sampling engines report errors");
            assert_eq!(metrics.epochs, 3);
            // pooled tolerance: both sides of the comparison are estimates
            let pooled = (est.std_error.powi(2) + exact_est.std_error.powi(2)).sqrt();
            assert!(
                (est.h_star - exact_est.h_star).abs() <= 5.0 * pooled + 1e-9,
                "{}: {est} vs exact {}",
                cell.scenario,
                exact_est
            );
        }
    }
}

/// Multi-epoch cells obey the same bit-identical-per-seed contract as
/// everything else, across thread counts and engines (incl. live TCP).
#[test]
fn multi_epoch_cells_are_deterministic_per_seed_at_any_thread_count() {
    use anonroute_core::ChurnModel;

    let grid = ScenarioGrid::new()
        .ns([8])
        .cs([1])
        .strategies([StrategySpec::Fixed(2)])
        .epochs([2])
        .churns([ChurnModel::Iid { rate: 0.2 }])
        .engines(EngineKind::ALL);
    let config = |threads| CampaignConfig {
        threads,
        mc_samples: 4_000,
        sim_messages: 600,
        live_messages: 120,
        seed: 77,
        ..CampaignConfig::default()
    };
    let serial = report::render_jsonl(&run(&grid, &config(1)), false);
    let parallel = report::render_jsonl(&run(&grid, &config(4)), false);
    assert_eq!(serial, parallel, "thread count must not leak into results");
    let rerun = report::render_jsonl(&run(&grid, &config(4)), false);
    assert_eq!(parallel, rerun, "reruns must be byte-identical");
    assert!(serial.contains("\"epochs\":2"));
    assert!(serial.contains("\"dynamics\":\"epochs=2;churn=iid:0.2\""));
}
