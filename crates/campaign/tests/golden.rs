//! Golden-file regression tests: a tiny campaign's JSONL and CSV
//! artifacts are pinned byte-for-byte, so *any* schema drift — a
//! renamed column, a reordered field, a float formatting change, or a
//! missing epoch column — fails CI loudly instead of silently breaking
//! downstream parsers.
//!
//! The grid deliberately covers the full row vocabulary: a one-shot
//! exact cell (closed form, `p_exposed`, no sampling fields), a
//! multi-epoch exact cell (sampled decay with an `h_epoch1` anchor and
//! `epochs` column), and an infeasible cell (error row). Everything is
//! a pure function of `(grid, config)`, so the bytes are stable across
//! runs and thread counts by the campaign's determinism contract.

use anonroute_campaign::{report, run, CampaignConfig, ScenarioGrid, StrategySpec};

fn golden_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .ns([10])
        .cs([1])
        .strategies([StrategySpec::Fixed(3), StrategySpec::Fixed(20)])
        .epochs([1, 2])
}

fn golden_config() -> CampaignConfig {
    CampaignConfig {
        threads: 2,
        seed: 11,
        mc_samples: 2_000,
        ..CampaignConfig::default()
    }
}

/// The pinned JSONL artifact. Regenerate deliberately (and review the
/// diff!) with:
/// `PRINT_GOLDEN=1 cargo test -p anonroute-campaign --test golden -- --nocapture`
const GOLDEN_JSONL: &str = r#"{"cell":0,"n":10,"c":1,"path":"simple","strategy":"fixed:3","family":"fixed","engine":"exact","dynamics":"epochs=1","seed":5833679380957638813,"status":"ok","h_star":2.3807354922057598,"normalized":0.7166727948957861,"mean_len":3,"p_exposed":0.19999999999999996,"std_error":null,"samples":null,"epochs":1,"h_epoch1":null}
{"cell":1,"n":10,"c":1,"path":"simple","strategy":"fixed:3","family":"fixed","engine":"exact","dynamics":"epochs=2","seed":4839782808629744545,"status":"ok","h_star":1.9515582836001042,"normalized":0.587477581650146,"mean_len":3,"p_exposed":null,"std_error":0.04050317429046618,"samples":1000,"epochs":2,"h_epoch1":2.3807354922057598}
{"cell":2,"n":10,"c":1,"path":"simple","strategy":"fixed:20","family":"fixed","engine":"exact","dynamics":"epochs=1","seed":11769803791402734189,"status":"error","error":"invalid path-length distribution: simple paths in an n=10 system support at most 9 intermediate nodes, but the distribution places mass 1.000e0 beyond that"}
{"cell":3,"n":10,"c":1,"path":"simple","strategy":"fixed:20","family":"fixed","engine":"exact","dynamics":"epochs=2","seed":9308485889748266480,"status":"error","error":"invalid path-length distribution: simple paths in an n=10 system support at most 9 intermediate nodes, but the distribution places mass 1.000e0 beyond that"}
"#;

/// The pinned CSV artifact.
const GOLDEN_CSV: &str = r#"cell,n,c,path,strategy,family,engine,dynamics,seed,status,h_star,normalized,mean_len,p_exposed,std_error,samples,epochs,h_epoch1,error
0,10,1,simple,fixed:3,fixed,exact,epochs=1,5833679380957638813,ok,2.3807354922057598,0.7166727948957861,3,0.19999999999999996,,,1,,
1,10,1,simple,fixed:3,fixed,exact,epochs=2,4839782808629744545,ok,1.9515582836001042,0.587477581650146,3,,0.04050317429046618,1000,2,2.3807354922057598,
2,10,1,simple,fixed:20,fixed,exact,epochs=1,11769803791402734189,error,,,,,,,,,invalid path-length distribution: simple paths in an n=10 system support at most 9 intermediate nodes; but the distribution places mass 1.000e0 beyond that
3,10,1,simple,fixed:20,fixed,exact,epochs=2,9308485889748266480,error,,,,,,,,,invalid path-length distribution: simple paths in an n=10 system support at most 9 intermediate nodes; but the distribution places mass 1.000e0 beyond that
"#;

#[test]
fn campaign_jsonl_is_byte_identical_to_the_golden_file() {
    let outcome = run(&golden_grid(), &golden_config());
    let jsonl = report::render_jsonl(&outcome, false);
    if std::env::var_os("PRINT_GOLDEN").is_some() {
        println!(
            "=== JSONL ===\n{jsonl}=== CSV ===\n{}",
            report::render_csv(&outcome)
        );
    }
    assert_eq!(
        jsonl, GOLDEN_JSONL,
        "campaign JSONL schema or values drifted from the golden file"
    );
}

/// Structural companion to the byte pins, so a deliberate regeneration
/// still has its semantics checked: the multi-epoch cell's anchor is
/// bit-identical to the one-shot cell's closed form, and folding a
/// second epoch can only lower the cumulative entropy.
#[test]
fn golden_grid_anchors_epoch_one_to_the_one_shot_value() {
    let outcome = run(&golden_grid(), &golden_config());
    let one_shot = outcome.cells[0].outcome.as_ref().unwrap();
    let multi = outcome.cells[1].outcome.as_ref().unwrap();
    assert_eq!(one_shot.epochs, 1);
    assert_eq!(multi.epochs, 2);
    assert_eq!(
        multi.h_epoch1,
        Some(one_shot.h_star),
        "the decay must start exactly at the single-round H*(S)"
    );
    assert!(multi.h_star <= one_shot.h_star);
    assert!(outcome.cells[2].outcome.is_err());
    assert!(outcome.cells[3].outcome.is_err());
}

#[test]
fn campaign_csv_is_byte_identical_to_the_golden_file() {
    let outcome = run(&golden_grid(), &golden_config());
    let csv = report::render_csv(&outcome);
    assert_eq!(
        csv, GOLDEN_CSV,
        "campaign CSV schema or values drifted from the golden file"
    );
}

/// The observability determinism guard: running the *same* golden grid
/// with the metrics endpoint live (and progress counters registered)
/// must render byte-identical JSONL and CSV. Metrics are write-only
/// sinks — if instrumentation ever feeds back into seeding, scheduling,
/// or scoring, this fails against the same pins as the tests above.
#[test]
fn artifacts_are_byte_identical_with_observability_enabled() {
    let config = CampaignConfig {
        // port 0: a real /metrics endpoint on an ephemeral port, no
        // ticker (stderr noise stays out of test output)
        metrics_addr: Some("127.0.0.1:0".parse().expect("static addr")),
        ..golden_config()
    };
    let outcome = run(&golden_grid(), &config);
    assert_eq!(
        report::render_jsonl(&outcome, false),
        GOLDEN_JSONL,
        "enabling the metrics endpoint changed the JSONL artifact"
    );
    assert_eq!(
        report::render_csv(&outcome),
        GOLDEN_CSV,
        "enabling the metrics endpoint changed the CSV artifact"
    );
}
