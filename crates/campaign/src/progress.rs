//! Live sweep progress: shared counters, a stderr ticker, and the
//! observability session behind `--progress` / `--metrics-addr`.
//!
//! [`SweepProgress`] is a bundle of atomics the runner updates around
//! every cell — total/done/errored/in-flight, plus per-engine tallies
//! and cumulative cell time. It is **write-only from the runner's side**
//! (the determinism boundary documented in `anonroute-obs`): scheduling
//! and evaluation never read it, so a sweep with observability on
//! renders byte-identical artifacts to one with it off — pinned by the
//! golden determinism tests.
//!
//! [`ObsSession`] is the per-run lifecycle: it re-points the global
//! registry's `anonroute_campaign_*` polled series at this run's
//! progress (replace-on-reregister), optionally binds the HTTP endpoint
//! and starts the ~1 Hz ticker, and unwinds both when the sweep ends.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use anonroute_obs::{Health, ObsServer, Registry, SweepControl};
use anonroute_relay::ClusterMetrics;

use crate::grid::EngineKind;
use crate::runner::CampaignConfig;

/// Per-engine slice of the sweep's progress.
#[derive(Debug, Default)]
struct EngineProgress {
    done: AtomicU64,
    errors: AtomicU64,
    micros: AtomicU64,
}

/// Shared progress state of one running sweep.
#[derive(Debug)]
pub struct SweepProgress {
    total: u64,
    started: Instant,
    done: AtomicU64,
    errors: AtomicU64,
    in_flight: AtomicU64,
    skipped: AtomicU64,
    engines: [EngineProgress; EngineKind::ALL.len()],
}

fn engine_index(kind: EngineKind) -> usize {
    EngineKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("EngineKind::ALL covers every engine")
}

impl SweepProgress {
    /// Progress over a sweep of `total` cells, starting now.
    pub fn new(total: usize) -> Self {
        SweepProgress {
            total: total as u64,
            started: Instant::now(),
            done: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            engines: Default::default(),
        }
    }

    /// Marks one cell as skipped (the sweep is draining or aborted).
    pub fn cell_skipped(&self) {
        self.skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Cells skipped by a drain/abort so far.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Marks one cell as dispatched to its backend.
    pub fn cell_started(&self, _engine: EngineKind) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one cell as finished (with or without metrics).
    pub fn cell_finished(&self, engine: EngineKind, ok: bool, elapsed: Duration) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
        let slot = &self.engines[engine_index(engine)];
        slot.done.fetch_add(1, Ordering::Relaxed);
        slot.micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total cells in the sweep.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cells finished so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Finished cells that recorded an error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Cells currently inside a backend.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Wall-clock since the sweep started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Naive remaining-time estimate: elapsed scaled by remaining/done.
    /// `None` until the first cell lands (and after the last).
    pub fn eta(&self) -> Option<Duration> {
        let done = self.done();
        let remaining = self.total.saturating_sub(done);
        if done == 0 || remaining == 0 {
            return None;
        }
        Some(self.elapsed().mul_f64(remaining as f64 / done as f64))
    }

    /// `(done, errors, cumulative cell seconds)` for one engine.
    pub fn engine_tally(&self, kind: EngineKind) -> (u64, u64, f64) {
        let slot = &self.engines[engine_index(kind)];
        (
            slot.done.load(Ordering::Relaxed),
            slot.errors.load(Ordering::Relaxed),
            slot.micros.load(Ordering::Relaxed) as f64 / 1e6,
        )
    }

    /// The ticker line: progress, errors, in-flight, elapsed, ETA.
    pub fn render_line(&self) -> String {
        let eta = match self.eta() {
            Some(eta) => format!("{:.0}s", eta.as_secs_f64()),
            None => "?".to_string(),
        };
        format!(
            "[campaign] {}/{} cells ({} errors, {} in flight) elapsed {:.1}s eta {eta}",
            self.done(),
            self.total,
            self.errors(),
            self.in_flight(),
            self.elapsed().as_secs_f64(),
        )
    }
}

/// Registers (or re-points, on later runs) the global registry's
/// `anonroute_campaign_*` polled series at `progress`.
fn register_metrics(registry: &'static Registry, progress: &Arc<SweepProgress>) {
    let p = Arc::clone(progress);
    registry.gauge_fn(
        "anonroute_campaign_cells",
        "Cells in the current sweep's grid.",
        &[],
        move || p.total() as f64,
    );
    let p = Arc::clone(progress);
    registry.counter_fn(
        "anonroute_campaign_cells_done_total",
        "Cells finished in the current sweep.",
        &[],
        move || p.done() as f64,
    );
    let p = Arc::clone(progress);
    registry.counter_fn(
        "anonroute_campaign_cells_errored_total",
        "Finished cells that recorded an error in the current sweep.",
        &[],
        move || p.errors() as f64,
    );
    let p = Arc::clone(progress);
    registry.gauge_fn(
        "anonroute_campaign_cells_in_flight",
        "Cells currently being evaluated.",
        &[],
        move || p.in_flight() as f64,
    );
    let p = Arc::clone(progress);
    registry.counter_fn(
        "anonroute_campaign_cells_skipped_total",
        "Cells skipped because the sweep drained or aborted.",
        &[],
        move || p.skipped() as f64,
    );
    let p = Arc::clone(progress);
    registry.gauge_fn(
        "anonroute_campaign_elapsed_seconds",
        "Wall-clock since the current sweep started.",
        &[],
        move || p.elapsed().as_secs_f64(),
    );
    let p = Arc::clone(progress);
    registry.gauge_fn(
        "anonroute_campaign_eta_seconds",
        "Naive remaining-time estimate for the current sweep (NaN until known).",
        &[],
        move || p.eta().map_or(f64::NAN, |eta| eta.as_secs_f64()),
    );
    for kind in EngineKind::ALL {
        let engine = kind.to_string();
        let p = Arc::clone(progress);
        registry.counter_fn(
            "anonroute_campaign_engine_cells_done_total",
            "Cells finished in the current sweep, by engine.",
            &[("engine", &engine)],
            move || p.engine_tally(kind).0 as f64,
        );
        let p = Arc::clone(progress);
        registry.counter_fn(
            "anonroute_campaign_engine_errors_total",
            "Error cells in the current sweep, by engine.",
            &[("engine", &engine)],
            move || p.engine_tally(kind).1 as f64,
        );
        let p = Arc::clone(progress);
        registry.counter_fn(
            "anonroute_campaign_engine_seconds_total",
            "Cumulative cell wall-clock in the current sweep, by engine.",
            &[("engine", &engine)],
            move || p.engine_tally(kind).2,
        );
    }
}

/// The ~1 Hz stderr ticker thread; prints a final line when stopped.
struct ProgressTicker {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl ProgressTicker {
    fn start(progress: Arc<SweepProgress>, control: Arc<SweepControl>) -> ProgressTicker {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&stop);
        let render = move || {
            let skipped = progress.skipped();
            let skipped = if skipped > 0 {
                format!(", {skipped} skipped")
            } else {
                String::new()
            };
            format!(
                "{} state={}{skipped}",
                progress.render_line(),
                control.state().as_str()
            )
        };
        let thread = std::thread::Builder::new()
            .name("campaign-progress".to_string())
            .spawn(move || {
                let (flag, wake) = &*shared;
                let mut stopped = flag.lock().expect("ticker lock");
                loop {
                    let (next, timeout) = wake
                        .wait_timeout(stopped, Duration::from_secs(1))
                        .expect("ticker lock");
                    stopped = next;
                    if *stopped {
                        break;
                    }
                    if timeout.timed_out() {
                        eprintln!("{}", render());
                    }
                }
                drop(stopped);
                eprintln!("{}", render());
            })
            .expect("spawning the progress ticker");
        ProgressTicker {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for ProgressTicker {
    fn drop(&mut self) {
        let (flag, wake) = &*self.stop;
        *flag.lock().expect("ticker lock") = true;
        wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The observability lifecycle of one sweep: metrics registration, the
/// optional HTTP endpoint, and the optional stderr ticker. Dropping the
/// session flips readiness off, stops the ticker (with a final line),
/// and shuts the endpoint down.
pub struct ObsSession {
    // declaration order is drop order: ticker's final line first, then
    // readiness, then the server stops answering
    ticker: Option<ProgressTicker>,
    health: Arc<Health>,
    server: Option<ObsServer>,
}

impl std::fmt::Debug for ObsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSession")
            .field("ticker", &self.ticker.is_some())
            .field("server", &self.server.as_ref().map(|s| s.addr()))
            .finish()
    }
}

impl ObsSession {
    /// Starts whatever `config` asks for; `None` when observability is
    /// fully disabled (the common, zero-overhead path). The control
    /// handle backs the endpoint's `POST /control/*` routes and the
    /// ticker's state label.
    pub fn start(
        config: &CampaignConfig,
        progress: &Arc<SweepProgress>,
        control: &Arc<SweepControl>,
    ) -> Option<ObsSession> {
        if !config.progress && config.metrics_addr.is_none() {
            return None;
        }
        let registry = Registry::global();
        register_metrics(registry, progress);
        // make the cluster-level families (boots, cells, budget) visible
        // on /metrics even before the first live cell runs
        let _ = ClusterMetrics::global();
        let health = Arc::new(Health::new());
        let server = config.metrics_addr.and_then(|addr| {
            match ObsServer::serve_with_control(
                addr,
                registry,
                Arc::clone(&health),
                Some(Arc::clone(control)),
            ) {
                Ok(server) => {
                    eprintln!("[campaign] metrics: http://{}/metrics", server.addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("[campaign] metrics endpoint failed to bind {addr}: {e}");
                    None
                }
            }
        });
        health.set_ready(true);
        health.set_status("sweep running");
        let ticker = config
            .progress
            .then(|| ProgressTicker::start(Arc::clone(progress), Arc::clone(control)));
        Some(ObsSession {
            ticker,
            health,
            server,
        })
    }

    /// The bound metrics address, when an endpoint is up.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        self.health.set_ready(false);
        self.health.set_status("sweep complete");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_tracks_cells_and_eta() {
        let p = SweepProgress::new(4);
        assert_eq!((p.total(), p.done(), p.in_flight()), (4, 0, 0));
        assert!(p.eta().is_none(), "no estimate before the first cell");
        p.cell_started(EngineKind::Exact);
        assert_eq!(p.in_flight(), 1);
        p.cell_finished(EngineKind::Exact, true, Duration::from_millis(10));
        p.cell_started(EngineKind::Live);
        p.cell_finished(EngineKind::Live, false, Duration::from_millis(30));
        assert_eq!((p.done(), p.errors(), p.in_flight()), (2, 1, 0));
        assert!(p.eta().is_some());
        let (live_done, live_errors, live_secs) = p.engine_tally(EngineKind::Live);
        assert_eq!((live_done, live_errors), (1, 1));
        assert!((live_secs - 0.03).abs() < 1e-9);
        let line = p.render_line();
        assert!(line.contains("2/4 cells"), "{line}");
        assert!(line.contains("1 errors"), "{line}");
    }

    #[test]
    fn finished_sweeps_report_no_eta() {
        let p = SweepProgress::new(1);
        p.cell_started(EngineKind::Exact);
        p.cell_finished(EngineKind::Exact, true, Duration::from_millis(1));
        assert!(p.eta().is_none());
        assert!(p.render_line().contains("eta ?"));
    }

    #[test]
    fn obs_session_is_none_when_disabled() {
        let config = CampaignConfig::default();
        let progress = Arc::new(SweepProgress::new(1));
        let control = Arc::new(SweepControl::new());
        assert!(ObsSession::start(&config, &progress, &control).is_none());
    }

    #[test]
    fn obs_session_serves_campaign_metrics() {
        use std::io::{Read, Write};
        let config = CampaignConfig {
            metrics_addr: Some("127.0.0.1:0".parse().expect("static addr")),
            ..CampaignConfig::default()
        };
        let progress = Arc::new(SweepProgress::new(3));
        progress.cell_started(EngineKind::Exact);
        progress.cell_finished(EngineKind::Exact, true, Duration::from_millis(2));
        let control = Arc::new(SweepControl::new());
        let session = ObsSession::start(&config, &progress, &control).expect("session starts");
        let addr = session.metrics_addr().expect("endpoint bound");
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\n\r\n").expect("request");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("response");
        assert!(
            body.contains("anonroute_campaign_cells_done_total 1"),
            "{body}"
        );
        assert!(body.contains("anonroute_campaign_cells 3"), "{body}");
        assert!(
            body.contains("anonroute_cluster_boots_total"),
            "cluster families registered: {body}"
        );
        // readiness flips with the session lifecycle
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /readyz HTTP/1.1\r\n\r\n").expect("request");
        let mut probe = String::new();
        stream.read_to_string(&mut probe).expect("response");
        assert!(probe.starts_with("HTTP/1.1 200"), "{probe}");
        // the control plane acts on the session's handle
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /control/pause HTTP/1.1\r\n\r\n").expect("request");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("response");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.ends_with("paused\n"), "{reply}");
        assert_eq!(control.state(), anonroute_obs::SweepState::Paused);
        control.resume();
        drop(session);
    }
}
