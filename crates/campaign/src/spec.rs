//! Grid specification parsing: compact CLI flag values and a TOML-subset
//! spec file.
//!
//! The flag grammar keeps ad-hoc sweeps one-liners:
//!
//! ```text
//! --n 50,100,200   --c 1..=5   --paths simple,cyclic
//! --strategies fixed:1,fixed:5,uniform:2:8,geometric:0.75:50,optimal:5
//! --engines exact,mc
//! --epochs 1,4   --rotation static,shift:2,resample   --churn none,iid:0.25
//! ```
//!
//! The spec file carries the same axes (plus run settings) in a TOML
//! subset parsed in-tree — this build environment is offline, so no TOML
//! crate is available. Supported: `[grid]` / `[run]` (alias `[config]`)
//! tables, `#` comments, integer / float / boolean / quoted-string
//! scalars, and flat arrays thereof. The run section accepts every
//! sampling knob (`mc_samples`, `sim_messages`, `sim_max_n`,
//! `live_messages`, `live_timeout_ms`, `live_max_n`, `live_cell_size`,
//! `live_shared`) plus the
//! observability switches (`progress = true`,
//! `metrics_addr = "127.0.0.1:9464"`), so a grid file fully describes a
//! run without CLI flags.

use anonroute_core::epochs::{ChurnModel, RotationPolicy};

use crate::grid::{parse_path_kind, EngineKind, ScenarioGrid, StrategySpec};
use crate::runner::CampaignConfig;

/// Parses a list of non-negative integers: comma-separated values and/or
/// `a..b` (exclusive) / `a..=b` (inclusive) ranges, e.g. `1,2,8..=10`.
///
/// # Errors
///
/// Returns a message naming the offending token.
pub fn parse_usize_list(text: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for token in text.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = token.split_once("..=") {
            let (lo, hi) = (parse_usize(lo)?, parse_usize(hi)?);
            if lo > hi {
                return Err(format!("range `{token}` is empty"));
            }
            out.extend(lo..=hi);
        } else if let Some((lo, hi)) = token.split_once("..") {
            let (lo, hi) = (parse_usize(lo)?, parse_usize(hi)?);
            if lo >= hi {
                return Err(format!("range `{token}` is empty"));
            }
            out.extend(lo..hi);
        } else {
            out.push(parse_usize(token)?);
        }
    }
    if out.is_empty() {
        return Err(format!("`{text}`: expected at least one integer"));
    }
    Ok(out)
}

fn parse_usize(s: &str) -> Result<usize, String> {
    s.trim()
        .parse::<usize>()
        .map_err(|_| format!("bad integer `{}`", s.trim()))
}

/// Splits a comma-separated flag value and parses every token.
fn parse_tokens<T>(
    text: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

/// Builds a grid from CLI flag values; empty strings fall back to the
/// grid defaults (`simple` paths, `exact` engine, one static epoch, no
/// churn).
///
/// # Errors
///
/// Returns a message pointing at the failing axis value.
#[allow(clippy::too_many_arguments)] // one parameter per CLI axis flag
pub fn grid_from_flags(
    ns: &str,
    cs: &str,
    paths: &str,
    strategies: &str,
    engines: &str,
    epochs: &str,
    rotations: &str,
    churns: &str,
) -> Result<ScenarioGrid, String> {
    let mut grid = ScenarioGrid::new()
        .ns(parse_usize_list(ns)?)
        .cs(parse_usize_list(cs)?)
        .strategies(parse_tokens(strategies, StrategySpec::parse)?);
    if grid.strategies.is_empty() {
        return Err("expected at least one strategy".into());
    }
    if !paths.is_empty() {
        grid = grid.path_kinds(parse_tokens(paths, parse_path_kind)?);
    }
    if !engines.is_empty() {
        grid = grid.engines(parse_tokens(engines, EngineKind::parse)?);
    }
    if !epochs.is_empty() {
        let epochs = parse_usize_list(epochs)?;
        if epochs.contains(&0) {
            return Err("--epochs values must be at least 1".into());
        }
        grid = grid.epochs(epochs);
    }
    if !rotations.is_empty() {
        grid = grid.rotations(parse_tokens(rotations, RotationPolicy::parse)?);
    }
    if !churns.is_empty() {
        grid = grid.churns(parse_tokens(churns, ChurnModel::parse)?);
    }
    Ok(grid)
}

/// One parsed TOML-subset scalar.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
    Array(Vec<Value>),
}

impl Value {
    fn parse(raw: &str) -> Result<Value, String> {
        let raw = raw.trim();
        if raw.is_empty() {
            return Err("empty value".into());
        }
        if let Some(inner) = raw.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| format!("unterminated array `{raw}`"))?;
            let mut items = Vec::new();
            for part in split_top_level(inner) {
                let part = part.trim();
                if !part.is_empty() {
                    items.push(Value::parse(part)?);
                }
            }
            return Ok(Value::Array(items));
        }
        if let Some(inner) = raw.strip_prefix('"') {
            let inner = inner
                .strip_suffix('"')
                .ok_or_else(|| format!("unterminated string `{raw}`"))?;
            return Ok(Value::Str(inner.to_string()));
        }
        if raw == "true" {
            return Ok(Value::Bool(true));
        }
        if raw == "false" {
            return Ok(Value::Bool(false));
        }
        if let Ok(i) = raw.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(f) = raw.parse::<f64>() {
            return Ok(Value::Float(f));
        }
        Err(format!("cannot parse value `{raw}`"))
    }

    fn as_usize_list(&self, key: &str) -> Result<Vec<usize>, String> {
        match self {
            Value::Array(items) => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Int(i) if *i >= 0 => out.push(*i as usize),
                        Value::Str(s) => out.extend(parse_usize_list(s)?),
                        other => {
                            return Err(format!(
                                "{key}: expected non-negative integer, got {other:?}"
                            ))
                        }
                    }
                }
                Ok(out)
            }
            Value::Int(i) if *i >= 0 => Ok(vec![*i as usize]),
            Value::Str(s) => parse_usize_list(s),
            other => Err(format!("{key}: expected integer list, got {other:?}")),
        }
    }

    fn as_str_list(&self, key: &str) -> Result<Vec<String>, String> {
        match self {
            Value::Str(s) => Ok(vec![s.clone()]),
            Value::Array(items) => items
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Ok(s.clone()),
                    other => Err(format!("{key}: expected string, got {other:?}")),
                })
                .collect(),
            other => Err(format!("{key}: expected string list, got {other:?}")),
        }
    }

    fn as_u64(&self, key: &str) -> Result<u64, String> {
        match self {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(format!(
                "{key}: expected non-negative integer, got {other:?}"
            )),
        }
    }

    fn as_bool(&self, key: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("{key}: expected true or false, got {other:?}")),
        }
    }

    fn as_one_str(&self, key: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("{key}: expected a quoted string, got {other:?}")),
        }
    }
}

/// Splits on top-level commas (quotes respected; arrays do not nest in
/// this subset).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, ch) in s.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a spec file into a grid plus run-config overrides applied on top
/// of `base`.
///
/// # Errors
///
/// Returns `line N: message` for the first offending line, or a message
/// for missing required axes.
pub fn parse_spec(
    text: &str,
    base: &CampaignConfig,
) -> Result<(ScenarioGrid, CampaignConfig), String> {
    let mut grid = ScenarioGrid::new();
    let mut config = base.clone();
    let mut section = String::new();
    let mut saw_strategies = false;
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let at = |m: String| format!("line {}: {m}", lineno + 1);
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| at(format!("unterminated section header `{line}`")))?;
            section = name.trim().to_string();
            if section == "config" {
                // `[config]` is an alias for `[run]`
                section = "run".to_string();
            }
            if section != "grid" && section != "run" {
                return Err(at(format!(
                    "unknown section `[{section}]` (expected [grid], [run], or [config])"
                )));
            }
            continue;
        }
        let (key, raw_value) = line
            .split_once('=')
            .ok_or_else(|| at(format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim();
        let value = Value::parse(raw_value).map_err(at)?;
        match (section.as_str(), key) {
            ("grid", "n") => grid.ns = value.as_usize_list(key).map_err(at)?,
            ("grid", "c") => grid.cs = value.as_usize_list(key).map_err(at)?,
            ("grid", "path" | "paths") => {
                grid.path_kinds = value
                    .as_str_list(key)
                    .map_err(at)?
                    .iter()
                    .map(|s| parse_path_kind(s))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(at)?;
            }
            ("grid", "strategy" | "strategies") => {
                grid.strategies = value
                    .as_str_list(key)
                    .map_err(at)?
                    .iter()
                    .flat_map(|s| s.split(',').map(str::trim).filter(|t| !t.is_empty()))
                    .map(StrategySpec::parse)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(at)?;
                saw_strategies = true;
            }
            ("grid", "engine" | "engines") => {
                grid.engines = value
                    .as_str_list(key)
                    .map_err(at)?
                    .iter()
                    .map(|s| EngineKind::parse(s))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(at)?;
            }
            ("grid", "epochs") => {
                let epochs = value.as_usize_list(key).map_err(at)?;
                if epochs.contains(&0) {
                    return Err(at("epochs values must be at least 1".into()));
                }
                grid.epochs = epochs;
            }
            ("grid", "rotation" | "rotations") => {
                grid.rotations = value
                    .as_str_list(key)
                    .map_err(at)?
                    .iter()
                    .map(|s| RotationPolicy::parse(s))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(at)?;
            }
            ("grid", "churn" | "churns") => {
                grid.churns = value
                    .as_str_list(key)
                    .map_err(at)?
                    .iter()
                    .map(|s| ChurnModel::parse(s))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(at)?;
            }
            ("run", "threads") => config.threads = value.as_u64(key).map_err(at)? as usize,
            ("run", "seed") => config.seed = value.as_u64(key).map_err(at)?,
            ("run", "mc_samples") => config.mc_samples = value.as_u64(key).map_err(at)? as usize,
            ("run", "sim_messages") => {
                config.sim_messages = value.as_u64(key).map_err(at)? as usize
            }
            ("run", "sim_max_n") => config.sim_max_n = value.as_u64(key).map_err(at)? as usize,
            ("run", "live_messages") => {
                config.live_messages = value.as_u64(key).map_err(at)? as usize
            }
            ("run", "live_timeout_ms") => config.live_timeout_ms = value.as_u64(key).map_err(at)?,
            ("run", "live_max_n") => config.live_max_n = value.as_u64(key).map_err(at)? as usize,
            ("run", "live_cell_size") => {
                config.live_cell_size = value.as_u64(key).map_err(at)? as usize
            }
            ("run", "live_shared") => config.live_shared = value.as_bool(key).map_err(at)?,
            ("run", "progress") => config.progress = value.as_bool(key).map_err(at)?,
            ("run", "trace_out") => {
                config.trace_out =
                    Some(std::path::PathBuf::from(value.as_one_str(key).map_err(at)?));
            }
            ("run", "metrics_addr") => {
                let addr = value.as_one_str(key).map_err(at)?;
                config.metrics_addr = Some(addr.parse().map_err(|e| {
                    at(format!(
                        "metrics_addr: `{addr}` is not a socket address ({e})"
                    ))
                })?);
            }
            ("", _) => return Err(at(format!("key `{key}` outside [grid]/[run] section"))),
            (_, _) => return Err(at(format!("unknown key `{key}` in section [{section}]"))),
        }
    }
    if grid.ns.is_empty() || grid.cs.is_empty() || !saw_strategies {
        return Err("spec must set grid.n, grid.c, and grid.strategies".into());
    }
    Ok((grid, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_lists_support_values_and_ranges() {
        assert_eq!(parse_usize_list("50,100,200").unwrap(), vec![50, 100, 200]);
        assert_eq!(parse_usize_list("1..=5").unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(parse_usize_list("1..4").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_usize_list("7, 1..=2").unwrap(), vec![7, 1, 2]);
        assert!(parse_usize_list("5..=2").is_err());
        assert!(parse_usize_list("x").is_err());
        assert!(parse_usize_list("").is_err());
    }

    #[test]
    fn flags_build_the_expected_grid() {
        let grid = grid_from_flags(
            "50,100",
            "1..=3",
            "simple,cyclic",
            "fixed:1,uniform:2:8",
            "exact,mc",
            "",
            "",
            "",
        )
        .unwrap();
        assert_eq!(grid.len(), 2 * 3 * 2 * 2 * 2);
        assert!(grid_from_flags("10", "1", "", "fixed:1", "", "", "", "").is_ok());
        assert!(grid_from_flags("10", "1", "", "", "", "", "", "").is_err());
        assert!(grid_from_flags("10", "1", "spiral", "fixed:1", "", "", "", "").is_err());
    }

    #[test]
    fn dynamics_flags_extend_the_grid() {
        use anonroute_core::epochs::{ChurnModel, RotationPolicy};
        let grid = grid_from_flags(
            "20",
            "1",
            "",
            "fixed:2",
            "exact,mc",
            "1,4",
            "static,shift:2",
            "none,iid:0.25",
        )
        .unwrap();
        assert_eq!(grid.epochs, vec![1, 4]);
        assert_eq!(
            grid.rotations,
            vec![RotationPolicy::Static, RotationPolicy::Shift { step: 2 }]
        );
        assert_eq!(
            grid.churns,
            vec![ChurnModel::None, ChurnModel::Iid { rate: 0.25 }]
        );
        assert_eq!(grid.len(), 2 * 2 * 2 * 2);
        assert!(grid_from_flags("20", "1", "", "fixed:2", "", "0", "", "").is_err());
        assert!(grid_from_flags("20", "1", "", "fixed:2", "", "", "spin", "").is_err());
        assert!(grid_from_flags("20", "1", "", "fixed:2", "", "", "", "2.0").is_err());
    }

    #[test]
    fn spec_file_roundtrip() {
        let text = r#"
# fig3-style sweep
[grid]
n = [50, 100]          # system sizes
c = "1..=2"
path = ["simple", "cyclic"]
strategies = ["fixed:1", "uniform:2:8", "geometric:0.75:50"]
engines = ["exact", "mc"]

[run]
threads = 3
seed = 99
mc_samples = 5000
sim_messages = 800
"#;
        let (grid, config) = parse_spec(text, &CampaignConfig::default()).unwrap();
        assert_eq!(grid.ns, vec![50, 100]);
        assert_eq!(grid.cs, vec![1, 2]);
        assert_eq!(grid.path_kinds.len(), 2);
        assert_eq!(grid.strategies.len(), 3);
        assert_eq!(grid.engines.len(), 2);
        assert_eq!(grid.len(), 2 * 2 * 2 * 3 * 2);
        assert_eq!(config.threads, 3);
        assert_eq!(config.seed, 99);
        assert_eq!(config.mc_samples, 5000);
        assert_eq!(config.sim_messages, 800);
    }

    #[test]
    fn config_section_aliases_run_and_carries_live_settings() {
        let text = r#"
[grid]
n = 10
c = 1
strategies = "fixed:2"
engines = ["exact", "live"]

[config]
seed = 5
mc_samples = 1234
sim_messages = 567
sim_max_n = 200000
live_messages = 89
live_timeout_ms = 2500
live_max_n = 12
live_cell_size = 512
live_shared = true
"#;
        let (grid, config) = parse_spec(text, &CampaignConfig::default()).unwrap();
        assert_eq!(grid.engines, vec![EngineKind::Exact, EngineKind::Live]);
        assert_eq!(config.seed, 5);
        assert_eq!(config.mc_samples, 1234);
        assert_eq!(config.sim_messages, 567);
        assert_eq!(config.sim_max_n, 200_000);
        assert_eq!(config.live_messages, 89);
        assert_eq!(config.live_timeout_ms, 2500);
        assert_eq!(config.live_max_n, 12);
        assert_eq!(config.live_cell_size, 512);
        assert!(config.live_shared);
    }

    #[test]
    fn spec_file_carries_dynamics_axes() {
        use anonroute_core::epochs::{ChurnModel, RotationPolicy};
        let text = r#"
[grid]
n = 12
c = 1
strategies = "uniform:1:3"
engines = ["exact", "sim"]
epochs = [1, 3]
rotation = ["static", "resample"]
churn = ["none", "iid:0.2"]
"#;
        let (grid, _) = parse_spec(text, &CampaignConfig::default()).unwrap();
        assert_eq!(grid.epochs, vec![1, 3]);
        assert_eq!(
            grid.rotations,
            vec![RotationPolicy::Static, RotationPolicy::Resample]
        );
        assert_eq!(
            grid.churns,
            vec![ChurnModel::None, ChurnModel::Iid { rate: 0.2 }]
        );
        assert_eq!(grid.len(), 2 * 2 * 2 * 2);
        // zero epochs and malformed policies are rejected with line info
        let bad = "[grid]\nn = 12\nc = 1\nstrategies = \"fixed:1\"\nepochs = [0]\n";
        let err = parse_spec(bad, &CampaignConfig::default()).unwrap_err();
        assert!(err.contains("line 5"), "{err}");
        let bad = "[grid]\nn = 12\nc = 1\nstrategies = \"fixed:1\"\nrotation = \"spin\"\n";
        assert!(parse_spec(bad, &CampaignConfig::default()).is_err());
    }

    #[test]
    fn run_section_carries_observability_switches() {
        let text = r#"
[grid]
n = 10
c = 1
strategies = "fixed:2"

[run]
progress = true
metrics_addr = "127.0.0.1:9464"
"#;
        let (_, config) = parse_spec(text, &CampaignConfig::default()).unwrap();
        assert!(config.progress);
        assert_eq!(config.metrics_addr, Some("127.0.0.1:9464".parse().unwrap()));
        // bad values are rejected with line info
        let bad = "[grid]\nn = 10\nc = 1\nstrategies = \"fixed:2\"\n[run]\nprogress = 1\n";
        let err = parse_spec(bad, &CampaignConfig::default()).unwrap_err();
        assert!(err.contains("line 6"), "{err}");
        let bad =
            "[grid]\nn = 10\nc = 1\nstrategies = \"fixed:2\"\n[run]\nmetrics_addr = \"nope\"\n";
        let err = parse_spec(bad, &CampaignConfig::default()).unwrap_err();
        assert!(err.contains("socket address"), "{err}");
    }

    #[test]
    fn spec_defaults_apply_when_sections_are_minimal() {
        let text = "[grid]\nn = 20\nc = 1\nstrategies = \"fixed:3\"\n";
        let (grid, config) = parse_spec(text, &CampaignConfig::default()).unwrap();
        assert_eq!(grid.len(), 1);
        assert_eq!(config.seed, CampaignConfig::default().seed);
    }

    #[test]
    fn spec_errors_name_the_line() {
        let bad = "[grid]\nn = 10\nc = 1\nwat = 3\n";
        let err = parse_spec(bad, &CampaignConfig::default()).unwrap_err();
        assert!(err.contains("line 4"), "{err}");
        assert!(parse_spec("[nope]\n", &CampaignConfig::default()).is_err());
        assert!(parse_spec("x = 1\n", &CampaignConfig::default()).is_err());
        assert!(parse_spec("[grid]\nn = 10\n", &CampaignConfig::default()).is_err());
    }
}
