//! The per-campaign run manifest: one machine-readable JSON document
//! describing what was swept, how, and what came back.
//!
//! The JSONL/CSV artifacts carry per-cell *results*; the manifest
//! carries run *provenance* — the grid axes, the execution config, the
//! crate version, and the outcome tallies (including wall/CPU time and
//! per-engine breakdowns). It is written next to the result files as
//! `<base>_manifest.json` so a results directory is self-describing.
//!
//! Unlike the JSONL/CSV artifacts, the manifest deliberately includes
//! nondeterministic fields (wall seconds, thread count); the determinism
//! guard covers the result files only.
//!
//! [`validate_manifest`] re-parses a manifest with a self-contained JSON
//! reader and checks the schema contract — CI runs it against the
//! manifest a smoke sweep wrote, so the format cannot drift silently.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::grid::ScenarioGrid;
use crate::report::{json_escape, json_f64};
use crate::runner::{CampaignConfig, CampaignOutcome};

/// The manifest format identifier; bump the suffix on breaking change.
///
/// v2 adds `outcome.status` / `outcome.skipped` (operator control plane:
/// a sweep may end `drained` or `aborted` with only the completed cells
/// present), `outcome.profile` (per-phase second totals over ok cells),
/// and `config.trace_out`.
///
/// v3 adds `config.live_shared` (whether live cells attached to one
/// long-running shared relay network instead of booting per cell).
pub const MANIFEST_SCHEMA: &str = "anonroute-campaign-manifest/v3";

fn json_str_array<T: std::fmt::Display>(items: &[T]) -> String {
    let rendered: Vec<String> = items
        .iter()
        .map(|i| format!("\"{}\"", json_escape(&i.to_string())))
        .collect();
    format!("[{}]", rendered.join(","))
}

fn json_num_array<T: std::fmt::Display>(items: &[T]) -> String {
    let rendered: Vec<String> = items.iter().map(ToString::to_string).collect();
    format!("[{}]", rendered.join(","))
}

/// Renders the manifest document (pretty-printed JSON, trailing newline).
pub fn render_manifest(
    grid: &ScenarioGrid,
    config: &CampaignConfig,
    outcome: &CampaignOutcome,
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    writeln!(out, "  \"schema\": \"{MANIFEST_SCHEMA}\",").expect("write to String");
    writeln!(out, "  \"version\": \"{}\",", env!("CARGO_PKG_VERSION")).expect("write to String");
    out.push_str("  \"grid\": {\n");
    writeln!(out, "    \"ns\": {},", json_num_array(&grid.ns)).expect("write to String");
    writeln!(out, "    \"cs\": {},", json_num_array(&grid.cs)).expect("write to String");
    writeln!(out, "    \"paths\": {},", json_str_array(&grid.path_kinds)).expect("write to String");
    writeln!(
        out,
        "    \"strategies\": {},",
        json_str_array(&grid.strategies)
    )
    .expect("write to String");
    writeln!(out, "    \"engines\": {},", json_str_array(&grid.engines)).expect("write to String");
    writeln!(out, "    \"epochs\": {},", json_num_array(&grid.epochs)).expect("write to String");
    writeln!(
        out,
        "    \"rotations\": {},",
        json_str_array(&grid.rotations)
    )
    .expect("write to String");
    writeln!(out, "    \"churns\": {},", json_str_array(&grid.churns)).expect("write to String");
    writeln!(out, "    \"cells\": {}", grid.len()).expect("write to String");
    out.push_str("  },\n");
    out.push_str("  \"config\": {\n");
    writeln!(out, "    \"seed\": {},", config.seed).expect("write to String");
    writeln!(out, "    \"threads\": {},", config.threads).expect("write to String");
    writeln!(out, "    \"mc_samples\": {},", config.mc_samples).expect("write to String");
    writeln!(out, "    \"sim_messages\": {},", config.sim_messages).expect("write to String");
    writeln!(out, "    \"sim_max_n\": {},", config.sim_max_n).expect("write to String");
    writeln!(out, "    \"live_messages\": {},", config.live_messages).expect("write to String");
    writeln!(out, "    \"live_timeout_ms\": {},", config.live_timeout_ms).expect("write to String");
    writeln!(out, "    \"live_max_n\": {},", config.live_max_n).expect("write to String");
    writeln!(out, "    \"live_cell_size\": {},", config.live_cell_size).expect("write to String");
    writeln!(out, "    \"live_shared\": {},", config.live_shared).expect("write to String");
    writeln!(
        out,
        "    \"trace_out\": {}",
        config.trace_out.as_ref().map_or_else(
            || "null".to_string(),
            |p| format!("\"{}\"", json_escape(&p.display().to_string()))
        )
    )
    .expect("write to String");
    out.push_str("  },\n");
    out.push_str("  \"outcome\": {\n");
    writeln!(out, "    \"status\": \"{}\",", outcome.status.as_str()).expect("write to String");
    writeln!(out, "    \"cells\": {},", outcome.cells.len()).expect("write to String");
    writeln!(out, "    \"skipped\": {},", outcome.skipped).expect("write to String");
    writeln!(out, "    \"ok\": {},", outcome.ok_count()).expect("write to String");
    writeln!(out, "    \"errors\": {},", outcome.error_count()).expect("write to String");
    writeln!(out, "    \"threads\": {},", outcome.threads).expect("write to String");
    writeln!(
        out,
        "    \"wall_seconds\": {},",
        json_f64(outcome.wall.as_secs_f64())
    )
    .expect("write to String");
    writeln!(
        out,
        "    \"cpu_seconds\": {},",
        json_f64(outcome.cpu_micros() as f64 / 1e6)
    )
    .expect("write to String");
    writeln!(out, "    \"cache_hits\": {},", outcome.cache.hits).expect("write to String");
    writeln!(out, "    \"cache_misses\": {},", outcome.cache.misses).expect("write to String");
    // per-phase wall totals over ok cells, in seconds — the operator
    // profile; zeros when a phase does not apply to the engines swept
    let mut phases = crate::backend::PhaseProfile::default();
    for cell in &outcome.cells {
        if let Ok(m) = &cell.outcome {
            phases.setup_us += m.profile.setup_us;
            phases.evaluate_us += m.profile.evaluate_us;
            phases.attack_us += m.profile.attack_us;
            phases.fold_us += m.profile.fold_us;
            phases.boot_us += m.profile.boot_us;
            phases.traffic_us += m.profile.traffic_us;
        }
    }
    out.push_str("    \"profile\": {");
    for (i, (name, micros)) in [
        ("setup_seconds", phases.setup_us),
        ("evaluate_seconds", phases.evaluate_us),
        ("attack_seconds", phases.attack_us),
        ("fold_seconds", phases.fold_us),
        ("boot_seconds", phases.boot_us),
        ("traffic_seconds", phases.traffic_us),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "\"{name}\": {}", json_f64(micros as f64 / 1e6)).expect("write to String");
    }
    out.push_str("},\n");
    // per-engine tallies over the cells actually swept, in a stable
    // (alphabetical) key order so manifests diff cleanly
    let mut engines: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for cell in &outcome.cells {
        let slot = engines.entry(cell.scenario.engine.to_string()).or_default();
        slot.0 += 1;
        if cell.outcome.is_err() {
            slot.1 += 1;
        }
        slot.2 += cell.elapsed_micros;
    }
    out.push_str("    \"engines\": {");
    for (i, (engine, (cells, errors, micros))) in engines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "\n      \"{}\": {{\"cells\": {cells}, \"errors\": {errors}, \"seconds\": {}}}",
            json_escape(engine),
            json_f64(*micros as f64 / 1e6)
        )
        .expect("write to String");
    }
    if !engines.is_empty() {
        out.push('\n');
        out.push_str("    ");
    }
    out.push_str("}\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Writes the manifest to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_manifest(
    path: &Path,
    grid: &ScenarioGrid,
    config: &CampaignConfig,
    outcome: &CampaignOutcome,
) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_manifest(grid, config, outcome))
}

/// Checks that `text` is a well-formed manifest: valid JSON, the
/// expected schema tag, every required section and key present with the
/// right type, a recognized outcome status, and internally consistent
/// tallies (`ok + errors == cells`, `cells + skipped == grid.cells`,
/// engine cells sum to the total, a completed sweep skips nothing).
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn validate_manifest(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let top = doc.as_object("manifest")?;

    let schema = get(top, "schema")?.as_str("schema")?;
    if schema != MANIFEST_SCHEMA {
        return Err(format!(
            "schema mismatch: expected \"{MANIFEST_SCHEMA}\", found \"{schema}\""
        ));
    }
    get(top, "version")?.as_str("version")?;

    let grid = get(top, "grid")?.as_object("grid")?;
    for key in ["ns", "cs", "epochs"] {
        let items = get(grid, key)?.as_array(key)?;
        for item in items {
            item.as_number(key)?;
        }
    }
    for key in ["paths", "strategies", "engines", "rotations", "churns"] {
        let items = get(grid, key)?.as_array(key)?;
        for item in items {
            item.as_str(key)?;
        }
    }
    get(grid, "cells")?.as_number("grid.cells")?;

    let config = get(top, "config")?.as_object("config")?;
    for key in [
        "seed",
        "threads",
        "mc_samples",
        "sim_messages",
        "sim_max_n",
        "live_messages",
        "live_timeout_ms",
        "live_max_n",
        "live_cell_size",
    ] {
        get(config, key)?.as_number(key)?;
    }
    match get(config, "live_shared")? {
        json::Value::Bool(_) => {}
        other => return Err(format!("live_shared: expected a boolean, found {other:?}")),
    }
    match get(config, "trace_out")? {
        json::Value::Null | json::Value::String(_) => {}
        other => {
            return Err(format!(
                "trace_out: expected a string or null, found {other:?}"
            ))
        }
    }

    let outcome = get(top, "outcome")?.as_object("outcome")?;
    for key in [
        "cells",
        "skipped",
        "ok",
        "errors",
        "threads",
        "wall_seconds",
        "cpu_seconds",
        "cache_hits",
        "cache_misses",
    ] {
        get(outcome, key)?.as_number(key)?;
    }
    let status = get(outcome, "status")?.as_str("outcome.status")?;
    if !matches!(status, "completed" | "drained" | "aborted") {
        return Err(format!(
            "outcome.status: expected \"completed\", \"drained\", or \"aborted\", found \"{status}\""
        ));
    }
    let cells = get(outcome, "cells")?.as_number("outcome.cells")?;
    let skipped = get(outcome, "skipped")?.as_number("outcome.skipped")?;
    let ok = get(outcome, "ok")?.as_number("outcome.ok")?;
    let errors = get(outcome, "errors")?.as_number("outcome.errors")?;
    if ok + errors != cells {
        return Err(format!(
            "tally mismatch: ok ({ok}) + errors ({errors}) != cells ({cells})"
        ));
    }
    if status == "completed" && skipped != 0.0 {
        return Err(format!(
            "tally mismatch: a completed sweep cannot skip cells (skipped = {skipped})"
        ));
    }
    let grid_cells = get(grid, "cells")?.as_number("grid.cells")?;
    if cells + skipped != grid_cells {
        return Err(format!(
            "tally mismatch: outcome.cells ({cells}) + skipped ({skipped}) != grid.cells ({grid_cells})"
        ));
    }
    let profile = get(outcome, "profile")?.as_object("outcome.profile")?;
    for key in [
        "setup_seconds",
        "evaluate_seconds",
        "attack_seconds",
        "fold_seconds",
        "boot_seconds",
        "traffic_seconds",
    ] {
        get(profile, key)?.as_number(key)?;
    }
    let engines = get(outcome, "engines")?.as_object("outcome.engines")?;
    let mut engine_cells = 0.0;
    for (engine, tally) in engines {
        let tally = tally.as_object(engine)?;
        engine_cells += get(tally, "cells")?.as_number("engine cells")?;
        get(tally, "errors")?.as_number("engine errors")?;
        get(tally, "seconds")?.as_number("engine seconds")?;
    }
    if engine_cells != cells {
        return Err(format!(
            "tally mismatch: engine cells sum to {engine_cells}, outcome.cells is {cells}"
        ));
    }
    Ok(())
}

fn get<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing required key \"{key}\""))
}

/// A self-contained JSON reader, just big enough to validate manifests
/// (strings with the escapes the writer emits, numbers via `f64`
/// parsing, arrays, objects, literals). Not a general-purpose parser —
/// it rejects anything the grammar doesn't cover rather than guessing.
mod json {
    /// A parsed JSON value. Objects keep insertion order (duplicates
    /// would be a writer bug and are rejected).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, read through `f64`.
        Number(f64),
        /// A string literal, unescaped.
        String(String),
        /// `[...]`
        Array(Vec<Value>),
        /// `{...}`
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Object(fields) => Ok(fields),
                other => Err(format!("{what}: expected an object, found {other:?}")),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Array(items) => Ok(items),
                other => Err(format!("{what}: expected an array, found {other:?}")),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::String(s) => Ok(s),
                other => Err(format!("{what}: expected a string, found {other:?}")),
            }
        }

        pub fn as_number(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Number(n) => Ok(*n),
                other => Err(format!("{what}: expected a number, found {other:?}")),
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                ch as char,
                *pos,
                bytes.get(*pos).map(|b| *b as char)
            ))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {pos}", pos = *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{code:04x}"))?,
                            );
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (bytes is valid UTF-8: it
                    // came from a &str)
                    let rest = std::str::from_utf8(&bytes[*pos..]).expect("input was a str");
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::StrategySpec;
    use crate::runner::run;

    fn swept() -> (ScenarioGrid, CampaignConfig, CampaignOutcome) {
        let grid = ScenarioGrid::new()
            .ns([10])
            .cs([1])
            .strategies([StrategySpec::Fixed(3), StrategySpec::Fixed(20)]);
        let config = CampaignConfig::default();
        let outcome = run(&grid, &config);
        (grid, config, outcome)
    }

    #[test]
    fn rendered_manifests_validate() {
        let (grid, config, outcome) = swept();
        let text = render_manifest(&grid, &config, &outcome);
        validate_manifest(&text).expect("fresh manifest validates");
        assert!(text.contains(MANIFEST_SCHEMA));
        assert!(text.contains("\"status\": \"completed\""));
        assert!(text.contains("\"skipped\": 0"));
        assert!(text.contains("\"trace_out\": null"));
        assert!(text.contains("\"profile\": {\"setup_seconds\": "));
        assert!(text.contains("\"ok\": 1"));
        assert!(text.contains("\"errors\": 1"));
        assert!(text.contains("\"exact\": {\"cells\": 2"));
    }

    #[test]
    fn manifests_survive_a_write_read_cycle() {
        let dir = std::env::temp_dir().join("anonroute-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        let (grid, config, outcome) = swept();
        let path = dir.join("deep/run_manifest.json");
        write_manifest(&path, &grid, &config, &outcome).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        validate_manifest(&text).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let (grid, config, outcome) = swept();
        let good = render_manifest(&grid, &config, &outcome);
        // not JSON at all
        assert!(validate_manifest("nonsense").is_err());
        // truncated document
        assert!(validate_manifest(&good[..good.len() / 2]).is_err());
        // wrong schema tag
        let wrong = good.replace(MANIFEST_SCHEMA, "other/v9");
        assert!(validate_manifest(&wrong).unwrap_err().contains("schema"));
        // missing section
        let gutted = good.replace("\"config\"", "\"renamed\"");
        assert!(validate_manifest(&gutted).unwrap_err().contains("config"));
        // inconsistent tallies
        let skewed = good.replace("\"ok\": 1", "\"ok\": 5");
        assert!(validate_manifest(&skewed)
            .unwrap_err()
            .contains("tally mismatch"));
        // unrecognized sweep status
        let odd = good.replace("\"status\": \"completed\"", "\"status\": \"paused\"");
        assert!(validate_manifest(&odd).unwrap_err().contains("status"));
        // a completed sweep cannot have skipped cells
        let contradictory = good.replace("\"skipped\": 0", "\"skipped\": 1");
        assert!(validate_manifest(&contradictory)
            .unwrap_err()
            .contains("tally mismatch"));
    }

    #[test]
    fn json_reader_handles_escapes_and_rejects_garbage() {
        use super::json::{parse, Value};
        let doc = parse("{\"a\\n\\\"b\": [1, -2.5e1, true, null, \"x\"]}").unwrap();
        let fields = doc.as_object("doc").unwrap();
        assert_eq!(fields[0].0, "a\n\"b");
        let items = fields[0].1.as_array("a").unwrap();
        assert_eq!(items[0], Value::Number(1.0));
        assert_eq!(items[1], Value::Number(-25.0));
        assert_eq!(items[2], Value::Bool(true));
        assert_eq!(items[3], Value::Null);
        assert!(parse("{\"a\":1,\"a\":2}")
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"\\u0041\"").unwrap() == Value::String("A".to_string()));
    }
}
