//! The declarative scenario model: what to evaluate.
//!
//! A [`Scenario`] is one fully specified evaluation point — system size,
//! compromise level, path kind, route-selection strategy, multi-round
//! dynamics (epochs, compromised-set rotation, churn), and the engine
//! used to score it. A [`ScenarioGrid`] is the cartesian product of axis
//! value lists; [`ScenarioGrid::cells`] expands it in a fixed, documented
//! order so downstream output is stable across runs and thread counts.

use anonroute_core::epochs::{ChurnModel, EpochSchedule, RotationPolicy};
use anonroute_core::{optimize, PathKind, PathLengthDist, SystemModel};

/// A route-selection strategy family member, by parameters rather than by
/// realized distribution, so one grid can span system sizes (the same
/// `geometric:0.75:50` cell is infeasible at `n = 20` but fine at
/// `n = 100`, and `optimal` depends on `n` by construction).
#[derive(Debug, Clone, PartialEq)]
pub enum StrategySpec {
    /// `F(l)` — exactly `l` intermediate nodes.
    Fixed(usize),
    /// `U(a, b)` — uniform over `a..=b` intermediate nodes.
    Uniform(usize, usize),
    /// Two-point mixture: `lo` with probability `p`, else `hi`.
    TwoPoint {
        /// First support point.
        lo: usize,
        /// Probability of `lo`.
        p: f64,
        /// Second support point.
        hi: usize,
    },
    /// Crowds-style geometric with forwarding probability `forward_prob`,
    /// truncated at `lmax`.
    Geometric {
        /// Forwarding probability `p_f ∈ [0, 1)`.
        forward_prob: f64,
        /// Truncation point of the geometric tail.
        lmax: usize,
    },
    /// The paper's optimization problem: the `H*`-maximizing distribution,
    /// optionally at a fixed expected path length.
    Optimal {
        /// Equal-overhead constraint `E[L] = mean`, when present.
        mean: Option<f64>,
    },
}

impl StrategySpec {
    /// Parses the CLI/spec-file form (`fixed:5`, `uniform:2:8`,
    /// `twopoint:3:0.5:7`, `geometric:0.75:50`, `optimal`, `optimal:8`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown forms or bad numbers.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let err = |m: &str| format!("strategy `{spec}`: {m}");
        let parts: Vec<&str> = spec.split(':').collect();
        let int = |s: &str| {
            s.parse::<usize>()
                .map_err(|_| err(&format!("bad integer `{s}`")))
        };
        let num = |s: &str| {
            s.parse::<f64>()
                .map_err(|_| err(&format!("bad number `{s}`")))
        };
        match parts.as_slice() {
            ["fixed", l] => Ok(StrategySpec::Fixed(int(l)?)),
            ["uniform", a, b] => {
                let (a, b) = (int(a)?, int(b)?);
                if a > b {
                    return Err(err("bounds out of order"));
                }
                Ok(StrategySpec::Uniform(a, b))
            }
            ["twopoint", lo, p, hi] => Ok(StrategySpec::TwoPoint {
                lo: int(lo)?,
                p: num(p)?,
                hi: int(hi)?,
            }),
            ["geometric", pf, lmax] => Ok(StrategySpec::Geometric {
                forward_prob: num(pf)?,
                lmax: int(lmax)?,
            }),
            ["optimal"] => Ok(StrategySpec::Optimal { mean: None }),
            ["optimal", mean] => Ok(StrategySpec::Optimal { mean: Some(num(mean)?) }),
            _ => Err(err("unknown form (fixed:L | uniform:A:B | twopoint:L1:P:L2 | geometric:PF:LMAX | optimal[:MEAN])")),
        }
    }

    /// The strategy family name (`fixed`, `uniform`, `twopoint`,
    /// `geometric`, `optimal`).
    pub fn family(&self) -> &'static str {
        match self {
            StrategySpec::Fixed(_) => "fixed",
            StrategySpec::Uniform(..) => "uniform",
            StrategySpec::TwoPoint { .. } => "twopoint",
            StrategySpec::Geometric { .. } => "geometric",
            StrategySpec::Optimal { .. } => "optimal",
        }
    }

    /// Realizes the concrete path-length distribution under `model`.
    ///
    /// For [`StrategySpec::Optimal`] this solves the paper's optimization
    /// problem (deterministically — the solver is seed-free), over support
    /// `0..=min(n-1, bound)` where the bound keeps sweep cells affordable.
    ///
    /// # Errors
    ///
    /// Propagates distribution construction/validation errors (e.g. a
    /// fixed length exceeding `n - 1` on simple paths) as strings so a
    /// sweep can record infeasible cells instead of aborting.
    pub fn realize(&self, model: &SystemModel) -> Result<PathLengthDist, String> {
        let dist = match self {
            StrategySpec::Fixed(l) => PathLengthDist::fixed(*l),
            StrategySpec::Uniform(a, b) => {
                PathLengthDist::uniform(*a, *b).map_err(|e| e.to_string())?
            }
            StrategySpec::TwoPoint { lo, p, hi } => {
                PathLengthDist::two_point(*lo, *p, *hi).map_err(|e| e.to_string())?
            }
            StrategySpec::Geometric { forward_prob, lmax } => {
                PathLengthDist::geometric(*forward_prob, *lmax).map_err(|e| e.to_string())?
            }
            StrategySpec::Optimal { mean } => {
                if model.path_kind() != PathKind::Simple {
                    return Err(
                        "optimal strategies cover the paper's simple-path design space".into(),
                    );
                }
                let outcome = match mean {
                    Some(m) => {
                        let lmax = (model.n() - 1).min(2 * m.ceil() as usize + 20);
                        optimize::maximize_with_mean(model, lmax, *m).map_err(|e| e.to_string())?
                    }
                    None => {
                        let lmax = (model.n() - 1).min(60);
                        optimize::maximize(model, lmax).map_err(|e| e.to_string())?
                    }
                };
                outcome.dist
            }
        };
        model.validate_dist(&dist).map_err(|e| e.to_string())?;
        Ok(dist)
    }
}

impl std::fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategySpec::Fixed(l) => write!(f, "fixed:{l}"),
            StrategySpec::Uniform(a, b) => write!(f, "uniform:{a}:{b}"),
            StrategySpec::TwoPoint { lo, p, hi } => write!(f, "twopoint:{lo}:{p}:{hi}"),
            StrategySpec::Geometric { forward_prob, lmax } => {
                write!(f, "geometric:{forward_prob}:{lmax}")
            }
            StrategySpec::Optimal { mean: None } => write!(f, "optimal"),
            StrategySpec::Optimal { mean: Some(m) } => write!(f, "optimal:{m}"),
        }
    }
}

/// Which evaluation backend scores a cell (see [`crate::backend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Closed-form exact `H*` (the paper's analysis).
    Exact,
    /// Seeded Monte-Carlo estimation over sampled observations.
    MonteCarlo,
    /// Full protocol simulation attacked by the passive adversary
    /// (onion routing on simple paths, Crowds on cyclic paths).
    Simulated,
    /// A real loopback TCP relay cluster: onion circuits over sockets,
    /// attacked through the per-link observation tap.
    Live,
}

impl EngineKind {
    /// Every engine, in canonical (cheapest-first) order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Exact,
        EngineKind::MonteCarlo,
        EngineKind::Simulated,
        EngineKind::Live,
    ];

    /// Parses `exact`, `mc`/`montecarlo`, `sim`/`simulated`, or `live`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(EngineKind::Exact),
            "mc" | "montecarlo" | "monte-carlo" => Ok(EngineKind::MonteCarlo),
            "sim" | "simulated" => Ok(EngineKind::Simulated),
            "live" => Ok(EngineKind::Live),
            other => Err(format!(
                "engine `{other}`: expected exact | mc | sim | live"
            )),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Exact => write!(f, "exact"),
            EngineKind::MonteCarlo => write!(f, "mc"),
            EngineKind::Simulated => write!(f, "sim"),
            EngineKind::Live => write!(f, "live"),
        }
    }
}

/// Parses a [`PathKind`] axis value (`simple` | `cyclic`).
///
/// # Errors
///
/// Returns a message naming the accepted forms.
pub fn parse_path_kind(s: &str) -> Result<PathKind, String> {
    match s {
        "simple" => Ok(PathKind::Simple),
        "cyclic" => Ok(PathKind::Cyclic),
        other => Err(format!("path kind `{other}`: expected simple | cyclic")),
    }
}

/// One fully specified evaluation point.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// System size `n`.
    pub n: usize,
    /// Compromised node count `c`.
    pub c: usize,
    /// Path-construction rule.
    pub path_kind: PathKind,
    /// Route-selection strategy.
    pub strategy: StrategySpec,
    /// Multi-round dynamics (epoch count, rotation, churn);
    /// [`EpochSchedule::one_shot`] is the classic single-round cell.
    pub dynamics: EpochSchedule,
    /// Scoring engine.
    pub engine: EngineKind,
}

impl Scenario {
    /// Parses the [`Display`](std::fmt::Display) form back into a
    /// scenario (`n=100 c=1 simple uniform:2:8 [exact]`, with an
    /// optional dynamics token before the engine for multi-round cells:
    /// `n=100 c=1 simple uniform:2:8 epochs=3;churn=iid:0.2 [sim]`), so
    /// rendered cell identities in logs and reports are
    /// machine-recoverable.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed text.
    pub fn parse(s: &str) -> Result<Self, String> {
        let err = |m: &str| format!("scenario `{s}`: {m}");
        let parts: Vec<&str> = s.split_whitespace().collect();
        let (n, c, path, strategy, dynamics, engine) = match parts.as_slice() {
            [n, c, path, strategy, engine] => (n, c, path, strategy, None, engine),
            [n, c, path, strategy, dynamics, engine] => {
                (n, c, path, strategy, Some(dynamics), engine)
            }
            _ => return Err(err("expected `n=N c=C PATH STRATEGY [DYNAMICS] [ENGINE]`")),
        };
        let n = n
            .strip_prefix("n=")
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| err("bad `n=` field"))?;
        let c = c
            .strip_prefix("c=")
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| err("bad `c=` field"))?;
        let engine = engine
            .strip_prefix('[')
            .and_then(|v| v.strip_suffix(']'))
            .ok_or_else(|| err("engine must be bracketed"))?;
        let dynamics = match dynamics {
            None => EpochSchedule::one_shot(),
            Some(d) => EpochSchedule::parse(d).map_err(|m| err(&m))?,
        };
        Ok(Scenario {
            n,
            c,
            path_kind: parse_path_kind(path).map_err(|m| err(&m))?,
            strategy: StrategySpec::parse(strategy).map_err(|m| err(&m))?,
            dynamics,
            engine: EngineKind::parse(engine).map_err(|m| err(&m))?,
        })
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} c={} {} {}",
            self.n, self.c, self.path_kind, self.strategy
        )?;
        if !self.dynamics.is_one_shot() {
            write!(f, " {}", self.dynamics)?;
        }
        write!(f, " [{}]", self.engine)
    }
}

/// A declarative cartesian grid of scenarios.
///
/// # Examples
///
/// ```
/// use anonroute_campaign::{EngineKind, ScenarioGrid, StrategySpec};
///
/// let grid = ScenarioGrid::new()
///     .ns([50, 100])
///     .cs([1, 2, 3])
///     .strategies((1..=5).map(StrategySpec::Fixed))
///     .engines([EngineKind::Exact]);
/// assert_eq!(grid.len(), 2 * 3 * 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// System sizes.
    pub ns: Vec<usize>,
    /// Compromised counts.
    pub cs: Vec<usize>,
    /// Path kinds (defaults to `[Simple]`).
    pub path_kinds: Vec<PathKind>,
    /// Strategies.
    pub strategies: Vec<StrategySpec>,
    /// Engines (defaults to `[Exact]`).
    pub engines: Vec<EngineKind>,
    /// Epoch counts (defaults to `[1]` — one-shot).
    pub epochs: Vec<usize>,
    /// Compromised-set rotation policies (defaults to `[Static]`).
    pub rotations: Vec<RotationPolicy>,
    /// Churn models (defaults to `[None]`).
    pub churns: Vec<ChurnModel>,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        ScenarioGrid {
            ns: Vec::new(),
            cs: Vec::new(),
            path_kinds: vec![PathKind::Simple],
            strategies: Vec::new(),
            engines: vec![EngineKind::Exact],
            epochs: vec![1],
            rotations: vec![RotationPolicy::Static],
            churns: vec![ChurnModel::None],
        }
    }
}

impl ScenarioGrid {
    /// Empty grid with default path-kind (`simple`) and engine (`exact`)
    /// axes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the system-size axis.
    pub fn ns(mut self, ns: impl IntoIterator<Item = usize>) -> Self {
        self.ns = ns.into_iter().collect();
        self
    }

    /// Sets the compromised-count axis.
    pub fn cs(mut self, cs: impl IntoIterator<Item = usize>) -> Self {
        self.cs = cs.into_iter().collect();
        self
    }

    /// Sets the path-kind axis.
    pub fn path_kinds(mut self, kinds: impl IntoIterator<Item = PathKind>) -> Self {
        self.path_kinds = kinds.into_iter().collect();
        self
    }

    /// Sets the strategy axis.
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = StrategySpec>) -> Self {
        self.strategies = strategies.into_iter().collect();
        self
    }

    /// Sets the engine axis.
    pub fn engines(mut self, engines: impl IntoIterator<Item = EngineKind>) -> Self {
        self.engines = engines.into_iter().collect();
        self
    }

    /// Sets the epoch-count axis.
    pub fn epochs(mut self, epochs: impl IntoIterator<Item = usize>) -> Self {
        self.epochs = epochs.into_iter().collect();
        self
    }

    /// Sets the rotation-policy axis.
    pub fn rotations(mut self, rotations: impl IntoIterator<Item = RotationPolicy>) -> Self {
        self.rotations = rotations.into_iter().collect();
        self
    }

    /// Sets the churn-model axis.
    pub fn churns(mut self, churns: impl IntoIterator<Item = ChurnModel>) -> Self {
        self.churns = churns.into_iter().collect();
        self
    }

    /// Number of cells in the cartesian product.
    pub fn len(&self) -> usize {
        self.ns.len()
            * self.cs.len()
            * self.path_kinds.len()
            * self.strategies.len()
            * self.engines.len()
            * self.epochs.len()
            * self.rotations.len()
            * self.churns.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid in its canonical order: `n` outermost, then `c`,
    /// path kind, strategy, engine, and the dynamics axes (epochs, then
    /// rotation, then churn) innermost. Cell index in this expansion is
    /// the stable identity used for seeding and output; grids that leave
    /// the dynamics axes at their defaults keep their pre-dynamics
    /// indices (and therefore their seeds) unchanged.
    pub fn cells(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for &n in &self.ns {
            for &c in &self.cs {
                for &path_kind in &self.path_kinds {
                    for strategy in &self.strategies {
                        for &engine in &self.engines {
                            for &epochs in &self.epochs {
                                for &rotation in &self.rotations {
                                    for &churn in &self.churns {
                                        out.push(Scenario {
                                            n,
                                            c,
                                            path_kind,
                                            strategy: strategy.clone(),
                                            dynamics: EpochSchedule {
                                                epochs,
                                                rotation,
                                                churn,
                                            },
                                            engine,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_display_roundtrip() {
        for s in [
            "fixed:5",
            "uniform:2:8",
            "twopoint:3:0.5:7",
            "geometric:0.75:50",
            "optimal",
            "optimal:8",
        ] {
            let spec = StrategySpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(StrategySpec::parse(&spec.to_string()).unwrap(), spec);
        }
        assert!(StrategySpec::parse("uniform:9:2").is_err());
        assert!(StrategySpec::parse("bogus:1").is_err());
        assert!(StrategySpec::parse("fixed:x").is_err());
    }

    #[test]
    fn realize_matches_direct_construction() {
        let model = SystemModel::new(50, 1).unwrap();
        assert_eq!(
            StrategySpec::Fixed(5).realize(&model).unwrap(),
            PathLengthDist::fixed(5)
        );
        assert_eq!(
            StrategySpec::Uniform(2, 8).realize(&model).unwrap(),
            PathLengthDist::uniform(2, 8).unwrap()
        );
    }

    #[test]
    fn realize_rejects_infeasible_cells() {
        let model = SystemModel::new(5, 1).unwrap();
        assert!(StrategySpec::Fixed(5).realize(&model).is_err());
        let cyclic = SystemModel::with_path_kind(5, 1, PathKind::Cyclic).unwrap();
        assert!(StrategySpec::Fixed(5).realize(&cyclic).is_ok());
        assert!(StrategySpec::Optimal { mean: None }
            .realize(&cyclic)
            .is_err());
    }

    #[test]
    fn optimal_spec_solves_the_optimization_problem() {
        let model = SystemModel::new(30, 1).unwrap();
        let dist = StrategySpec::Optimal { mean: Some(4.0) }
            .realize(&model)
            .unwrap();
        assert!((dist.mean() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn grid_expansion_order_is_canonical() {
        let grid = ScenarioGrid::new()
            .ns([10, 20])
            .cs([1, 2])
            .strategies([StrategySpec::Fixed(1), StrategySpec::Fixed(2)]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(
            (cells[0].n, cells[0].c, cells[0].strategy.clone()),
            (10, 1, StrategySpec::Fixed(1))
        );
        assert_eq!(
            (cells[1].n, cells[1].c, cells[1].strategy.clone()),
            (10, 1, StrategySpec::Fixed(2))
        );
        assert_eq!((cells[2].n, cells[2].c), (10, 2));
        assert_eq!((cells[4].n, cells[4].c), (20, 1));
        assert!(cells.iter().all(|s| s.engine == EngineKind::Exact));
        assert!(cells.iter().all(|s| s.path_kind == PathKind::Simple));
    }

    #[test]
    fn engine_and_path_parsing() {
        assert_eq!(EngineKind::parse("exact").unwrap(), EngineKind::Exact);
        assert_eq!(EngineKind::parse("mc").unwrap(), EngineKind::MonteCarlo);
        assert_eq!(EngineKind::parse("sim").unwrap(), EngineKind::Simulated);
        assert_eq!(EngineKind::parse("live").unwrap(), EngineKind::Live);
        assert!(EngineKind::parse("x").is_err());
        assert_eq!(parse_path_kind("cyclic").unwrap(), PathKind::Cyclic);
        assert!(parse_path_kind("loop").is_err());
        // every engine's Display round-trips through parse
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(&kind.to_string()).unwrap(), kind);
        }
    }

    #[test]
    fn scenario_display_round_trips() {
        for kind in EngineKind::ALL {
            let scenario = Scenario {
                n: 42,
                c: 3,
                path_kind: PathKind::Cyclic,
                strategy: StrategySpec::TwoPoint {
                    lo: 2,
                    p: 0.25,
                    hi: 7,
                },
                dynamics: EpochSchedule::one_shot(),
                engine: kind,
            };
            let text = scenario.to_string();
            assert_eq!(Scenario::parse(&text).unwrap(), scenario, "{text}");
        }
        assert!(Scenario::parse("n=5 c=1 simple fixed:1").is_err());
        assert!(Scenario::parse("n=x c=1 simple fixed:1 [exact]").is_err());
        assert!(Scenario::parse("n=5 c=1 simple fixed:1 exact").is_err());
    }

    #[test]
    fn multi_round_scenarios_round_trip_with_a_dynamics_token() {
        let scenario = Scenario {
            n: 30,
            c: 2,
            path_kind: PathKind::Simple,
            strategy: StrategySpec::Uniform(1, 5),
            dynamics: EpochSchedule {
                epochs: 4,
                rotation: RotationPolicy::Shift { step: 2 },
                churn: ChurnModel::Iid { rate: 0.25 },
            },
            engine: EngineKind::Simulated,
        };
        let text = scenario.to_string();
        assert_eq!(
            text,
            "n=30 c=2 simple uniform:1:5 epochs=4;rotation=shift:2;churn=iid:0.25 [sim]"
        );
        assert_eq!(Scenario::parse(&text).unwrap(), scenario);
        // one-shot cells keep the legacy five-token form
        let one_shot = Scenario {
            dynamics: EpochSchedule::one_shot(),
            ..scenario
        };
        assert_eq!(one_shot.to_string(), "n=30 c=2 simple uniform:1:5 [sim]");
        assert!(Scenario::parse("n=5 c=1 simple fixed:1 epochs=0 [exact]").is_err());
    }

    #[test]
    fn dynamics_axes_expand_innermost() {
        let grid = ScenarioGrid::new()
            .ns([10])
            .cs([1])
            .strategies([StrategySpec::Fixed(2)])
            .epochs([1, 3])
            .churns([ChurnModel::None, ChurnModel::Iid { rate: 0.2 }]);
        assert_eq!(grid.len(), 4);
        let cells = grid.cells();
        assert_eq!(cells[0].dynamics.epochs, 1);
        assert_eq!(cells[0].dynamics.churn, ChurnModel::None);
        assert_eq!(cells[1].dynamics.churn, ChurnModel::Iid { rate: 0.2 });
        assert_eq!(cells[2].dynamics.epochs, 3);
        assert!(cells[0].dynamics.is_one_shot());
        // default grids keep their pre-dynamics cell count and order
        let legacy = ScenarioGrid::new()
            .ns([10, 20])
            .cs([1])
            .strategies([StrategySpec::Fixed(2)]);
        assert_eq!(legacy.len(), 2);
        assert!(legacy.cells().iter().all(|s| s.dynamics.is_one_shot()));
    }
}
