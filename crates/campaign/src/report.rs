//! Structured campaign output: JSON Lines, CSV, and a human summary.
//!
//! The numeric payload of a cell is a pure function of `(grid, config)`,
//! so rendered lines are byte-identical across runs and thread counts —
//! the determinism tests pin this. Wall-clock timing is inherently
//! nondeterministic and is therefore *opt-in* per call (`include_timing`),
//! keeping the default artifacts diffable.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::runner::{CampaignOutcome, CellResult};

/// Renders one cell as a JSON object (one line, no trailing newline).
pub fn jsonl_line(cell: &CellResult, include_timing: bool) -> String {
    let mut out = String::with_capacity(256);
    let s = &cell.scenario;
    write!(
        out,
        "{{\"cell\":{},\"n\":{},\"c\":{},\"path\":\"{}\",\"strategy\":\"{}\",\"family\":\"{}\",\"engine\":\"{}\",\"dynamics\":\"{}\",\"seed\":{}",
        cell.index,
        s.n,
        s.c,
        s.path_kind,
        json_escape(&s.strategy.to_string()),
        s.strategy.family(),
        s.engine,
        json_escape(&s.dynamics.to_string()),
        cell.seed,
    )
    .expect("writing to a String cannot fail");
    match &cell.outcome {
        Ok(m) => {
            write!(
                out,
                ",\"status\":\"ok\",\"h_star\":{},\"normalized\":{},\"mean_len\":{},\"p_exposed\":{},\"std_error\":{},\"samples\":{},\"epochs\":{},\"h_epoch1\":{}",
                json_f64(m.h_star),
                json_f64(m.normalized),
                json_f64(m.mean_len),
                json_opt_f64(m.p_exposed),
                json_opt_f64(m.std_error),
                m.samples.map_or_else(|| "null".into(), |v| v.to_string()),
                m.epochs,
                json_opt_f64(m.h_epoch1),
            )
            .expect("writing to a String cannot fail");
        }
        Err(e) => {
            write!(
                out,
                ",\"status\":\"error\",\"error\":\"{}\"",
                json_escape(e)
            )
            .expect("writing to a String cannot fail");
        }
    }
    if include_timing {
        write!(out, ",\"elapsed_us\":{}", cell.elapsed_micros)
            .expect("writing to a String cannot fail");
        if let Ok(m) = &cell.outcome {
            let p = m.profile;
            write!(
                out,
                ",\"profile\":{{\"setup_us\":{},\"evaluate_us\":{},\"attack_us\":{},\"fold_us\":{},\"boot_us\":{},\"traffic_us\":{}}}",
                p.setup_us, p.evaluate_us, p.attack_us, p.fold_us, p.boot_us, p.traffic_us,
            )
            .expect("writing to a String cannot fail");
        }
    }
    out.push('}');
    out
}

/// Renders the whole outcome as JSON Lines.
pub fn render_jsonl(outcome: &CampaignOutcome, include_timing: bool) -> String {
    let mut out = String::new();
    for cell in &outcome.cells {
        out.push_str(&jsonl_line(cell, include_timing));
        out.push('\n');
    }
    out
}

/// Writes the outcome to `path` as JSON Lines, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_jsonl(
    path: &Path,
    outcome: &CampaignOutcome,
    include_timing: bool,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_jsonl(outcome, include_timing))
}

/// CSV column header matching [`render_csv`].
pub const CSV_HEADER: &str =
    "cell,n,c,path,strategy,family,engine,dynamics,seed,status,h_star,normalized,mean_len,p_exposed,std_error,samples,epochs,h_epoch1,error";

/// Renders the whole outcome as CSV (header + one row per cell).
pub fn render_csv(outcome: &CampaignOutcome) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for cell in &outcome.cells {
        let s = &cell.scenario;
        write!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            cell.index,
            s.n,
            s.c,
            s.path_kind,
            csv_sanitize(&s.strategy.to_string()),
            s.strategy.family(),
            s.engine,
            csv_sanitize(&s.dynamics.to_string()),
            cell.seed,
        )
        .expect("writing to a String cannot fail");
        match &cell.outcome {
            Ok(m) => {
                write!(
                    out,
                    ",ok,{},{},{},{},{},{},{},{},",
                    m.h_star,
                    m.normalized,
                    m.mean_len,
                    m.p_exposed.map_or_else(String::new, |v| v.to_string()),
                    m.std_error.map_or_else(String::new, |v| v.to_string()),
                    m.samples.map_or_else(String::new, |v| v.to_string()),
                    m.epochs,
                    m.h_epoch1.map_or_else(String::new, |v| v.to_string()),
                )
                .expect("writing to a String cannot fail");
            }
            Err(e) => {
                write!(out, ",error,,,,,,,,,{}", csv_sanitize(e))
                    .expect("writing to a String cannot fail");
            }
        }
        out.push('\n');
    }
    out
}

/// Writes the outcome to `path` as CSV, creating parent directories as
/// needed.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(path: &Path, outcome: &CampaignOutcome) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_csv(outcome))
}

/// Writes per-cell wall times and phase breakdowns to `path` as CSV —
/// timing lives in its own artifact so the main results stay
/// byte-reproducible.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_timings_csv(path: &Path, outcome: &CampaignOutcome) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(
        f,
        "cell,n,c,path,strategy,engine,elapsed_us,setup_us,evaluate_us,attack_us,fold_us,boot_us,traffic_us"
    )?;
    for cell in &outcome.cells {
        let s = &cell.scenario;
        // error cells carry a zeroed profile: the columns stay aligned
        let p = cell.outcome.as_ref().map(|m| m.profile).unwrap_or_default();
        writeln!(
            f,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            cell.index,
            s.n,
            s.c,
            s.path_kind,
            csv_sanitize(&s.strategy.to_string()),
            s.engine,
            cell.elapsed_micros,
            p.setup_us,
            p.evaluate_us,
            p.attack_us,
            p.fold_us,
            p.boot_us,
            p.traffic_us,
        )?;
    }
    Ok(())
}

/// Human-readable run summary with throughput, cache, and the slowest
/// cells.
pub fn summary(outcome: &CampaignOutcome) -> String {
    let mut out = String::new();
    let wall_s = outcome.wall.as_secs_f64();
    let cells = outcome.cells.len();
    writeln!(
        out,
        "campaign: {cells} cells ({} ok, {} infeasible) on {} thread(s) in {:.3}s ({:.1} cells/s)",
        outcome.ok_count(),
        outcome.error_count(),
        outcome.threads,
        wall_s,
        if wall_s > 0.0 {
            cells as f64 / wall_s
        } else {
            f64::INFINITY
        },
    )
    .expect("writing to a String cannot fail");
    if outcome.status != crate::runner::SweepStatus::Completed {
        writeln!(
            out,
            "sweep {}: {} cell(s) skipped by the control plane",
            outcome.status.as_str(),
            outcome.skipped,
        )
        .expect("writing to a String cannot fail");
    }
    writeln!(
        out,
        "evaluator cache: {} built, {} reused; cell cpu time {:.3}s (speedup ×{:.2})",
        outcome.cache.misses,
        outcome.cache.hits,
        outcome.cpu_micros() as f64 / 1e6,
        if wall_s > 0.0 {
            outcome.cpu_micros() as f64 / 1e6 / wall_s
        } else {
            f64::NAN
        },
    )
    .expect("writing to a String cannot fail");
    let mut slowest: Vec<&CellResult> = outcome.cells.iter().collect();
    slowest.sort_by_key(|c| std::cmp::Reverse(c.elapsed_micros));
    for cell in slowest.iter().take(3) {
        writeln!(
            out,
            "  slow cell #{}: {} ({:.3}s)",
            cell.index,
            cell.scenario,
            cell.elapsed_micros as f64 / 1e6
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Flattens a free-form string into one CSV field: the separator and
/// record breaks are substituted so naive split-on-comma/line parsers
/// keep their field and row counts, and double quotes become
/// apostrophes so RFC-4180 readers never mistake the (unquoted) field
/// for a quoted one — whatever an error message contains.
fn csv_sanitize(s: &str) -> String {
    s.replace(',', ";")
        .replace('"', "'")
        .replace(['\r', '\n'], " ")
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let text = v.to_string();
        // JSON requires a fraction or integer form; Rust's shortest-repr
        // Display of finite f64 already satisfies it
        text
    } else {
        "null".into()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), json_f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{ScenarioGrid, StrategySpec};
    use crate::runner::{run, CampaignConfig};

    fn outcome() -> CampaignOutcome {
        let grid = ScenarioGrid::new()
            .ns([10])
            .cs([1])
            .strategies([StrategySpec::Fixed(3), StrategySpec::Fixed(20)]);
        run(&grid, &CampaignConfig::default())
    }

    #[test]
    fn jsonl_has_one_valid_object_per_cell() {
        let out = outcome();
        let text = render_jsonl(&out, false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"cell\":0,"));
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[0].contains("\"h_star\":"));
        assert!(lines[1].contains("\"status\":\"error\""));
        assert!(!lines[0].contains("elapsed_us"));
        let timed = render_jsonl(&out, true);
        assert!(timed.lines().next().unwrap().contains("\"elapsed_us\":"));
        for line in text.lines() {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(line.matches('"').count() % 2, 0);
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let out = outcome();
        let text = render_csv(&out);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].matches(',').count(), lines[1].matches(',').count());
        assert_eq!(lines[0].matches(',').count(), lines[2].matches(',').count());
    }

    #[test]
    fn files_are_written_with_parents_created() {
        let dir = std::env::temp_dir().join("anonroute-campaign-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = outcome();
        let jsonl = dir.join("deep/run.jsonl");
        let csv = dir.join("deep/run.csv");
        let timings = dir.join("deep/timings.csv");
        write_jsonl(&jsonl, &out, false).unwrap();
        write_csv(&csv, &out).unwrap();
        write_timings_csv(&timings, &out).unwrap();
        assert!(std::fs::read_to_string(&jsonl).unwrap().lines().count() == 2);
        assert!(std::fs::read_to_string(&timings)
            .unwrap()
            .contains("elapsed_us"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_mentions_cache_and_throughput() {
        let text = summary(&outcome());
        assert!(text.contains("cells/s"));
        assert!(text.contains("evaluator cache"));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    /// An error cell carrying `error` as its outcome, as a wedged live
    /// cluster or failing backend would produce.
    fn error_cell(index: usize, error: &str) -> CellResult {
        use crate::grid::{EngineKind, Scenario, StrategySpec};
        use anonroute_core::{EpochSchedule, PathKind};
        CellResult {
            index,
            scenario: Scenario {
                n: 8,
                c: 1,
                path_kind: PathKind::Simple,
                strategy: StrategySpec::Fixed(2),
                dynamics: EpochSchedule::rounds(2),
                engine: EngineKind::Live,
            },
            seed: 99,
            elapsed_micros: 1,
            outcome: Err(error.to_string()),
        }
    }

    /// The nastiest plausible error strings: CSV separators, quotes, CR,
    /// LF, tabs, JSON escapes — e.g. OS socket errors quoting addresses,
    /// or a panic payload spanning lines.
    const NASTY_ERRORS: &[&str] = &[
        "connection refused: 127.0.0.1:0, retries=3",
        "panic: \"tap lock\" poisoned\nwhile serving relay 2",
        "bad frame,\r\nraw bytes: \"\\x00\\x01\", tag=9",
        "tab\there, and a trailing newline\n",
    ];

    #[test]
    fn error_cells_with_hostile_strings_stay_parseable_in_csv() {
        let outcome = CampaignOutcome {
            cells: NASTY_ERRORS
                .iter()
                .enumerate()
                .map(|(i, e)| error_cell(i, e))
                .collect(),
            wall: std::time::Duration::from_millis(1),
            threads: 1,
            cache: Default::default(),
            status: crate::runner::SweepStatus::Completed,
            skipped: 0,
        };
        let text = render_csv(&outcome);
        let lines: Vec<&str> = text.lines().collect();
        // one header + one row per cell: no error string may add rows
        assert_eq!(lines.len(), 1 + NASTY_ERRORS.len());
        let field_count = CSV_HEADER.split(',').count();
        for row in &lines[1..] {
            assert_eq!(
                row.split(',').count(),
                field_count,
                "field count drifted: {row}"
            );
            assert!(row.contains(",error,"), "status column survives: {row}");
        }
        assert!(!text.contains('\r'), "carriage returns must be flattened");
        // no raw double quote may survive: an unquoted field starting
        // with `"` would derail RFC-4180 readers (Python csv, Excel)
        assert!(!text.contains('"'), "double quotes must be substituted");
    }

    #[test]
    fn error_cells_with_hostile_strings_stay_parseable_in_jsonl() {
        for (i, error) in NASTY_ERRORS.iter().enumerate() {
            let line = jsonl_line(&error_cell(i, error), false);
            // one physical line per cell, whatever the error contains
            assert_eq!(line.lines().count(), 1, "{line}");
            assert!(!line.contains('\r'));
            // structurally valid JSON: balanced braces outside strings,
            // even quote count (every `"` in the payload is escaped)
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(
                line.chars().filter(|&c| c == '"').count() % 2,
                0,
                "unbalanced quotes: {line}"
            );
            assert!(line.contains("\"status\":\"error\""));
            // the escaped error text round-trips: unescape and compare
            let start = line.find("\"error\":\"").unwrap() + "\"error\":\"".len();
            let end = line.rfind('"').unwrap();
            let unescaped = line[start..end]
                .replace("\\\"", "\"")
                .replace("\\n", "\n")
                .replace("\\r", "\r")
                .replace("\\t", "\t")
                .replace("\\\\", "\\");
            assert_eq!(&unescaped, error);
        }
    }
}
