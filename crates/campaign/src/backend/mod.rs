//! The pluggable evaluation-backend layer: how a cell gets scored.
//!
//! A campaign cell is *what* to evaluate (a [`Scenario`]); an
//! [`EvalBackend`] is *how*. The four registered backends span the whole
//! fidelity spectrum over one interface:
//!
//! | engine | backend | mechanism |
//! |--------|---------|-----------|
//! | `exact` | [`exact::ExactBackend`] | closed-form analysis (shared memoized tables) |
//! | `mc` | [`monte_carlo::MonteCarloBackend`] | seeded observation sampling |
//! | `sim` | [`simulated::SimulatedBackend`] | in-process protocol simulation + Bayesian attack |
//! | `live` | [`live::LiveBackend`] | a real loopback TCP relay cluster + the same attack |
//!
//! The runner ([`crate::runner`]) is a pure scheduler: it expands the
//! grid, derives per-cell seeds, realizes the model/strategy, and hands a
//! [`CellCtx`] to whichever backend the registry returns for the cell's
//! [`EngineKind`]. It knows nothing about how any cell is scored.
//!
//! ## Determinism contract
//!
//! Every backend must be a pure function of its [`CellCtx`] — two calls
//! with equal contexts return equal [`CellMetrics`] — because the sweep
//! promises bit-identical output at any thread count and across reruns:
//!
//! * **exact** — seed-free closed form; identical across seeds too.
//! * **mc** / **sim** — all randomness flows from `ctx.seed`.
//! * **live** — route sampling, identities, handshake ephemerals, nonces,
//!   and payload junk all derive from `ctx.seed`, and the adversary's
//!   observations depend only on the trace *structure* (per-message record
//!   order equals path order by the tap's contract), so the measured `H*`
//!   is deterministic per seed even though TCP scheduling and wall-clock
//!   timestamps are not. Only `CellResult::elapsed_micros` (excluded from
//!   default artifacts) varies.
//!
//! ## Multi-epoch cells
//!
//! When a cell's [`EpochSchedule`](anonroute_core::epochs::EpochSchedule)
//! spans several rounds, the runner realizes the per-epoch views (churn,
//! rotation) from the **engine-free dynamics seed**
//! ([`crate::runner::dynamics_seed`]) so every engine scores the *same*
//! network evolution, while session/workload sampling stays on the
//! per-cell seed. Trace-producing backends run one epoch at a time over
//! the epoch's active set and feed the folded traces to
//! [`anonroute_adversary::intersection_attack`]; the analytic backends
//! sample sessions with exact per-round posteriors
//! ([`anonroute_core::epochs::estimate_decay`]). Either way the cell
//! reports the *cumulative* anonymity after the final epoch plus the
//! epoch-1 anchor.

pub mod exact;
pub mod live;
pub mod monte_carlo;
pub mod simulated;

use std::time::Instant;

use anonroute_adversary::{attack_trace, intersection_attack, Adversary, EpochTrace};
use anonroute_core::engine::EvaluatorCache;
use anonroute_core::epochs::{DecayCurve, EpochView};
use anonroute_core::{PathLengthDist, SampledDegree, SystemModel};
use anonroute_sim::{MsgId, Origination, TransferRecord};

use crate::grid::{EngineKind, Scenario};
use crate::runner::CampaignConfig;

/// Everything a backend may consult to score one cell. The runner
/// guarantees `model` and `dist` are already realized and validated for
/// `scenario` (including per-epoch feasibility under churn), that
/// `views` are the cell's realized epochs — derived from the engine-free
/// `dynamics_seed`, never the per-cell seed, so engine variants of one
/// scenario see the same per-epoch networks — and that `seed` is the
/// cell's derived deterministic seed.
#[derive(Debug)]
pub struct CellCtx<'a> {
    /// The cell being evaluated.
    pub scenario: &'a Scenario,
    /// The realized system model (`n`, `c`, path kind).
    pub model: &'a SystemModel,
    /// The realized path-length distribution of the cell's strategy.
    pub dist: &'a PathLengthDist,
    /// The realized epochs (active + compromised sets per round); a
    /// single trivial view for one-shot cells.
    pub views: &'a [EpochView],
    /// The cell's deterministic seed (campaign seed ⊕ grid index) —
    /// feeds session/workload sampling.
    pub seed: u64,
    /// The engine-free dynamics seed `views` were realized from; pass it
    /// wherever epochs are re-realized (e.g.
    /// [`anonroute_core::epochs::estimate_decay`]) so every engine keeps
    /// seeing the same network evolution.
    pub dynamics_seed: u64,
    /// Run-wide settings (sample counts, live-cluster sizing, …).
    pub config: &'a CampaignConfig,
    /// Shared memoized exact-evaluator tables.
    pub cache: &'a EvaluatorCache,
    /// The sweep's long-running shared relay network, when the runner
    /// booted one (`CampaignConfig::live_shared`): live cells that fit
    /// re-key circuits over its standing relays instead of booting a
    /// fresh cluster each. `None` in the default per-cell mode and for
    /// every non-live engine.
    pub shared: Option<&'a anonroute_relay::SharedCluster>,
}

/// Where one cell's wall-clock went, phase by phase, in microseconds.
///
/// Operator observability only: every field is wall-clock and therefore
/// **nondeterministic** — profiles are excluded from `CellMetrics`
/// equality and from all seeded artifacts (they appear in JSONL only
/// under `--timing`, in the timings CSV, and as aggregate totals in the
/// run manifest). For live cells `boot_us`/`traffic_us` are sub-phases
/// *inside* `evaluate_us`, so [`total_us`](PhaseProfile::total_us) sums
/// only the four top-level phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Realizing the model, strategy distribution, and epoch views.
    pub setup_us: u64,
    /// Producing the evidence: closed-form analysis, sampling, protocol
    /// simulation, or driving a live cluster.
    pub evaluate_us: u64,
    /// Scoring a produced trace with the passive adversary
    /// (trace-producing engines only).
    pub attack_us: u64,
    /// Folding multi-epoch evidence (decay estimation or the
    /// intersection adversary).
    pub fold_us: u64,
    /// Live cells: cluster boot (bind, directory, daemons serving),
    /// summed over epochs. Contained in `evaluate_us`.
    pub boot_us: u64,
    /// Live cells: first handshake to full delivery, summed over epochs.
    /// Contained in `evaluate_us`.
    pub traffic_us: u64,
}

impl PhaseProfile {
    /// Total profiled wall-clock: the four top-level phases (boot and
    /// traffic are already inside `evaluate_us`).
    pub fn total_us(&self) -> u64 {
        self.setup_us + self.evaluate_us + self.attack_us + self.fold_us
    }
}

/// Times one cell phase and marks it as a trace span. Consuming it with
/// [`stop_us`](PhaseTimer::stop_us) closes the span and yields the
/// elapsed microseconds for the cell's [`PhaseProfile`].
pub(crate) struct PhaseTimer {
    start: Instant,
    _span: anonroute_obs::Span,
}

/// Starts timing the phase traced as `name` (category `"campaign"`).
pub(crate) fn phase_timer(name: &'static str) -> PhaseTimer {
    PhaseTimer {
        start: Instant::now(),
        _span: anonroute_obs::span(name, "campaign"),
    }
}

impl PhaseTimer {
    /// Stops the timer (closing its trace span) and returns elapsed µs.
    pub(crate) fn stop_us(self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// Numeric outcome of one feasible cell.
///
/// Equality deliberately ignores [`profile`](CellMetrics::profile):
/// backends promise *equal contexts → equal metrics*, and the phase
/// profile is wall-clock noise riding along for operators.
#[derive(Debug, Clone, Copy)]
pub struct CellMetrics {
    /// Anonymity degree `H*` in bits (exact, estimated, or empirical,
    /// per the cell's engine). For multi-epoch cells this is the
    /// *cumulative* anonymity after the final epoch — the intersection
    /// adversary's view — which reduces to the single-round value at
    /// `epochs = 1`.
    pub h_star: f64,
    /// `h_star / log2 n`.
    pub normalized: f64,
    /// Expected path length of the realized strategy.
    pub mean_len: f64,
    /// Probability the adversary identifies the sender outright
    /// (exact one-shot engine only).
    pub p_exposed: Option<f64>,
    /// Standard error of `h_star` (sampling engines only).
    pub std_error: Option<f64>,
    /// Sample/message/session count (sampling engines only).
    pub samples: Option<usize>,
    /// Number of epochs folded into `h_star` (1 for one-shot cells).
    pub epochs: usize,
    /// The epoch-1 anchor for multi-epoch cells: the single-round value
    /// the decay starts from (closed form for the exact engine, a
    /// sampled mean otherwise). `None` for one-shot cells, where
    /// `h_star` *is* the single-round value.
    pub h_epoch1: Option<f64>,
    /// Nondeterministic per-phase wall-clock breakdown (excluded from
    /// equality and from seeded artifacts).
    pub profile: PhaseProfile,
}

impl PartialEq for CellMetrics {
    fn eq(&self, other: &Self) -> bool {
        // profile is wall-clock observability; the determinism contract
        // ("equal contexts → equal CellMetrics") is over the numbers only
        (
            self.h_star,
            self.normalized,
            self.mean_len,
            self.p_exposed,
            self.std_error,
            self.samples,
            self.epochs,
            self.h_epoch1,
        ) == (
            other.h_star,
            other.normalized,
            other.mean_len,
            other.p_exposed,
            other.std_error,
            other.samples,
            other.epochs,
            other.h_epoch1,
        )
    }
}

impl CellMetrics {
    /// Metrics of a one-shot sampling backend, from the workspace's
    /// common estimate shape ([`anonroute_core::SampledDegree`]).
    pub fn from_sampled(model: &SystemModel, dist: &PathLengthDist, est: SampledDegree) -> Self {
        CellMetrics {
            h_star: est.h_star,
            normalized: est.h_star / model.max_entropy_bits(),
            mean_len: dist.mean(),
            p_exposed: None,
            std_error: Some(est.std_error),
            samples: Some(est.samples),
            epochs: 1,
            h_epoch1: None,
            profile: PhaseProfile::default(),
        }
    }

    /// Metrics of a multi-epoch sampling backend, from an
    /// anonymity-decay curve: `h_star` is the final cumulative mean,
    /// `h_epoch1` the curve's anchor (overridden by the exact backend
    /// with the closed form).
    pub fn from_decay(model: &SystemModel, dist: &PathLengthDist, curve: &DecayCurve) -> Self {
        let last = curve.last();
        CellMetrics {
            h_star: last.mean_entropy_bits,
            normalized: last.mean_entropy_bits / model.max_entropy_bits(),
            mean_len: dist.mean(),
            p_exposed: None,
            std_error: Some(last.std_error),
            samples: Some(last.sessions),
            epochs: curve.per_epoch.len(),
            h_epoch1: Some(curve.first().mean_entropy_bits),
            profile: PhaseProfile::default(),
        }
    }

    /// The sampling view of these metrics, when the backend produced one.
    pub fn sampled(&self) -> Option<SampledDegree> {
        Some(SampledDegree {
            h_star: self.h_star,
            std_error: self.std_error?,
            samples: self.samples?,
        })
    }
}

/// Scores a trace with the paper's passive adversary: the last `c`
/// member nodes are compromised, every delivered message's posterior is
/// computed, and the mean posterior entropy becomes the empirical `H*`.
/// The one attack-and-score path shared by every backend that produces
/// a trace (simulated and live), so their scoring can never drift:
/// `samples` is always the number of messages actually attacked.
pub(crate) fn attack_and_score(
    model: &SystemModel,
    dist: &PathLengthDist,
    trace: &[TransferRecord],
    originations: &[Origination],
) -> Result<SampledDegree, String> {
    let n = model.n();
    let compromised: Vec<usize> = (n - model.c()..n).collect();
    let adversary = Adversary::new(n, &compromised).map_err(|e| e.to_string())?;
    let report =
        attack_trace(&adversary, model, dist, trace, originations).map_err(|e| e.to_string())?;
    Ok(SampledDegree {
        h_star: report.empirical_h_star,
        std_error: report.std_error,
        samples: report.verdicts.len(),
    })
}

/// Sessions a multi-epoch cell runs: the engine's configured one-shot
/// message/sample budget spread across the epochs (each session sends
/// once per epoch), never below one — so multi-epoch cells cost about
/// as much as their one-shot counterparts.
pub(crate) fn session_count(budget: usize, epochs: usize) -> usize {
    (budget / epochs.max(1)).max(1)
}

/// Rewrites locally assigned message ids (`MsgId(k)` for the `k`-th
/// scheduled origination of one epoch run) into persistent session ids,
/// in both the trace and the origination labels — the correlation key
/// the intersection adversary folds across epochs.
pub(crate) fn remap_to_sessions(
    trace: &mut [TransferRecord],
    originations: &mut [Origination],
    session_of: &[MsgId],
) {
    for r in trace.iter_mut() {
        r.msg = session_of[r.msg.0 as usize];
    }
    for o in originations.iter_mut() {
        o.msg = session_of[o.msg.0 as usize];
    }
}

/// One epoch's run artifacts from a trace-producing engine, in local
/// node ids with session-id messages.
pub(crate) struct EpochRun {
    /// The epoch's local system model.
    pub model: SystemModel,
    /// Link records (local ids, session-id messages).
    pub trace: Vec<TransferRecord>,
    /// Ground-truth labels (local senders, session-id messages).
    pub originations: Vec<Origination>,
}

/// Scores a multi-epoch cell with the intersection adversary: one
/// [`EpochRun`] per realized view, folded into cumulative per-session
/// posteriors. The shared path of the simulated and live backends, so
/// their multi-round scoring can never drift.
pub(crate) fn intersect_and_score(
    ctx: &CellCtx<'_>,
    runs: &[EpochRun],
) -> Result<CellMetrics, String> {
    debug_assert_eq!(runs.len(), ctx.views.len());
    let rounds: Vec<EpochTrace<'_>> = ctx
        .views
        .iter()
        .zip(runs)
        .map(|(view, run)| EpochTrace {
            view,
            model: &run.model,
            dist: ctx.dist,
            trace: &run.trace,
            originations: &run.originations,
        })
        .collect();
    let outcome = intersection_attack(ctx.model.n(), &rounds).map_err(|e| e.to_string())?;
    Ok(CellMetrics::from_decay(ctx.model, ctx.dist, &outcome.decay))
}

/// One way of scoring a cell. Implementations must uphold the module's
/// determinism contract and must not share mutable state across cells
/// (beyond caches whose values are pure functions of their key).
pub trait EvalBackend: Send + Sync {
    /// The engine axis value this backend serves.
    fn kind(&self) -> EngineKind;

    /// Scores one cell.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for infeasible or failed cells;
    /// the runner records it in `CellResult::outcome` without aborting
    /// the sweep.
    fn evaluate(&self, ctx: &CellCtx<'_>) -> Result<CellMetrics, String>;
}

/// The registry: every engine kind's backend, in [`EngineKind::ALL`]
/// order.
static BACKENDS: [&dyn EvalBackend; 4] = [
    &exact::ExactBackend,
    &monte_carlo::MonteCarloBackend,
    &simulated::SimulatedBackend,
    &live::LiveBackend,
];

/// Returns the registered backend for `kind`.
pub fn backend(kind: EngineKind) -> &'static dyn EvalBackend {
    *BACKENDS
        .iter()
        .find(|b| b.kind() == kind)
        .expect("every EngineKind has a registered backend")
}

/// Iterates over every registered backend.
pub fn backends() -> impl Iterator<Item = &'static dyn EvalBackend> {
    BACKENDS.iter().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_engine_kind() {
        for kind in EngineKind::ALL {
            assert_eq!(backend(kind).kind(), kind);
        }
        assert_eq!(backends().count(), EngineKind::ALL.len());
    }

    #[test]
    fn sampled_round_trip() {
        let model = SystemModel::new(20, 1).unwrap();
        let dist = PathLengthDist::fixed(3);
        let est = SampledDegree {
            h_star: 3.5,
            std_error: 0.04,
            samples: 500,
        };
        let metrics = CellMetrics::from_sampled(&model, &dist, est);
        assert_eq!(metrics.sampled(), Some(est));
        assert_eq!(metrics.p_exposed, None);
        assert!((metrics.normalized - 3.5 / 20f64.log2()).abs() < 1e-12);
        assert_eq!(metrics.mean_len, 3.0);
    }

    #[test]
    fn equality_ignores_the_phase_profile() {
        let model = SystemModel::new(20, 1).unwrap();
        let dist = PathLengthDist::fixed(3);
        let est = SampledDegree {
            h_star: 3.5,
            std_error: 0.04,
            samples: 500,
        };
        let a = CellMetrics::from_sampled(&model, &dist, est);
        let mut b = a;
        b.profile.evaluate_us = 123_456;
        b.profile.boot_us = 9;
        assert_eq!(a, b, "profiles are wall-clock noise, not results");
        assert_eq!(b.profile.total_us(), 123_456, "boot is inside evaluate");
        let mut c = a;
        c.h_star += 1.0;
        assert_ne!(a, c);
    }
}
