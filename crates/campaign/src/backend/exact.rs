//! The closed-form backend: the paper's exact analysis.
//!
//! Determinism: one-shot cells are seed-free — the result is a pure
//! function of `(n, c, path_kind, dist)`. Simple-path cells share one
//! memoized [`Evaluator`](anonroute_core::engine::simple::Evaluator) per
//! `(n, c, path_kind, lmax)` model through the runner's
//! [`EvaluatorCache`](anonroute_core::engine::EvaluatorCache) instead of
//! rebuilding the log-factorial tables per cell.
//!
//! Multi-epoch cells have no closed form — exact multi-round inference
//! over identity-correlated observation sequences is precisely the
//! regime Ando et al. show is hard — so this backend anchors epoch 1 in
//! closed form and estimates the decay with
//! [`epochs::estimate_decay`]:
//! seeded sessions whose *per-round* posteriors are still exact. The
//! session stream is salted differently from the Monte-Carlo backend's,
//! so the two engines remain independent estimates over the same
//! realized epochs.

use anonroute_core::{engine, epochs, PathKind};

use crate::backend::{phase_timer, session_count, CellCtx, CellMetrics, EvalBackend, PhaseProfile};
use crate::grid::EngineKind;

/// Stream separator from the Monte-Carlo backend's decay sessions.
const EXACT_DECAY_STREAM: u64 = 1;

/// Closed-form exact evaluation (the `exact` engine).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBackend;

impl EvalBackend for ExactBackend {
    fn kind(&self) -> EngineKind {
        EngineKind::Exact
    }

    fn evaluate(&self, ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
        let evaluate = phase_timer("cell.evaluate");
        let analysis = match ctx.model.path_kind() {
            PathKind::Simple => {
                // one shared evaluator per model covers every strategy on it
                let ev = ctx
                    .cache
                    .evaluator(ctx.model, ctx.model.n() - 1)
                    .map_err(|e| e.to_string())?;
                ev.analyze(ctx.dist.pmf())
            }
            PathKind::Cyclic => engine::analysis(ctx.model, ctx.dist).map_err(|e| e.to_string())?,
        };
        let evaluate_us = evaluate.stop_us();
        if ctx.scenario.dynamics.is_one_shot() {
            return Ok(CellMetrics {
                h_star: analysis.h_star,
                normalized: analysis.normalized(ctx.model),
                mean_len: ctx.dist.mean(),
                p_exposed: Some(analysis.p_exposed),
                std_error: None,
                samples: None,
                epochs: 1,
                h_epoch1: None,
                profile: PhaseProfile {
                    evaluate_us,
                    ..PhaseProfile::default()
                },
            });
        }
        let fold = phase_timer("cell.fold");
        let sessions = session_count(ctx.config.mc_samples, ctx.scenario.dynamics.epochs);
        // the shared cache hands every epoch its memoized fold workspace,
        // so sweeps over one model amortize the per-epoch table builds
        let curve = epochs::estimate_decay_with(
            ctx.model,
            ctx.dist,
            &ctx.scenario.dynamics,
            sessions,
            ctx.dynamics_seed,
            ctx.seed ^ EXACT_DECAY_STREAM,
            ctx.cache,
        )
        .map_err(|e| e.to_string())?;
        let mut metrics = CellMetrics::from_decay(ctx.model, ctx.dist, &curve);
        // the anchor is free here: report the closed form, not a sample
        metrics.h_epoch1 = Some(analysis.h_star);
        metrics.profile.evaluate_us = evaluate_us;
        metrics.profile.fold_us = fold.stop_us();
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::engine::EvaluatorCache;
    use anonroute_core::{PathLengthDist, SystemModel};

    use crate::grid::{Scenario, StrategySpec};
    use crate::runner::CampaignConfig;

    #[test]
    fn exact_backend_uses_full_support_evaluator() {
        // the shared evaluator spans 0..=n-1 regardless of each strategy's
        // own support; H* must still match a support-sized evaluation
        let model = SystemModel::new(40, 2).unwrap();
        let cache = EvaluatorCache::new();
        let dist = PathLengthDist::uniform(2, 9).unwrap();
        let config = CampaignConfig::default();
        let scenario = Scenario {
            n: 40,
            c: 2,
            path_kind: PathKind::Simple,
            strategy: StrategySpec::Uniform(2, 9),
            dynamics: anonroute_core::EpochSchedule::one_shot(),
            engine: EngineKind::Exact,
        };
        let views = vec![anonroute_core::epochs::EpochView {
            epoch: 0,
            active: (0..40).collect(),
            compromised: vec![38, 39],
        }];
        let ctx = CellCtx {
            scenario: &scenario,
            model: &model,
            dist: &dist,
            views: &views,
            seed: 1,
            dynamics_seed: 1,
            config: &config,
            cache: &cache,
            shared: None,
        };
        let via_backend = ExactBackend.evaluate(&ctx).unwrap();
        let direct = engine::anonymity_degree(&model, &dist).unwrap();
        assert!((via_backend.h_star - direct).abs() < 1e-12);
        assert!(via_backend.p_exposed.is_some());
        assert!(via_backend.std_error.is_none());
    }
}
