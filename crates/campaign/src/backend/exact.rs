//! The closed-form backend: the paper's exact analysis.
//!
//! Determinism: seed-free — the result is a pure function of
//! `(n, c, path_kind, dist)`. Simple-path cells share one memoized
//! [`Evaluator`](anonroute_core::engine::simple::Evaluator) per
//! `(n, c, path_kind, lmax)` model through the runner's
//! [`EvaluatorCache`](anonroute_core::engine::EvaluatorCache) instead of
//! rebuilding the log-factorial tables per cell.

use anonroute_core::{engine, PathKind};

use crate::backend::{CellCtx, CellMetrics, EvalBackend};
use crate::grid::EngineKind;

/// Closed-form exact evaluation (the `exact` engine).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBackend;

impl EvalBackend for ExactBackend {
    fn kind(&self) -> EngineKind {
        EngineKind::Exact
    }

    fn evaluate(&self, ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
        let analysis = match ctx.model.path_kind() {
            PathKind::Simple => {
                // one shared evaluator per model covers every strategy on it
                let ev = ctx
                    .cache
                    .evaluator(ctx.model, ctx.model.n() - 1)
                    .map_err(|e| e.to_string())?;
                ev.analyze(ctx.dist.pmf())
            }
            PathKind::Cyclic => engine::analysis(ctx.model, ctx.dist).map_err(|e| e.to_string())?,
        };
        Ok(CellMetrics {
            h_star: analysis.h_star,
            normalized: analysis.normalized(ctx.model),
            mean_len: ctx.dist.mean(),
            p_exposed: Some(analysis.p_exposed),
            std_error: None,
            samples: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::engine::EvaluatorCache;
    use anonroute_core::{PathLengthDist, SystemModel};

    use crate::grid::{Scenario, StrategySpec};
    use crate::runner::CampaignConfig;

    #[test]
    fn exact_backend_uses_full_support_evaluator() {
        // the shared evaluator spans 0..=n-1 regardless of each strategy's
        // own support; H* must still match a support-sized evaluation
        let model = SystemModel::new(40, 2).unwrap();
        let cache = EvaluatorCache::new();
        let dist = PathLengthDist::uniform(2, 9).unwrap();
        let config = CampaignConfig::default();
        let scenario = Scenario {
            n: 40,
            c: 2,
            path_kind: PathKind::Simple,
            strategy: StrategySpec::Uniform(2, 9),
            engine: EngineKind::Exact,
        };
        let ctx = CellCtx {
            scenario: &scenario,
            model: &model,
            dist: &dist,
            seed: 1,
            config: &config,
            cache: &cache,
        };
        let via_backend = ExactBackend.evaluate(&ctx).unwrap();
        let direct = engine::anonymity_degree(&model, &dist).unwrap();
        assert!((via_backend.h_star - direct).abs() < 1e-12);
        assert!(via_backend.p_exposed.is_some());
        assert!(via_backend.std_error.is_none());
    }
}
