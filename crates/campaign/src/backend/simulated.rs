//! The simulated-attack backend: run the full in-process protocol stack
//! and attack its trace.
//!
//! Simple-path cells execute onion routing; cyclic cells execute Crowds
//! (which requires a geometric strategy — that's Crowds' defining
//! forwarding rule). The passive adversary compromises the last `c`
//! member nodes and scores every delivered message.
//!
//! Multi-epoch cells run one simulation per realized epoch over that
//! epoch's *active* nodes: persistent sessions
//! ([`anonroute_sim::traffic::SessionTraffic`]) pin a sender per session
//! for the whole run, a session sits out any epoch its sender churned
//! out of, and the per-epoch traces — message ids rewritten to session
//! ids — feed the intersection adversary.
//!
//! Determinism: the discrete-event simulator, the origination schedule,
//! session senders, and every protocol's randomness are all seeded from
//! `ctx.seed`.

use anonroute_core::epochs::EpochView;
use anonroute_core::{PathKind, PathLengthDist, SystemModel};
use anonroute_protocols::crowds::crowd;
use anonroute_protocols::onion_routing::onion_network;
use anonroute_protocols::RouteSampler;
use anonroute_sim::traffic::SessionTraffic;
use anonroute_sim::{LatencyModel, NodeId, SimTime, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::{
    attack_and_score, intersect_and_score, phase_timer, remap_to_sessions, session_count, CellCtx,
    CellMetrics, EpochRun, EvalBackend,
};
use crate::grid::{EngineKind, StrategySpec};

/// Salt separating the persistent-session draw from the simulator's own
/// seed uses.
const SIM_SESSION_SALT: u64 = 0x51B5_E551_0D5A_7701;

/// Full protocol simulation attacked by the passive adversary (the `sim`
/// engine); the message count comes from `CampaignConfig::sim_messages`
/// (spread over the epochs of a multi-round cell).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedBackend;

impl EvalBackend for SimulatedBackend {
    fn kind(&self) -> EngineKind {
        EngineKind::Simulated
    }

    fn evaluate(&self, ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
        let n = ctx.model.n();
        if n > ctx.config.sim_max_n {
            return Err(format!(
                "sim cell n={n} exceeds sim_max_n={} (each sim cell provisions n onion keys \
                 and an n-wide posterior per message; raise --sim-max-n to allow it)",
                ctx.config.sim_max_n
            ));
        }
        if !ctx.scenario.dynamics.is_one_shot() {
            return evaluate_epochs(ctx);
        }
        let messages = ctx.config.sim_messages;
        match ctx.model.path_kind() {
            PathKind::Simple => {
                let sampler = RouteSampler::new(ctx.model.n(), ctx.dist.clone(), PathKind::Simple)
                    .map_err(|e| e.to_string())?;
                let nodes = onion_network(ctx.model.n(), &sampler, 2048, b"anonroute-campaign")
                    .map_err(|e| e.to_string())?;
                attack_simulation(
                    nodes,
                    LatencyModel::Uniform { lo: 50, hi: 500 },
                    ctx.model,
                    ctx.dist,
                    messages,
                    ctx.seed,
                )
            }
            PathKind::Cyclic => {
                let forward_prob = crowds_forward_prob(ctx)?;
                let nodes = crowd(ctx.model.n(), forward_prob).map_err(|e| e.to_string())?;
                attack_simulation(
                    nodes,
                    LatencyModel::Constant(100),
                    ctx.model,
                    ctx.dist,
                    messages,
                    ctx.seed,
                )
            }
        }
    }
}

/// The cyclic-path cell's Crowds forwarding probability, or the standard
/// infeasibility message.
fn crowds_forward_prob(ctx: &CellCtx<'_>) -> Result<f64, String> {
    match ctx.scenario.strategy {
        StrategySpec::Geometric { forward_prob, .. } => Ok(forward_prob),
        _ => Err(
            "the simulated engine models cyclic paths with Crowds, which requires a \
             geometric strategy"
                .into(),
        ),
    }
}

/// Builds one epoch's protocol network over `ne` active nodes.
fn epoch_nodes(
    ctx: &CellCtx<'_>,
    ne: usize,
) -> Result<(Vec<Box<dyn anonroute_sim::NodeBehavior>>, LatencyModel), String> {
    match ctx.model.path_kind() {
        PathKind::Simple => {
            let sampler = RouteSampler::new(ne, ctx.dist.clone(), PathKind::Simple)
                .map_err(|e| e.to_string())?;
            let nodes = onion_network(ne, &sampler, 2048, b"anonroute-epochs")
                .map_err(|e| e.to_string())?;
            Ok((
                nodes
                    .into_iter()
                    .map(|n| Box::new(n) as Box<dyn anonroute_sim::NodeBehavior>)
                    .collect(),
                LatencyModel::Uniform { lo: 50, hi: 500 },
            ))
        }
        PathKind::Cyclic => {
            let forward_prob = crowds_forward_prob(ctx)?;
            let nodes = crowd(ne, forward_prob).map_err(|e| e.to_string())?;
            Ok((
                nodes
                    .into_iter()
                    .map(|n| Box::new(n) as Box<dyn anonroute_sim::NodeBehavior>)
                    .collect(),
                LatencyModel::Constant(100),
            ))
        }
    }
}

/// Runs one simulation per epoch with persistent senders and scores the
/// intersection attack on the folded traces.
fn evaluate_epochs(ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
    let n = ctx.model.n();
    let sessions = session_count(ctx.config.sim_messages, ctx.scenario.dynamics.epochs);
    let traffic = SessionTraffic {
        sessions,
        interval_us: 100,
        payload_len: 4,
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ SIM_SESSION_SALT);
    let senders = traffic.senders(n, &mut rng);
    let evaluate = phase_timer("cell.evaluate");
    let mut runs = Vec::with_capacity(ctx.views.len());
    for view in ctx.views {
        runs.push(run_epoch(ctx, view, &traffic, &senders, &mut rng)?);
    }
    let evaluate_us = evaluate.stop_us();
    let fold = phase_timer("cell.fold");
    let mut metrics = intersect_and_score(ctx, &runs)?;
    metrics.profile.evaluate_us = evaluate_us;
    metrics.profile.fold_us = fold.stop_us();
    Ok(metrics)
}

/// One epoch: a fresh network over the active set, one origination per
/// active session, message ids rewritten back to session ids.
fn run_epoch(
    ctx: &CellCtx<'_>,
    view: &EpochView,
    traffic: &SessionTraffic,
    senders: &[NodeId],
    rng: &mut StdRng,
) -> Result<EpochRun, String> {
    let ne = view.n();
    let model = SystemModel::with_path_kind(ne, ctx.model.c(), ctx.model.path_kind())
        .map_err(|e| e.to_string())?;
    let (nodes, latency) = epoch_nodes(ctx, ne)?;
    // each epoch gets its own deterministic event stream
    let epoch_seed = ctx
        .seed
        .wrapping_add((view.epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut sim = Simulation::new(nodes, latency, epoch_seed);
    let (arrivals, session_of) = traffic.epoch_arrivals(senders, |u| view.local_of(u), rng);
    sim.schedule_arrivals(arrivals);
    sim.run();
    // take ownership of the per-epoch artifacts instead of copying them
    let (mut trace, mut originations) = sim.into_artifacts();
    remap_to_sessions(&mut trace, &mut originations, &session_of);
    Ok(EpochRun {
        model,
        trace,
        originations,
    })
}

/// Drives `messages` originations through `nodes`, then scores the
/// passive adversary's attack on the trace.
fn attack_simulation<B: anonroute_sim::NodeBehavior>(
    nodes: Vec<B>,
    latency: LatencyModel,
    model: &SystemModel,
    dist: &PathLengthDist,
    messages: usize,
    seed: u64,
) -> Result<CellMetrics, String> {
    let n = model.n();
    let evaluate = phase_timer("cell.evaluate");
    let mut sim = Simulation::new(nodes, latency, seed);
    let mut salt = seed | 1;
    for i in 0..messages as u64 {
        salt = salt
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sim.schedule_origination(
            SimTime::from_micros(i * 100),
            (salt >> 33) as usize % n,
            vec![0u8; 4],
        );
    }
    sim.run();
    let evaluate_us = evaluate.stop_us();
    let attack = phase_timer("cell.attack");
    let est = attack_and_score(model, dist, sim.trace(), sim.originations())?;
    let mut metrics = CellMetrics::from_sampled(model, dist, est);
    metrics.profile.evaluate_us = evaluate_us;
    metrics.profile.attack_us = attack.stop_us();
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Scenario;
    use crate::runner::CampaignConfig;

    #[test]
    fn oversized_sim_cells_are_rejected_before_provisioning_keys() {
        let n = 10;
        let scenario = Scenario {
            n,
            c: 1,
            path_kind: PathKind::Simple,
            strategy: StrategySpec::Uniform(1, 3),
            dynamics: anonroute_core::EpochSchedule::one_shot(),
            engine: EngineKind::Simulated,
        };
        let model = SystemModel::new(n, 1).unwrap();
        let dist = scenario.strategy.realize(&model).unwrap();
        let views = vec![EpochView {
            epoch: 0,
            active: (0..n).collect(),
            compromised: (n - 1..n).collect(),
        }];
        let config = CampaignConfig {
            sim_max_n: 9,
            ..CampaignConfig::default()
        };
        let cache = anonroute_core::engine::EvaluatorCache::new();
        let ctx = CellCtx {
            scenario: &scenario,
            model: &model,
            dist: &dist,
            views: &views,
            seed: 1,
            dynamics_seed: 1,
            config: &config,
            cache: &cache,
            shared: None,
        };
        let err = SimulatedBackend.evaluate(&ctx).unwrap_err();
        assert!(err.contains("sim_max_n"), "{err}");
    }
}
