//! The simulated-attack backend: run the full in-process protocol stack
//! and attack its trace.
//!
//! Simple-path cells execute onion routing; cyclic cells execute Crowds
//! (which requires a geometric strategy — that's Crowds' defining
//! forwarding rule). The passive adversary compromises the last `c`
//! member nodes and scores every delivered message.
//!
//! Determinism: the discrete-event simulator, the origination schedule,
//! and every protocol's randomness are all seeded from `ctx.seed`.

use anonroute_core::{PathKind, PathLengthDist, SystemModel};
use anonroute_protocols::crowds::crowd;
use anonroute_protocols::onion_routing::onion_network;
use anonroute_protocols::RouteSampler;
use anonroute_sim::{LatencyModel, SimTime, Simulation};

use crate::backend::{attack_and_score, CellCtx, CellMetrics, EvalBackend};
use crate::grid::{EngineKind, StrategySpec};

/// Full protocol simulation attacked by the passive adversary (the `sim`
/// engine); the message count comes from `CampaignConfig::sim_messages`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedBackend;

impl EvalBackend for SimulatedBackend {
    fn kind(&self) -> EngineKind {
        EngineKind::Simulated
    }

    fn evaluate(&self, ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
        let messages = ctx.config.sim_messages;
        match ctx.model.path_kind() {
            PathKind::Simple => {
                let sampler = RouteSampler::new(ctx.model.n(), ctx.dist.clone(), PathKind::Simple)
                    .map_err(|e| e.to_string())?;
                let nodes = onion_network(ctx.model.n(), &sampler, 2048, b"anonroute-campaign")
                    .map_err(|e| e.to_string())?;
                attack_simulation(
                    nodes,
                    LatencyModel::Uniform { lo: 50, hi: 500 },
                    ctx.model,
                    ctx.dist,
                    messages,
                    ctx.seed,
                )
            }
            PathKind::Cyclic => {
                let StrategySpec::Geometric { forward_prob, .. } = ctx.scenario.strategy else {
                    return Err(
                        "the simulated engine models cyclic paths with Crowds, which requires a \
                         geometric strategy"
                            .into(),
                    );
                };
                let nodes = crowd(ctx.model.n(), forward_prob).map_err(|e| e.to_string())?;
                attack_simulation(
                    nodes,
                    LatencyModel::Constant(100),
                    ctx.model,
                    ctx.dist,
                    messages,
                    ctx.seed,
                )
            }
        }
    }
}

/// Drives `messages` originations through `nodes`, then scores the
/// passive adversary's attack on the trace.
fn attack_simulation<B: anonroute_sim::NodeBehavior>(
    nodes: Vec<B>,
    latency: LatencyModel,
    model: &SystemModel,
    dist: &PathLengthDist,
    messages: usize,
    seed: u64,
) -> Result<CellMetrics, String> {
    let n = model.n();
    let mut sim = Simulation::new(nodes, latency, seed);
    let mut salt = seed | 1;
    for i in 0..messages as u64 {
        salt = salt
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sim.schedule_origination(
            SimTime::from_micros(i * 100),
            (salt >> 33) as usize % n,
            vec![0u8; 4],
        );
    }
    sim.run();
    let est = attack_and_score(model, dist, sim.trace(), sim.originations())?;
    Ok(CellMetrics::from_sampled(model, dist, est))
}
