//! The live backend: every cell boots a real loopback TCP relay cluster.
//!
//! One `live` cell is one [`anonroute_relay::run_cluster`] run: `n`
//! relays bind `127.0.0.1` ephemeral ports, a circuit-building client
//! drives a seeded [`anonroute_sim::traffic`] workload through genuine
//! sockets, and the per-link tap's `TransferRecord`s are fed to the same
//! passive adversary the simulated backend uses — so one grid sweep can
//! place closed-form math and measured TCP traffic side by side.
//!
//! Two guard rails keep live cells sweep-safe:
//!
//! * **Budgeting** — clusters claim `n + 1` relay slots from the
//!   process-wide [`ClusterBudget`] before binding, so a wide rayon pool
//!   cannot exhaust loopback ports or file descriptors by booting dozens
//!   of clusters at once.
//! * **Watchdog** — the cluster runs on a helper thread and the backend
//!   waits at most `CampaignConfig::live_timeout_ms`; a wedged cluster
//!   becomes an error string in `CellResult::outcome` naming the phase
//!   (and span path) it wedged in. The helper thread is *abandoned*, not
//!   blocked on: it lands in a process-wide registry and the sweep
//!   reaps it at the end with a bounded join (`join_abandoned`) —
//!   helpers whose clusters finished their own bounded teardown are
//!   joined, truly wedged ones stay registered for the next sweep's
//!   reap rather than hanging anyone. An abandoned cell still queued on
//!   the budget never boots; one already running returns its slots when
//!   the cluster's own bounded delivery/teardown deadlines expire.
//!
//! Determinism: cluster identities, routes, handshake ephemerals, nonces,
//! and junk all derive from `ctx.seed`, and the adversary consumes only
//! the trace's structure, so the measured `H*` is deterministic per seed
//! even though TCP scheduling is not (pinned by `tests/engines.rs`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use anonroute_core::SystemModel;
use anonroute_relay::budget::ClusterBudget;
use anonroute_relay::{
    run_cluster_budgeted_observed, ClusterConfig, ClusterOutcome, PhaseCell, SharedCellSpec,
    SharedCluster,
};
use anonroute_sim::traffic::{SessionTraffic, UniformTraffic};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::{
    attack_and_score, intersect_and_score, phase_timer, remap_to_sessions, session_count, CellCtx,
    CellMetrics, EpochRun, EvalBackend,
};
use crate::grid::EngineKind;

/// Salt separating the workload RNG stream from the cluster's own seed
/// uses (identities, routes, nonces, junk).
const WORKLOAD_SALT: u64 = 0x11FE_7AFF_1C5E_ED01;

/// Salt separating the persistent-session draw of multi-epoch cells.
const LIVE_SESSION_SALT: u64 = 0x11FE_5E55_10F5_EED2;

/// Measured anonymity of a real loopback TCP cluster (the `live`
/// engine); sizing comes from the `live_*` fields of `CampaignConfig`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveBackend;

impl EvalBackend for LiveBackend {
    fn kind(&self) -> EngineKind {
        EngineKind::Live
    }

    fn evaluate(&self, ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
        let n = ctx.model.n();
        if n > ctx.config.live_max_n {
            return Err(format!(
                "live cell n={n} exceeds live_max_n={} (each live cell boots n relays with \
                 real sockets and threads; raise --live-max-n to allow it)",
                ctx.config.live_max_n
            ));
        }
        if !ctx.scenario.dynamics.is_one_shot() {
            return evaluate_epochs(ctx);
        }
        let mut cluster = ClusterConfig::new(n, ctx.dist.clone());
        cluster.path_kind = ctx.model.path_kind();
        cluster.seed = ctx.seed;
        cluster.cell_size = ctx.config.live_cell_size;
        let arrivals = UniformTraffic {
            count: ctx.config.live_messages,
            interval_us: 0,
            payload_len: 8,
        }
        .generate(n, &mut StdRng::seed_from_u64(ctx.seed ^ WORKLOAD_SALT));

        let evaluate = phase_timer("cell.evaluate");
        let outcome = run_cell_cluster(
            ctx.shared,
            cluster,
            arrivals,
            Duration::from_millis(ctx.config.live_timeout_ms),
        )?;
        let evaluate_us = evaluate.stop_us();

        let attack = phase_timer("cell.attack");
        let est = attack_and_score(ctx.model, ctx.dist, &outcome.trace, &outcome.originations)?;
        let mut metrics = CellMetrics::from_sampled(ctx.model, ctx.dist, est);
        metrics.profile.attack_us = attack.stop_us();
        metrics.profile.evaluate_us = evaluate_us;
        metrics.profile.boot_us = outcome.boot_micros;
        metrics.profile.traffic_us = outcome.traffic_micros;
        Ok(metrics)
    }
}

/// One live TCP cluster run per epoch: the cluster keeps one identity
/// seed across epochs while `ClusterConfig::epoch` re-keys every
/// circuit — routes, handshake ephemerals, nonces, and cover junk — per
/// round. Identities are provisioned by *local* relay index, so under
/// churn the identity↔universe-node pairing shifts with the compacted
/// active set; that is invisible to the measurement (the adversary
/// scores local-id trace structure, then lifts posteriors to universe
/// space), but it does mean per-node identities are not persistent
/// across churned epochs. Persistent sessions pin their sender across
/// epochs; message ids are rewritten to session ids and the folded
/// traces feed the intersection adversary. The watchdog deadline
/// applies per epoch.
fn evaluate_epochs(ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
    let n = ctx.model.n();
    let sessions = session_count(ctx.config.live_messages, ctx.scenario.dynamics.epochs);
    let traffic = SessionTraffic {
        sessions,
        interval_us: 0,
        payload_len: 8,
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ LIVE_SESSION_SALT);
    let senders = traffic.senders(n, &mut rng);
    let evaluate = phase_timer("cell.evaluate");
    let (mut boot_us, mut traffic_us) = (0u64, 0u64);
    let mut runs = Vec::with_capacity(ctx.views.len());
    for view in ctx.views {
        let ne = view.n();
        let model = SystemModel::with_path_kind(ne, ctx.model.c(), ctx.model.path_kind())
            .map_err(|e| e.to_string())?;
        let mut cluster = ClusterConfig::new(ne, ctx.dist.clone());
        cluster.path_kind = ctx.model.path_kind();
        cluster.seed = ctx.seed;
        cluster.epoch = view.epoch as u64;
        cluster.cell_size = ctx.config.live_cell_size;
        let (arrivals, session_of) =
            traffic.epoch_arrivals(&senders, |u| view.local_of(u), &mut rng);
        let outcome = run_cell_cluster(
            ctx.shared,
            cluster,
            arrivals,
            Duration::from_millis(ctx.config.live_timeout_ms),
        )
        .map_err(|e| format!("epoch {}: {e}", view.epoch + 1))?;
        boot_us += outcome.boot_micros;
        traffic_us += outcome.traffic_micros;
        let mut trace = outcome.trace;
        let mut originations = outcome.originations;
        remap_to_sessions(&mut trace, &mut originations, &session_of);
        runs.push(EpochRun {
            model,
            trace,
            originations,
        });
    }
    let evaluate_us = evaluate.stop_us();
    let fold = phase_timer("cell.fold");
    let mut metrics = intersect_and_score(ctx, &runs)?;
    metrics.profile.fold_us = fold.stop_us();
    metrics.profile.evaluate_us = evaluate_us;
    metrics.profile.boot_us = boot_us;
    metrics.profile.traffic_us = traffic_us;
    Ok(metrics)
}

/// Runs one cell's cluster workload: against the sweep's standing
/// [`SharedCluster`] when the runner booted one that fits (`--shared`
/// mode; circuits are re-keyed per cell/epoch by the
/// [`SharedCellSpec`]'s seed/epoch, and the cell's delivery wait is
/// bounded by the same per-cell deadline), else through a fresh
/// watchdogged cluster. A shared cell needs no watchdog thread: the
/// wedge-prone phase — boot — already happened once at sweep start, and
/// sending/draining are bounded by the spec's `deliver_timeout`.
fn run_cell_cluster(
    shared: Option<&SharedCluster>,
    config: ClusterConfig,
    arrivals: Vec<anonroute_sim::traffic::Arrival>,
    deadline: Duration,
) -> Result<ClusterOutcome, String> {
    match shared {
        Some(cluster) if config.n <= cluster.n() => {
            let spec = SharedCellSpec {
                n: config.n,
                dist: config.dist.clone(),
                path_kind: config.path_kind,
                seed: config.seed,
                epoch: config.epoch,
                deliver_timeout: deadline,
            };
            cluster
                .run_cell(&spec, &arrivals)
                .map_err(|e| e.to_string())
        }
        _ => run_watchdogged(config, arrivals, deadline),
    }
}

/// Runs the cluster on a helper thread under the per-cell watchdog. The
/// helper acquires the global budget itself (via
/// [`run_cluster_budgeted_unless`], the single slot-accounting path), so
/// waiting for free relay slots counts against the deadline too — a
/// sweep can never hang on a permit a wedged cluster will never return.
/// A cell abandoned by its watchdog while still queued on the budget
/// never boots its cluster, so timeouts don't cascade by burning slots
/// on runs nobody will read.
///
/// An abandoned cell that had already *started* keeps its slots until
/// the cluster's own bounded teardown (delivery/join deadlines) finishes
/// — slots return late, not never, unless a worker wedges in an
/// unbounded syscall, which loopback sockets make very unlikely.
fn run_watchdogged(
    config: ClusterConfig,
    arrivals: Vec<anonroute_sim::traffic::Arrival>,
    deadline: Duration,
) -> Result<ClusterOutcome, String> {
    let n = config.n;
    let (tx, rx) = mpsc::channel();
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let abandoned = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&abandoned);
    let phase = Arc::new(PhaseCell::new());
    let run_phase = Arc::clone(&phase);
    let helper = std::thread::spawn(move || {
        let _done = anonroute_sim::reaper::DoneGuard::new(done_tx);
        let outcome = run_cluster_budgeted_observed(
            &config,
            &arrivals,
            ClusterBudget::global(),
            &flag,
            &run_phase,
        );
        if let Some(result) = outcome {
            // the receiver may have hung up (watchdog fired); nothing to do
            let _ = tx.send(result);
        }
    });
    match rx.recv_timeout(deadline) {
        Ok(result) => {
            // the helper has already sent its outcome: nothing left but
            // the guard drop and return, so this join is near-instant
            let _ = helper.join();
            result.map_err(|e| e.to_string())
        }
        Err(_) => {
            abandoned.store(true, Ordering::SeqCst);
            // park the helper for the sweep-end bounded reap instead of
            // detaching it forever
            anonroute_sim::reaper::global().register(done_rx, helper);
            // the shared phase cell says where the run was when the
            // deadline fired — queued on the budget, booting, first
            // handshake, traffic, drain, or teardown — which is the
            // difference between "loopback is oversubscribed" and "a
            // relay is eating cells"; the span path says which part of
            // the sweep asked for the run
            Err(format!(
                "live cell wedged in {} phase (span {}): no cluster outcome within {deadline:?} \
                 (n={n} relays; raise --live-timeout if the machine is just slow)",
                phase.get(),
                anonroute_obs::trace::current_path(),
            ))
        }
    }
}

/// Reaps watchdog helper threads abandoned by timed-out live cells:
/// joins (with `deadline` as the *total* bound) every helper whose
/// cluster has finished its own bounded teardown, and leaves the rest
/// registered for a later reap. Returns `(joined, still_pending)`. The
/// runner calls this at the end of every sweep — including drained and
/// aborted ones — so abandoned threads don't pile up across a campaign.
///
/// The registry itself is the process-wide [`anonroute_sim::reaper`],
/// shared with the sim runtime's own deadline-bounded runs.
pub(crate) fn join_abandoned(deadline: Duration) -> (usize, usize) {
    anonroute_sim::reaper::global().join_abandoned(deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_core::{engine, PathKind, SystemModel};

    use crate::grid::{Scenario, StrategySpec};
    use crate::runner::CampaignConfig;

    fn ctx_parts(
        n: usize,
        c: usize,
    ) -> (
        Scenario,
        SystemModel,
        Vec<anonroute_core::epochs::EpochView>,
    ) {
        let scenario = Scenario {
            n,
            c,
            path_kind: PathKind::Simple,
            strategy: StrategySpec::Uniform(1, 3),
            dynamics: anonroute_core::EpochSchedule::one_shot(),
            engine: EngineKind::Live,
        };
        let model = SystemModel::new(n, c).unwrap();
        let views = vec![anonroute_core::epochs::EpochView {
            epoch: 0,
            active: (0..n).collect(),
            compromised: (n - c..n).collect(),
        }];
        (scenario, model, views)
    }

    #[test]
    fn join_abandoned_reaps_finished_helpers_with_a_bound() {
        let (done_tx, done_rx) = mpsc::channel();
        let helper = std::thread::spawn(move || {
            let _done = anonroute_sim::reaper::DoneGuard::new(done_tx);
        });
        while !helper.is_finished() {
            std::thread::yield_now();
        }
        anonroute_sim::reaper::global().register(done_rx, helper);
        let (joined, _pending) = join_abandoned(Duration::from_secs(5));
        assert!(joined >= 1, "a finished helper must be reaped");
    }

    #[test]
    fn live_backend_measures_real_tcp_traffic() {
        let (scenario, model, views) = ctx_parts(8, 1);
        let dist = scenario.strategy.realize(&model).unwrap();
        let config = CampaignConfig {
            live_messages: 150,
            ..CampaignConfig::default()
        };
        let cache = anonroute_core::engine::EvaluatorCache::new();
        let ctx = CellCtx {
            scenario: &scenario,
            model: &model,
            dist: &dist,
            views: &views,
            seed: 33,
            dynamics_seed: 33,
            config: &config,
            cache: &cache,
            shared: None,
        };
        let metrics = LiveBackend.evaluate(&ctx).unwrap();
        let exact = engine::anonymity_degree(&model, &dist).unwrap();
        let est = metrics.sampled().expect("live cells are sampled");
        assert_eq!(est.samples, 150, "every message delivered and attacked");
        assert!(est.agrees_with(exact, 5.0), "live {est} vs exact {exact}");
    }

    #[test]
    fn oversized_live_cells_are_rejected_before_binding_sockets() {
        let (scenario, model, views) = ctx_parts(10, 1);
        let dist = scenario.strategy.realize(&model).unwrap();
        let config = CampaignConfig {
            live_max_n: 9,
            ..CampaignConfig::default()
        };
        let cache = anonroute_core::engine::EvaluatorCache::new();
        let ctx = CellCtx {
            scenario: &scenario,
            model: &model,
            dist: &dist,
            views: &views,
            seed: 1,
            dynamics_seed: 1,
            config: &config,
            cache: &cache,
            shared: None,
        };
        let err = LiveBackend.evaluate(&ctx).unwrap_err();
        assert!(err.contains("live_max_n"), "{err}");
    }
}
