//! The Monte-Carlo backend: seeded observation sampling.
//!
//! Determinism: every drawn observation flows from `ctx.seed` through
//! [`engine::estimate_anonymity_degree`]'s own `StdRng` stream, so equal
//! contexts estimate the identical value.

use anonroute_core::{engine, SampledDegree};

use crate::backend::{CellCtx, CellMetrics, EvalBackend};
use crate::grid::EngineKind;

/// Seeded Monte-Carlo estimation (the `mc` engine); the sample count
/// comes from `CampaignConfig::mc_samples`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonteCarloBackend;

impl EvalBackend for MonteCarloBackend {
    fn kind(&self) -> EngineKind {
        EngineKind::MonteCarlo
    }

    fn evaluate(&self, ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
        let est =
            engine::estimate_anonymity_degree(ctx.model, ctx.dist, ctx.config.mc_samples, ctx.seed)
                .map_err(|e| e.to_string())?;
        Ok(CellMetrics::from_sampled(
            ctx.model,
            ctx.dist,
            SampledDegree {
                h_star: est.mean,
                std_error: est.std_error,
                samples: est.samples,
            },
        ))
    }
}
