//! The Monte-Carlo backend: seeded observation sampling.
//!
//! Determinism: every drawn observation flows from `ctx.seed` through
//! [`engine::estimate_anonymity_degree`]'s own `StdRng` stream (one-shot
//! cells) or [`epochs::estimate_decay`]'s session stream (multi-epoch
//! cells), so equal contexts estimate the identical value.

use anonroute_core::{engine, epochs, SampledDegree};

use crate::backend::{phase_timer, session_count, CellCtx, CellMetrics, EvalBackend};
use crate::grid::EngineKind;

/// Stream separator from the exact backend's decay sessions.
const MC_DECAY_STREAM: u64 = 2;

/// Seeded Monte-Carlo estimation (the `mc` engine); the sample count
/// comes from `CampaignConfig::mc_samples` (spread over the epochs of a
/// multi-round cell).
#[derive(Debug, Clone, Copy, Default)]
pub struct MonteCarloBackend;

impl EvalBackend for MonteCarloBackend {
    fn kind(&self) -> EngineKind {
        EngineKind::MonteCarlo
    }

    fn evaluate(&self, ctx: &CellCtx<'_>) -> Result<CellMetrics, String> {
        if !ctx.scenario.dynamics.is_one_shot() {
            let fold = phase_timer("cell.fold");
            let sessions = session_count(ctx.config.mc_samples, ctx.scenario.dynamics.epochs);
            // shares per-epoch fold workspaces through the campaign cache
            let curve = epochs::estimate_decay_with(
                ctx.model,
                ctx.dist,
                &ctx.scenario.dynamics,
                sessions,
                ctx.dynamics_seed,
                ctx.seed ^ MC_DECAY_STREAM,
                ctx.cache,
            )
            .map_err(|e| e.to_string())?;
            let mut metrics = CellMetrics::from_decay(ctx.model, ctx.dist, &curve);
            metrics.profile.fold_us = fold.stop_us();
            return Ok(metrics);
        }
        let evaluate = phase_timer("cell.evaluate");
        let est =
            engine::estimate_anonymity_degree(ctx.model, ctx.dist, ctx.config.mc_samples, ctx.seed)
                .map_err(|e| e.to_string())?;
        let mut metrics = CellMetrics::from_sampled(
            ctx.model,
            ctx.dist,
            SampledDegree {
                h_star: est.mean,
                std_error: est.std_error,
                samples: est.samples,
            },
        );
        metrics.profile.evaluate_us = evaluate.stop_us();
        Ok(metrics)
    }
}
