//! The parallel sweep scheduler: how a [`ScenarioGrid`] gets executed.
//!
//! The runner contains **no evaluation code**: it expands the grid,
//! derives per-cell seeds, realizes each cell's model and strategy, and
//! dispatches a [`CellCtx`] to whichever
//! [`EvalBackend`](crate::backend::EvalBackend) the registry returns for
//! the cell's engine. How a cell is scored — closed form, sampling,
//! in-process simulation, or a live TCP cluster — is entirely the
//! backend layer's business ([`crate::backend`]).
//!
//! Design invariants:
//!
//! * **Determinism** — every cell derives its RNG seed from the campaign
//!   seed and the cell's grid index (SplitMix64 mix), and cells never
//!   share mutable state other than the [`EvaluatorCache`], whose values
//!   are pure functions of the key. A grid therefore produces bit-for-bit
//!   identical numeric results at any thread count.
//! * **Shared tables** — exact-engine cells for the same
//!   `(n, c, path_kind, lmax)` model reuse one memoized
//!   [`Evaluator`](anonroute_core::engine::simple::Evaluator) through the
//!   cache instead of rebuilding the log-factorial tables per cell.
//! * **Isolation** — an infeasible cell (e.g. `F(7)` in a 5-node system)
//!   records an error string; it never aborts the sweep. Live cells add a
//!   per-cell watchdog so even a wedged cluster degrades to an error.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use anonroute_core::engine::{CacheStats, EvaluatorCache};
use anonroute_core::epochs::EpochView;
use anonroute_core::SystemModel;
use anonroute_obs::{trace, Checkpoint, SweepControl, SweepState, TraceSink};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use crate::backend::{self, phase_timer, CellCtx, CellMetrics};
use crate::grid::{EngineKind, Scenario, ScenarioGrid};
use crate::progress::{ObsSession, SweepProgress};

/// Execution settings of one campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads; `0` auto-detects the machine's parallelism.
    pub threads: usize,
    /// Campaign seed; each cell derives its own stream from it.
    pub seed: u64,
    /// Sample count for Monte-Carlo engine cells.
    pub mc_samples: usize,
    /// Message count for simulated-attack engine cells.
    pub sim_messages: usize,
    /// Largest system size a simulated cell may build. The discrete-event
    /// engine itself is happy at 10⁶ nodes, but each sim cell still
    /// provisions `n` onion keys and an `n`-wide posterior per attacked
    /// message, so an accidental `--n 10000000` sweep should fail fast
    /// with a clear message rather than thrash.
    pub sim_max_n: usize,
    /// Message count for live TCP engine cells.
    pub live_messages: usize,
    /// Watchdog deadline per live cell, in milliseconds: a cluster that
    /// produces no outcome in time records an error instead of hanging
    /// the sweep.
    pub live_timeout_ms: u64,
    /// Largest system size a live cell may boot (each live cell costs
    /// `n` relay listeners plus worker threads and sockets).
    pub live_max_n: usize,
    /// Fixed relay-cell size for live cells, in bytes (bounds the
    /// longest onion route at ~64 bytes of overhead per hop).
    pub live_cell_size: usize,
    /// Attach live cells to one long-running shared relay network booted
    /// once for the whole sweep (sized to the largest live cell) instead
    /// of booting a fresh cluster per cell. Cells re-key their circuits
    /// per cell/epoch over the standing relays; trace *shape* per seed is
    /// identical to per-cell mode, but timestamps differ — the default
    /// per-cell mode remains the byte-identical-per-seed path.
    pub live_shared: bool,
    /// Emit a ~1 Hz progress ticker (done/errors/in-flight/ETA) on
    /// stderr while the sweep runs. Observability only — never touches
    /// the evaluation path, so artifacts stay byte-identical per seed.
    pub progress: bool,
    /// Serve `/metrics`, `/healthz`, and `/readyz` on this address for
    /// the duration of the sweep (port 0 picks a free port; the bound
    /// address is announced on stderr). `None` disables the endpoint.
    pub metrics_addr: Option<SocketAddr>,
    /// Write a Chrome-trace/Perfetto JSON file of the sweep's spans to
    /// this path when the run finishes. Tracing is a write-only sink:
    /// seeded artifacts are byte-identical with it on or off.
    pub trace_out: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 0,
            seed: 7,
            mc_samples: 20_000,
            sim_messages: 1_500,
            sim_max_n: 1_000_000,
            live_messages: 300,
            live_timeout_ms: 120_000,
            live_max_n: 64,
            live_cell_size: 1_024,
            live_shared: false,
            progress: false,
            metrics_addr: None,
            trace_out: None,
        }
    }
}

/// How a sweep ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepStatus {
    /// Every scheduled cell ran.
    Completed,
    /// An operator drained the sweep: in-flight cells finished, the rest
    /// were skipped.
    Drained,
    /// An operator aborted the sweep (same scheduling consequence as a
    /// drain — threads cannot be killed — recorded as an abort).
    Aborted,
}

impl SweepStatus {
    /// Stable lowercase label (manifests, summaries).
    pub fn as_str(self) -> &'static str {
        match self {
            SweepStatus::Completed => "completed",
            SweepStatus::Drained => "drained",
            SweepStatus::Aborted => "aborted",
        }
    }
}

/// One evaluated cell: scenario, derived seed, wall time, and outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Index of the cell in [`ScenarioGrid::cells`] order.
    pub index: usize,
    /// The evaluated scenario.
    pub scenario: Scenario,
    /// The cell's derived RNG seed.
    pub seed: u64,
    /// Wall-clock time spent on this cell, in microseconds.
    pub elapsed_micros: u64,
    /// Metrics, or the reason the cell was infeasible.
    pub outcome: Result<CellMetrics, String>,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Per-cell results, in grid order. A drained/aborted sweep carries
    /// only the cells that actually ran.
    pub cells: Vec<CellResult>,
    /// Total wall-clock time of the sweep.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Evaluator-cache hit/miss counters.
    pub cache: CacheStats,
    /// How the sweep ended (completed, drained, or aborted).
    pub status: SweepStatus,
    /// Cells skipped because the sweep drained or aborted first.
    pub skipped: usize,
}

impl CampaignOutcome {
    /// Number of cells that produced metrics.
    pub fn ok_count(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Number of infeasible/error cells.
    pub fn error_count(&self) -> usize {
        self.cells.len() - self.ok_count()
    }

    /// Total of the per-cell wall times (exceeds `wall` when parallel).
    pub fn cpu_micros(&self) -> u64 {
        self.cells.iter().map(|c| c.elapsed_micros).sum()
    }
}

/// Runs every cell of `grid` under `config` and returns results in grid
/// order. Equivalent to [`run_controlled`] with a fresh (never touched)
/// control handle.
pub fn run(grid: &ScenarioGrid, config: &CampaignConfig) -> CampaignOutcome {
    run_controlled(grid, config, &Arc::new(SweepControl::new()))
}

/// [`run`] under an operator control handle: the runner polls
/// [`SweepControl::checkpoint`] once per cell, *before* committing to
/// it, so pause merely delays the same deterministic schedule and
/// drain/abort skip whole cells — every cell that does run produces
/// byte-identical output. The handle is also what the obs server's
/// `POST /control/*` routes act on when `metrics_addr` is set.
pub fn run_controlled(
    grid: &ScenarioGrid,
    config: &CampaignConfig,
    control: &Arc<SweepControl>,
) -> CampaignOutcome {
    let scenarios = grid.cells();
    let pool = ThreadPoolBuilder::new()
        .num_threads(effective_threads(config, &scenarios))
        .build()
        .expect("thread pool construction is infallible");
    let threads = pool.current_num_threads();
    let cache = Arc::new(EvaluatorCache::new());
    if config.trace_out.is_some() {
        let sink = TraceSink::global();
        sink.drain(); // discard stale events from any earlier sweep
        sink.enable();
    }
    // with --shared, the whole sweep's live cells attach to one standing
    // network booted here (one boot, one budget acquisition) instead of
    // booting a cluster per cell; a boot failure degrades to the default
    // per-cell mode rather than failing the sweep
    let shared = boot_shared_cluster(config, &scenarios);
    // progress is tracked unconditionally (a few atomic stores per cell);
    // the ticker thread and the /metrics endpoint only exist on request
    let progress = Arc::new(SweepProgress::new(scenarios.len()));
    let _obs = ObsSession::start(config, &progress, control);
    let start = Instant::now();
    let sweep_span = trace::span_with(
        "campaign.sweep",
        "campaign",
        &[("cells", scenarios.len() as u64)],
    );
    let maybe_cells: Vec<Option<CellResult>> = pool.install(|| {
        scenarios
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(index, scenario)| {
                if control.checkpoint() == Checkpoint::Skip {
                    progress.cell_skipped();
                    return None;
                }
                let seed = cell_seed(config.seed, index);
                progress.cell_started(scenario.engine);
                let cell_start = Instant::now();
                let cell_span = trace::span_with(
                    "campaign.cell",
                    "campaign",
                    &[
                        ("cell", index as u64),
                        ("epochs", scenario.dynamics.epochs as u64),
                    ],
                );
                let outcome = run_cell(&scenario, seed, config, &cache, shared.as_ref());
                drop(cell_span);
                // rayon pool threads outlive the sweep; hand buffered
                // events to the sink at this natural quiescence point
                trace::flush();
                let elapsed = cell_start.elapsed();
                progress.cell_finished(scenario.engine, outcome.is_ok(), elapsed);
                Some(CellResult {
                    index,
                    scenario,
                    seed,
                    elapsed_micros: elapsed.as_micros() as u64,
                    outcome,
                })
            })
            .collect()
    });
    let skipped = maybe_cells.iter().filter(|c| c.is_none()).count();
    let cells: Vec<CellResult> = maybe_cells.into_iter().flatten().collect();
    let status = match control.state() {
        SweepState::Aborted => SweepStatus::Aborted,
        SweepState::Draining => SweepStatus::Drained,
        SweepState::Running | SweepState::Paused => SweepStatus::Completed,
    };
    drop(sweep_span);
    trace::flush();
    // reap watchdog helpers abandoned by timed-out live cells (bounded;
    // truly wedged helpers stay registered rather than hanging the sweep)
    backend::live::join_abandoned(Duration::from_millis(config.live_timeout_ms.min(5_000)));
    if let Some(cluster) = shared {
        if let Err(e) = cluster.shutdown() {
            eprintln!("[campaign] shared live cluster teardown: {e}");
        }
    }
    let outcome = CampaignOutcome {
        cells,
        wall: start.elapsed(),
        threads,
        cache: cache.stats(),
        status,
        skipped,
    };
    if let Some(path) = &config.trace_out {
        let sink = TraceSink::global();
        sink.disable();
        let rendered = trace::render_chrome_trace(&sink.drain());
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("[campaign] failed to write trace {}: {e}", path.display());
        }
    }
    outcome
}

/// Boots the sweep-wide shared relay network when `--shared` asked for
/// one and the grid has live cells that fit `live_max_n`: sized to the
/// largest such cell (smaller cells route over a prefix sub-directory),
/// seeded by the campaign seed, booted exactly once against the global
/// [`anonroute_relay::ClusterBudget`]. Returns `None` — falling back to
/// per-cell clusters — when shared mode is off, no live cell fits, or
/// the boot itself fails (which is reported, not fatal).
fn boot_shared_cluster(
    config: &CampaignConfig,
    scenarios: &[Scenario],
) -> Option<anonroute_relay::SharedCluster> {
    if !config.live_shared {
        return None;
    }
    let max_n = scenarios
        .iter()
        .filter(|s| s.engine == EngineKind::Live && s.n <= config.live_max_n)
        .map(|s| s.n)
        .max()?;
    let mut cluster = anonroute_relay::ClusterConfig::new(
        max_n,
        anonroute_core::PathLengthDist::fixed(1), // cells bring their own dist
    );
    cluster.seed = config.seed;
    cluster.cell_size = config.live_cell_size;
    match anonroute_relay::SharedCluster::boot(&cluster) {
        Ok(shared) => Some(shared),
        Err(e) => {
            eprintln!(
                "[campaign] shared live cluster failed to boot ({e}); \
                 falling back to per-cell clusters"
            );
            None
        }
    }
}

/// Below this many cells, an auto-threaded (`threads == 0`) sweep of
/// pure closed-form cells runs serially: exact cells finish in
/// microseconds, so spawning a worker pool costs more than it saves
/// (`BENCH_campaign.json`'s 90-cell sweep was ~11% *slower* on the auto
/// pool than on one thread). Output is unaffected either way — cells are
/// seeded independently of the schedule — and an explicit `--threads`
/// value is always respected.
const SERIAL_SWEEP_MAX_CELLS: usize = 128;

/// The worker-count request for this sweep: `config.threads`, except
/// that small all-exact auto-threaded grids collapse to one thread.
fn effective_threads(config: &CampaignConfig, scenarios: &[Scenario]) -> usize {
    let all_exact = scenarios.iter().all(|s| s.engine == EngineKind::Exact);
    if config.threads == 0 && scenarios.len() < SERIAL_SWEEP_MAX_CELLS && all_exact {
        1
    } else {
        config.threads
    }
}

/// Derives the deterministic per-cell seed: a SplitMix64 mix of the
/// campaign seed and the cell index.
pub fn cell_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed the epoch views (churn draws, rotation resampling)
/// realize from: a hash of the campaign seed and the scenario identity
/// *without* its engine. Engine variants of one multi-round scenario
/// therefore score the *same* realized network evolution — the
/// cross-engine conformance the dynamics layer promises — while their
/// per-cell seeds keep session sampling independent.
pub fn dynamics_seed(campaign_seed: u64, scenario: &Scenario) -> u64 {
    // FNV-1a over the engine-free identity text, mixed with the seed
    let identity = format!(
        "{} {} {} {} {}",
        scenario.n, scenario.c, scenario.path_kind, scenario.strategy, scenario.dynamics
    );
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ campaign_seed;
    for byte in identity.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Schedules one cell: realize the model, strategy, and epoch views
/// (the engine-agnostic feasibility gate — including per-epoch strategy
/// feasibility under churn), then hand the context to the registered
/// backend for the cell's engine.
fn run_cell(
    scenario: &Scenario,
    seed: u64,
    config: &CampaignConfig,
    cache: &EvaluatorCache,
    shared: Option<&anonroute_relay::SharedCluster>,
) -> Result<CellMetrics, String> {
    let setup = phase_timer("cell.setup");
    let model = SystemModel::with_path_kind(scenario.n, scenario.c, scenario.path_kind)
        .map_err(|e| e.to_string())?;
    let dist = scenario.strategy.realize(&model)?;
    // every engine scoring this scenario must see the same realized
    // epochs, so the views derive from the engine-free dynamics seed —
    // never from the per-cell seed, which feeds session sampling only.
    // One-shot cells keep the trivial full view so the dynamics guard
    // (`n >= c + 2`) cannot reject previously valid degenerate cells.
    let dyn_seed = dynamics_seed(config.seed, scenario);
    let views = if scenario.dynamics.is_one_shot() {
        vec![EpochView {
            epoch: 0,
            active: (0..scenario.n).collect(),
            compromised: (scenario.n - scenario.c..scenario.n).collect(),
        }]
    } else {
        let views = scenario
            .dynamics
            .realize(scenario.n, scenario.c, dyn_seed)
            .map_err(|e| e.to_string())?;
        for view in &views {
            let local = SystemModel::with_path_kind(view.n(), scenario.c, scenario.path_kind)
                .map_err(|e| e.to_string())?;
            local
                .validate_dist(&dist)
                .map_err(|e| format!("epoch {}: {e}", view.epoch + 1))?;
        }
        views
    };
    let setup_us = setup.stop_us();
    let mut metrics = backend::backend(scenario.engine).evaluate(&CellCtx {
        scenario,
        model: &model,
        dist: &dist,
        views: &views,
        seed,
        dynamics_seed: dyn_seed,
        config,
        cache,
        shared,
    })?;
    metrics.profile.setup_us = setup_us;
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{EngineKind, ScenarioGrid, StrategySpec};
    use anonroute_core::{engine, PathKind, SystemModel};

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::new().ns([20, 30]).cs([1, 2]).strategies([
            StrategySpec::Fixed(3),
            StrategySpec::Uniform(1, 6),
            StrategySpec::Geometric {
                forward_prob: 0.6,
                lmax: 12,
            },
        ])
    }

    #[test]
    fn exact_cells_match_the_direct_engine() {
        let outcome = run(&small_grid(), &CampaignConfig::default());
        assert_eq!(outcome.cells.len(), 12);
        assert_eq!(outcome.error_count(), 0);
        for cell in &outcome.cells {
            let model = SystemModel::new(cell.scenario.n, cell.scenario.c).unwrap();
            let dist = cell.scenario.strategy.realize(&model).unwrap();
            let expect = engine::anonymity_degree(&model, &dist).unwrap();
            let got = cell.outcome.as_ref().unwrap().h_star;
            assert!(
                (got - expect).abs() < 1e-12,
                "{}: {got} vs {expect}",
                cell.scenario
            );
        }
    }

    #[test]
    fn evaluator_cache_is_shared_across_cells() {
        let outcome = run(&small_grid(), &CampaignConfig::default());
        // 4 models × 3 strategies: one build per model, the rest hit
        assert_eq!(outcome.cache.misses, 4);
        assert_eq!(outcome.cache.hits, 8);
    }

    #[test]
    fn infeasible_cells_report_errors_without_aborting() {
        let grid = ScenarioGrid::new()
            .ns([5])
            .cs([1])
            .strategies([StrategySpec::Fixed(2), StrategySpec::Fixed(7)]);
        let outcome = run(&grid, &CampaignConfig::default());
        assert_eq!(outcome.ok_count(), 1);
        assert_eq!(outcome.error_count(), 1);
        assert!(outcome.cells[1]
            .outcome
            .as_ref()
            .unwrap_err()
            .contains("support"));
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a: Vec<u64> = (0..16).map(|i| cell_seed(7, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| cell_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0));
    }

    #[test]
    fn monte_carlo_cells_agree_with_exact() {
        let grid = ScenarioGrid::new()
            .ns([25])
            .cs([1])
            .strategies([StrategySpec::Uniform(1, 6)])
            .engines([EngineKind::Exact, EngineKind::MonteCarlo]);
        let config = CampaignConfig {
            mc_samples: 30_000,
            ..CampaignConfig::default()
        };
        let outcome = run(&grid, &config);
        let exact = outcome.cells[0].outcome.as_ref().unwrap();
        let mc = outcome.cells[1].outcome.as_ref().unwrap();
        let se = mc.std_error.unwrap();
        assert!(
            (mc.h_star - exact.h_star).abs() <= 4.0 * se + 1e-9,
            "mc {} vs exact {} (se {se})",
            mc.h_star,
            exact.h_star
        );
    }

    #[test]
    fn simulated_cells_agree_with_exact_for_onion_and_crowds() {
        let grid = ScenarioGrid::new()
            .ns([15])
            .cs([1])
            .path_kinds([PathKind::Simple, PathKind::Cyclic])
            .strategies([StrategySpec::Geometric {
                forward_prob: 0.5,
                lmax: 10,
            }])
            .engines([EngineKind::Exact, EngineKind::Simulated]);
        let config = CampaignConfig {
            sim_messages: 1_200,
            ..CampaignConfig::default()
        };
        let outcome = run(&grid, &config);
        assert_eq!(outcome.error_count(), 0);
        for pair in outcome.cells.chunks(2) {
            let exact = pair[0].outcome.as_ref().unwrap();
            let sim = pair[1].outcome.as_ref().unwrap();
            let se = sim.std_error.unwrap();
            assert!(
                (sim.h_star - exact.h_star).abs() <= 5.0 * se + 1e-9,
                "{}: sim {} vs exact {} (se {se})",
                pair[1].scenario,
                sim.h_star,
                exact.h_star
            );
        }
    }

    #[test]
    fn serial_fallback_is_byte_identical_to_a_parallel_sweep() {
        // small_grid is 12 all-exact cells, below SERIAL_SWEEP_MAX_CELLS:
        // auto threading (0) collapses to one worker, an explicit count
        // does not — and the rendered report must not notice
        let auto = CampaignConfig::default();
        assert_eq!(effective_threads(&auto, &small_grid().cells()), 1);
        let explicit = CampaignConfig {
            threads: 4,
            ..CampaignConfig::default()
        };
        assert_eq!(effective_threads(&explicit, &small_grid().cells()), 4);
        let serial = run(&small_grid(), &auto);
        let parallel = run(&small_grid(), &explicit);
        assert_eq!(serial.threads, 1);
        assert_eq!(parallel.threads, 4);
        assert_eq!(
            crate::report::render_csv(&serial),
            crate::report::render_csv(&parallel)
        );
    }

    #[test]
    fn auto_threading_is_kept_for_non_exact_or_large_sweeps() {
        // a simulated engine in the mix disables the serial fallback …
        let config = CampaignConfig::default();
        let mixed = small_grid().engines([EngineKind::Exact, EngineKind::Simulated]);
        assert_eq!(effective_threads(&config, &mixed.cells()), 0);
        // … and so does an all-exact grid at or above the threshold
        let wide = ScenarioGrid::new()
            .ns((20..150).collect::<Vec<_>>())
            .cs([1])
            .strategies([StrategySpec::Fixed(3)]);
        assert!(wide.cells().len() >= SERIAL_SWEEP_MAX_CELLS);
        assert_eq!(effective_threads(&config, &wide.cells()), 0);
    }

    #[test]
    fn simulated_cyclic_requires_geometric() {
        let grid = ScenarioGrid::new()
            .ns([10])
            .cs([1])
            .path_kinds([PathKind::Cyclic])
            .strategies([StrategySpec::Fixed(3)])
            .engines([EngineKind::Simulated]);
        let outcome = run(&grid, &CampaignConfig::default());
        assert_eq!(outcome.error_count(), 1);
    }

    #[test]
    fn wedged_live_cells_record_errors_instead_of_hanging() {
        // a 1 ms watchdog fires before any cluster can finish booting:
        // the sweep must complete with a per-cell error, not hang
        let grid = ScenarioGrid::new()
            .ns([4])
            .cs([1])
            .strategies([StrategySpec::Fixed(1)])
            .engines([EngineKind::Live]);
        let config = CampaignConfig {
            live_messages: 10,
            live_timeout_ms: 1,
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let outcome = run(&grid, &config);
        assert!(start.elapsed() < Duration::from_secs(30), "sweep hung");
        assert_eq!(outcome.error_count(), 1);
        let err = outcome.cells[0].outcome.as_ref().unwrap_err();
        assert!(err.contains("wedged") || err.contains("within"), "{err}");
    }
}
