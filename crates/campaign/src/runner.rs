//! The parallel sweep executor: how a [`ScenarioGrid`] gets evaluated.
//!
//! Design invariants:
//!
//! * **Determinism** — every cell derives its RNG seed from the campaign
//!   seed and the cell's grid index (SplitMix64 mix), and cells never
//!   share mutable state other than the [`EvaluatorCache`], whose values
//!   are pure functions of the key. A grid therefore produces bit-for-bit
//!   identical numeric results at any thread count.
//! * **Shared tables** — exact-engine cells for the same
//!   `(n, c, path_kind, lmax)` model reuse one memoized
//!   [`Evaluator`](anonroute_core::engine::simple::Evaluator) through the
//!   cache instead of rebuilding the log-factorial tables per cell.
//! * **Isolation** — an infeasible cell (e.g. `F(7)` in a 5-node system)
//!   records an error string; it never aborts the sweep.

use std::sync::Arc;
use std::time::{Duration, Instant};

use anonroute_adversary::{attack_trace, Adversary};
use anonroute_core::engine::{CacheStats, EvaluatorCache};
use anonroute_core::{engine, PathKind, PathLengthDist, SystemModel};
use anonroute_protocols::crowds::crowd;
use anonroute_protocols::onion_routing::onion_network;
use anonroute_protocols::RouteSampler;
use anonroute_sim::{LatencyModel, SimTime, Simulation};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use crate::grid::{EngineKind, Scenario, ScenarioGrid, StrategySpec};

/// Execution settings of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads; `0` auto-detects the machine's parallelism.
    pub threads: usize,
    /// Campaign seed; each cell derives its own stream from it.
    pub seed: u64,
    /// Sample count for Monte-Carlo engine cells.
    pub mc_samples: usize,
    /// Message count for simulated-attack engine cells.
    pub sim_messages: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 0,
            seed: 7,
            mc_samples: 20_000,
            sim_messages: 1_500,
        }
    }
}

/// Numeric outcome of one feasible cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Anonymity degree `H*` in bits (exact, estimated, or empirical,
    /// per the cell's engine).
    pub h_star: f64,
    /// `h_star / log2 n`.
    pub normalized: f64,
    /// Expected path length of the realized strategy.
    pub mean_len: f64,
    /// Probability the adversary identifies the sender outright
    /// (exact engine only).
    pub p_exposed: Option<f64>,
    /// Standard error of `h_star` (sampling engines only).
    pub std_error: Option<f64>,
    /// Sample/message count (sampling engines only).
    pub samples: Option<usize>,
}

/// One evaluated cell: scenario, derived seed, wall time, and outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Index of the cell in [`ScenarioGrid::cells`] order.
    pub index: usize,
    /// The evaluated scenario.
    pub scenario: Scenario,
    /// The cell's derived RNG seed.
    pub seed: u64,
    /// Wall-clock time spent on this cell, in microseconds.
    pub elapsed_micros: u64,
    /// Metrics, or the reason the cell was infeasible.
    pub outcome: Result<CellMetrics, String>,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Per-cell results, in grid order.
    pub cells: Vec<CellResult>,
    /// Total wall-clock time of the sweep.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Evaluator-cache hit/miss counters.
    pub cache: CacheStats,
}

impl CampaignOutcome {
    /// Number of cells that produced metrics.
    pub fn ok_count(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Number of infeasible/error cells.
    pub fn error_count(&self) -> usize {
        self.cells.len() - self.ok_count()
    }

    /// Total of the per-cell wall times (exceeds `wall` when parallel).
    pub fn cpu_micros(&self) -> u64 {
        self.cells.iter().map(|c| c.elapsed_micros).sum()
    }
}

/// Runs every cell of `grid` under `config` and returns results in grid
/// order.
pub fn run(grid: &ScenarioGrid, config: &CampaignConfig) -> CampaignOutcome {
    let pool = ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("thread pool construction is infallible");
    let threads = pool.current_num_threads();
    let cache = Arc::new(EvaluatorCache::new());
    let scenarios = grid.cells();
    let start = Instant::now();
    let cells: Vec<CellResult> = pool.install(|| {
        scenarios
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(index, scenario)| {
                let seed = cell_seed(config.seed, index);
                let cell_start = Instant::now();
                let outcome = run_cell(&scenario, seed, config, &cache);
                CellResult {
                    index,
                    scenario,
                    seed,
                    elapsed_micros: cell_start.elapsed().as_micros() as u64,
                    outcome,
                }
            })
            .collect()
    });
    CampaignOutcome {
        cells,
        wall: start.elapsed(),
        threads,
        cache: cache.stats(),
    }
}

/// Derives the deterministic per-cell seed: a SplitMix64 mix of the
/// campaign seed and the cell index.
pub fn cell_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates one scenario.
fn run_cell(
    scenario: &Scenario,
    seed: u64,
    config: &CampaignConfig,
    cache: &EvaluatorCache,
) -> Result<CellMetrics, String> {
    let model = SystemModel::with_path_kind(scenario.n, scenario.c, scenario.path_kind)
        .map_err(|e| e.to_string())?;
    let dist = scenario.strategy.realize(&model)?;
    match scenario.engine {
        EngineKind::Exact => exact_cell(&model, &dist, cache),
        EngineKind::MonteCarlo => monte_carlo_cell(&model, &dist, config.mc_samples, seed),
        EngineKind::Simulated => {
            simulated_cell(&model, &dist, &scenario.strategy, config.sim_messages, seed)
        }
    }
}

fn exact_cell(
    model: &SystemModel,
    dist: &PathLengthDist,
    cache: &EvaluatorCache,
) -> Result<CellMetrics, String> {
    let analysis = match model.path_kind() {
        PathKind::Simple => {
            // one shared evaluator per model covers every strategy on it
            let ev = cache
                .evaluator(model, model.n() - 1)
                .map_err(|e| e.to_string())?;
            ev.analyze(dist.pmf())
        }
        PathKind::Cyclic => engine::analysis(model, dist).map_err(|e| e.to_string())?,
    };
    Ok(CellMetrics {
        h_star: analysis.h_star,
        normalized: analysis.normalized(model),
        mean_len: dist.mean(),
        p_exposed: Some(analysis.p_exposed),
        std_error: None,
        samples: None,
    })
}

fn monte_carlo_cell(
    model: &SystemModel,
    dist: &PathLengthDist,
    samples: usize,
    seed: u64,
) -> Result<CellMetrics, String> {
    let est =
        engine::estimate_anonymity_degree(model, dist, samples, seed).map_err(|e| e.to_string())?;
    Ok(CellMetrics {
        h_star: est.mean,
        normalized: est.mean / model.max_entropy_bits(),
        mean_len: dist.mean(),
        p_exposed: None,
        std_error: Some(est.std_error),
        samples: Some(est.samples),
    })
}

/// Runs the full protocol stack and attacks the trace: onion routing for
/// simple paths, Crowds for cyclic geometric strategies.
fn simulated_cell(
    model: &SystemModel,
    dist: &PathLengthDist,
    strategy: &StrategySpec,
    messages: usize,
    seed: u64,
) -> Result<CellMetrics, String> {
    match model.path_kind() {
        PathKind::Simple => {
            let sampler = RouteSampler::new(model.n(), dist.clone(), PathKind::Simple)
                .map_err(|e| e.to_string())?;
            let nodes = onion_network(model.n(), &sampler, 2048, b"anonroute-campaign")
                .map_err(|e| e.to_string())?;
            attack_simulation(
                nodes,
                LatencyModel::Uniform { lo: 50, hi: 500 },
                model,
                dist,
                messages,
                seed,
            )
        }
        PathKind::Cyclic => {
            let StrategySpec::Geometric { forward_prob, .. } = strategy else {
                return Err(
                    "the simulated engine models cyclic paths with Crowds, which requires a \
                     geometric strategy"
                        .into(),
                );
            };
            let nodes = crowd(model.n(), *forward_prob).map_err(|e| e.to_string())?;
            attack_simulation(
                nodes,
                LatencyModel::Constant(100),
                model,
                dist,
                messages,
                seed,
            )
        }
    }
}

/// Drives `messages` originations through `nodes`, then scores the
/// passive adversary's attack on the trace.
fn attack_simulation<B: anonroute_sim::NodeBehavior>(
    nodes: Vec<B>,
    latency: LatencyModel,
    model: &SystemModel,
    dist: &PathLengthDist,
    messages: usize,
    seed: u64,
) -> Result<CellMetrics, String> {
    let n = model.n();
    let mut sim = Simulation::new(nodes, latency, seed);
    let mut salt = seed | 1;
    for i in 0..messages as u64 {
        salt = salt
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sim.schedule_origination(
            SimTime::from_micros(i * 100),
            (salt >> 33) as usize % n,
            vec![0u8; 4],
        );
    }
    sim.run();
    let compromised: Vec<usize> = (n - model.c()..n).collect();
    let adversary = Adversary::new(n, &compromised).map_err(|e| e.to_string())?;
    let report = attack_trace(&adversary, model, dist, sim.trace(), sim.originations())
        .map_err(|e| e.to_string())?;
    Ok(CellMetrics {
        h_star: report.empirical_h_star,
        normalized: report.empirical_h_star / model.max_entropy_bits(),
        mean_len: dist.mean(),
        p_exposed: None,
        std_error: Some(report.std_error),
        samples: Some(messages),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ScenarioGrid;
    use anonroute_core::PathLengthDist;

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::new().ns([20, 30]).cs([1, 2]).strategies([
            StrategySpec::Fixed(3),
            StrategySpec::Uniform(1, 6),
            StrategySpec::Geometric {
                forward_prob: 0.6,
                lmax: 12,
            },
        ])
    }

    #[test]
    fn exact_cells_match_the_direct_engine() {
        let outcome = run(&small_grid(), &CampaignConfig::default());
        assert_eq!(outcome.cells.len(), 12);
        assert_eq!(outcome.error_count(), 0);
        for cell in &outcome.cells {
            let model = SystemModel::new(cell.scenario.n, cell.scenario.c).unwrap();
            let dist = cell.scenario.strategy.realize(&model).unwrap();
            let expect = engine::anonymity_degree(&model, &dist).unwrap();
            let got = cell.outcome.as_ref().unwrap().h_star;
            assert!(
                (got - expect).abs() < 1e-12,
                "{}: {got} vs {expect}",
                cell.scenario
            );
        }
    }

    #[test]
    fn evaluator_cache_is_shared_across_cells() {
        let outcome = run(&small_grid(), &CampaignConfig::default());
        // 4 models × 3 strategies: one build per model, the rest hit
        assert_eq!(outcome.cache.misses, 4);
        assert_eq!(outcome.cache.hits, 8);
    }

    #[test]
    fn infeasible_cells_report_errors_without_aborting() {
        let grid = ScenarioGrid::new()
            .ns([5])
            .cs([1])
            .strategies([StrategySpec::Fixed(2), StrategySpec::Fixed(7)]);
        let outcome = run(&grid, &CampaignConfig::default());
        assert_eq!(outcome.ok_count(), 1);
        assert_eq!(outcome.error_count(), 1);
        assert!(outcome.cells[1]
            .outcome
            .as_ref()
            .unwrap_err()
            .contains("support"));
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a: Vec<u64> = (0..16).map(|i| cell_seed(7, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| cell_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0));
    }

    #[test]
    fn monte_carlo_cells_agree_with_exact() {
        let grid = ScenarioGrid::new()
            .ns([25])
            .cs([1])
            .strategies([StrategySpec::Uniform(1, 6)])
            .engines([EngineKind::Exact, EngineKind::MonteCarlo]);
        let config = CampaignConfig {
            mc_samples: 30_000,
            ..CampaignConfig::default()
        };
        let outcome = run(&grid, &config);
        let exact = outcome.cells[0].outcome.as_ref().unwrap();
        let mc = outcome.cells[1].outcome.as_ref().unwrap();
        let se = mc.std_error.unwrap();
        assert!(
            (mc.h_star - exact.h_star).abs() <= 4.0 * se + 1e-9,
            "mc {} vs exact {} (se {se})",
            mc.h_star,
            exact.h_star
        );
    }

    #[test]
    fn simulated_cells_agree_with_exact_for_onion_and_crowds() {
        let grid = ScenarioGrid::new()
            .ns([15])
            .cs([1])
            .path_kinds([PathKind::Simple, PathKind::Cyclic])
            .strategies([StrategySpec::Geometric {
                forward_prob: 0.5,
                lmax: 10,
            }])
            .engines([EngineKind::Exact, EngineKind::Simulated]);
        let config = CampaignConfig {
            sim_messages: 1_200,
            ..CampaignConfig::default()
        };
        let outcome = run(&grid, &config);
        assert_eq!(outcome.error_count(), 0);
        for pair in outcome.cells.chunks(2) {
            let exact = pair[0].outcome.as_ref().unwrap();
            let sim = pair[1].outcome.as_ref().unwrap();
            let se = sim.std_error.unwrap();
            assert!(
                (sim.h_star - exact.h_star).abs() <= 5.0 * se + 1e-9,
                "{}: sim {} vs exact {} (se {se})",
                pair[1].scenario,
                sim.h_star,
                exact.h_star
            );
        }
    }

    #[test]
    fn simulated_cyclic_requires_geometric() {
        let grid = ScenarioGrid::new()
            .ns([10])
            .cs([1])
            .path_kinds([PathKind::Cyclic])
            .strategies([StrategySpec::Fixed(3)])
            .engines([EngineKind::Simulated]);
        let outcome = run(&grid, &CampaignConfig::default());
        assert_eq!(outcome.error_count(), 1);
    }

    #[test]
    fn exact_cell_uses_full_support_evaluator() {
        // the shared evaluator spans 0..=n-1 regardless of each strategy's
        // own support; H* must still match a support-sized evaluation
        let model = SystemModel::new(40, 2).unwrap();
        let cache = EvaluatorCache::new();
        let dist = PathLengthDist::uniform(2, 9).unwrap();
        let via_cell = exact_cell(&model, &dist, &cache).unwrap();
        let direct = engine::anonymity_degree(&model, &dist).unwrap();
        assert!((via_cell.h_star - direct).abs() < 1e-12);
    }
}
