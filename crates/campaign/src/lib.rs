//! # anonroute-campaign
//!
//! Declarative scenario grids and a parallel, deterministic sweep runner
//! for the `anonroute` workspace — the substrate that turns "regenerate
//! one figure" into "evaluate any cartesian family of scenarios".
//!
//! A [`ScenarioGrid`] spans eight axes:
//!
//! * system size `n`,
//! * compromised count `c`,
//! * [`PathKind`](anonroute_core::PathKind) (simple / cyclic),
//! * strategy family ([`StrategySpec`]: fixed / uniform / two-point /
//!   geometric / optimal),
//! * scoring engine ([`EngineKind`]: exact closed form, Monte-Carlo
//!   estimation, a full protocol simulation attacked by the passive
//!   adversary, or a **live loopback TCP relay cluster** attacked
//!   through its per-link tap),
//! * and the multi-round dynamics axes — epoch count,
//!   compromised-set [`RotationPolicy`], and [`ChurnModel`] — under
//!   which every engine scores the *cumulative* anonymity the long-term
//!   intersection adversary achieves
//!   ([`anonroute_core::epochs`]).
//!
//! Scoring is pluggable: each engine kind maps to an
//! [`EvalBackend`] implementation in the
//! [`backend`] registry, and the scheduler ([`runner`]) knows nothing
//! about how cells are scored — one grid can span closed-form math and
//! genuine TCP traffic.
//!
//! [`run`] executes the expanded grid on a rayon thread pool. Exact cells
//! share memoized
//! [`Evaluator`](anonroute_core::engine::simple::Evaluator) tables through
//! an [`EvaluatorCache`](anonroute_core::engine::EvaluatorCache) keyed by
//! `(n, c, path_kind, lmax)`, and every cell derives its RNG seed from
//! the campaign seed and its grid index — so results are bit-for-bit
//! identical at any thread count (live cells: per seed; see the
//! determinism contract in [`backend`]). [`report`] renders JSON Lines
//! and CSV; [`manifest`] writes a machine-readable run manifest next to
//! them; [`spec`] parses grids from compact flag values or a TOML-subset
//! file. [`progress`] carries live sweep progress to a stderr ticker and
//! the `anonroute-obs` metrics endpoint — strictly write-only from the
//! runner's side, so observability never perturbs results.
//!
//! ## Quickstart
//!
//! ```
//! use anonroute_campaign::{run, CampaignConfig, EngineKind, ScenarioGrid, StrategySpec};
//!
//! let grid = ScenarioGrid::new()
//!     .ns([50, 100])
//!     .cs([1, 2])
//!     .strategies([
//!         StrategySpec::Fixed(5),
//!         StrategySpec::Uniform(2, 8),
//!     ])
//!     .engines([EngineKind::Exact]);
//!
//! let outcome = run(&grid, &CampaignConfig::default());
//! assert_eq!(outcome.cells.len(), 8);
//! assert_eq!(outcome.error_count(), 0);
//! // paper anchor: at n = 100, c = 1 the uniform spread beats F(5)
//! let h = |i: usize| outcome.cells[i].outcome.as_ref().unwrap().h_star;
//! assert!(h(5) > h(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod grid;
pub mod manifest;
pub mod progress;
pub mod report;
pub mod runner;
pub mod spec;

pub use anonroute_core::epochs::{ChurnModel, EpochSchedule, RotationPolicy};
pub use anonroute_obs::{SweepControl, SweepState};
pub use backend::{CellCtx, CellMetrics, EvalBackend, PhaseProfile};
pub use grid::{parse_path_kind, EngineKind, Scenario, ScenarioGrid, StrategySpec};
pub use manifest::{render_manifest, validate_manifest, write_manifest};
pub use progress::{ObsSession, SweepProgress};
pub use runner::{
    cell_seed, run, run_controlled, CampaignConfig, CampaignOutcome, CellResult, SweepStatus,
};
