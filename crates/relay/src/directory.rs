//! The network directory: where each member listens and its public key.
//!
//! Deployed onion systems publish a signed directory of router addresses
//! and long-term public keys; senders build circuits against it. Here the
//! directory is a plain value: the cluster harness constructs it from its
//! bound listeners, and the CLI parses it from a small text format in
//! which identities are derived from a shared *net seed* (the same
//! deterministic provisioning [`NodeIdentity::derive`] the rest of the
//! workspace uses for reproducible deployments).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::{Arc, RwLock};

use anonroute_crypto::handshake::NodeIdentity;
use anonroute_sim::NodeId;

use crate::error::{Error, Result};

/// One member's directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Member id, `0..n`.
    pub id: NodeId,
    /// TCP address the member's relay listens on.
    pub addr: SocketAddr,
    /// Static X25519 public key for the circuit handshake.
    pub public: [u8; 32],
}

/// The full network map: all member relays plus the receiver endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    nodes: Vec<NodeInfo>,
    receiver: SocketAddr,
}

impl Directory {
    /// Builds a directory; entries must be dense (`nodes[i].id == i`).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when ids are out of order, the directory is
    /// empty, or too large for the 16-bit next-hop field.
    pub fn new(nodes: Vec<NodeInfo>, receiver: SocketAddr) -> Result<Self> {
        if nodes.is_empty() {
            return Err(Error::Config("a directory needs at least one relay".into()));
        }
        // the onion next-hop field is u16 with u16::MAX reserved for DELIVER
        if nodes.len() >= u16::MAX as usize {
            return Err(Error::Config(format!(
                "{} relays exceed the 16-bit id space",
                nodes.len()
            )));
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.id != i {
                return Err(Error::Config(format!(
                    "directory entry {i} has id {} (entries must be dense and ordered)",
                    node.id
                )));
            }
        }
        Ok(Directory { nodes, receiver })
    }

    /// Number of member relays.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The entry for member `id`, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        self.nodes.get(id)
    }

    /// All entries, ordered by id.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Where the receiver (destination server) listens.
    pub fn receiver(&self) -> SocketAddr {
        self.receiver
    }

    /// Parses the CLI text format, deriving public keys from `net_seed`:
    ///
    /// ```text
    /// receiver 127.0.0.1:9000
    /// 0 127.0.0.1:9001
    /// 1 127.0.0.1:9002
    /// ```
    ///
    /// Blank lines and `#` comments are ignored. Every relay daemon and
    /// sender sharing the same net seed derives the same identities, so
    /// the file only needs addresses.
    ///
    /// Relay ids must appear **in ascending dense order** (`0, 1, 2,
    /// …`) and every address (including the receiver's) must be
    /// unique: a shuffled, duplicated, or recycled line is almost
    /// always a hand-editing mistake, and silently reordering used to
    /// defer it to a confusing downstream failure.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] with the offending line number(s) on malformed
    /// lines, duplicate or out-of-order ids, duplicate addresses, a
    /// missing or repeated receiver, or sparse ids.
    pub fn parse(text: &str, net_seed: &[u8]) -> Result<Self> {
        let mut receiver: Option<(SocketAddr, usize)> = None;
        let mut entries: Vec<(usize, SocketAddr)> = Vec::new();
        let mut seen_ids: HashMap<usize, usize> = HashMap::new();
        let mut seen_addrs: HashMap<SocketAddr, usize> = HashMap::new();
        let mut last: Option<(usize, usize)> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (who, addr) = (parts.next(), parts.next());
            let (Some(who), Some(addr), None) = (who, addr, parts.next()) else {
                return Err(Error::Config(format!(
                    "directory line {lineno}: expected `<id|receiver> <host:port>`, got `{line}`"
                )));
            };
            let addr: SocketAddr = addr.parse().map_err(|_| {
                Error::Config(format!("directory line {lineno}: bad address `{addr}`"))
            })?;
            if let Some(&first) = seen_addrs.get(&addr) {
                return Err(Error::Config(format!(
                    "directory line {lineno}: duplicate address {addr} (first used on line {first})"
                )));
            }
            seen_addrs.insert(addr, lineno);
            if who == "receiver" {
                if let Some((_, first)) = receiver.replace((addr, lineno)) {
                    return Err(Error::Config(format!(
                        "directory line {lineno}: duplicate receiver line (first on line {first})"
                    )));
                }
            } else {
                let id: usize = who.parse().map_err(|_| {
                    Error::Config(format!("directory line {lineno}: bad id `{who}`"))
                })?;
                if let Some(&first) = seen_ids.get(&id) {
                    return Err(Error::Config(format!(
                        "directory line {lineno}: duplicate id {id} (first declared on line {first})"
                    )));
                }
                if let Some((prev_id, prev_line)) = last {
                    if id < prev_id {
                        return Err(Error::Config(format!(
                            "directory line {lineno}: id {id} out of order (after id {prev_id} on line {prev_line}; ids must ascend 0, 1, 2, …)"
                        )));
                    }
                }
                seen_ids.insert(id, lineno);
                last = Some((id, lineno));
                entries.push((id, addr));
            }
        }
        let receiver = receiver
            .ok_or_else(|| Error::Config("directory has no receiver line".into()))?
            .0;
        let nodes = entries
            .into_iter()
            .map(|(id, addr)| NodeInfo {
                id,
                addr,
                public: *NodeIdentity::derive(net_seed, id as u64).public(),
            })
            .collect();
        Directory::new(nodes, receiver)
    }
}

/// A hot-swappable handle to the current [`Directory`].
///
/// Relay daemons serving a gossiped topology read the directory through
/// this cell on every cell they forward; the gossip layer stores a new
/// `Directory` whenever a merged snapshot changes the (dense) member
/// set. Readers get an `Arc` snapshot, so a swap never blocks or tears
/// an in-flight forward. When churn makes the view sparse (a mid-range
/// relay died), the cell intentionally keeps the last dense directory:
/// onion next-hop fields are directory indices, and circuits built
/// before the departure must still resolve addresses — dials to the
/// dead relay fail and are counted, which is exactly the signal the
/// peer-health layer feeds back to the authority.
#[derive(Debug, Clone)]
pub struct DirectoryCell {
    inner: Arc<RwLock<Arc<Directory>>>,
}

impl DirectoryCell {
    /// A cell initially serving `directory`.
    pub fn new(directory: Directory) -> DirectoryCell {
        DirectoryCell {
            inner: Arc::new(RwLock::new(Arc::new(directory))),
        }
    }

    /// The current directory snapshot.
    pub fn load(&self) -> Arc<Directory> {
        Arc::clone(&self.inner.read().expect("directory cell"))
    }

    /// Atomically replaces the directory.
    pub fn store(&self, directory: Directory) {
        *self.inner.write().expect("directory cell") = Arc::new(directory);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn parse_roundtrips_with_derived_identities() {
        let text = "\
# test net
receiver 127.0.0.1:9000

0 127.0.0.1:9001
1 127.0.0.1:9002
";
        let dir = Directory::parse(text, b"seed").unwrap();
        assert_eq!(dir.n(), 2);
        assert_eq!(dir.receiver(), addr(9000));
        assert_eq!(dir.node(0).unwrap().addr, addr(9001));
        assert_eq!(dir.node(1).unwrap().addr, addr(9002));
        assert_eq!(
            dir.node(1).unwrap().public,
            *NodeIdentity::derive(b"seed", 1).public()
        );
        assert!(dir.node(2).is_none());
    }

    /// Extracts the `Error::Config` message or panics.
    fn config_err(text: &str) -> String {
        match Directory::parse(text, b"s") {
            Err(Error::Config(msg)) => msg,
            other => panic!("expected Error::Config, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_duplicate_ids_with_both_line_numbers() {
        let msg = config_err("receiver 127.0.0.1:1\n0 127.0.0.1:2\n0 127.0.0.1:3");
        assert!(msg.contains("line 3"), "got: {msg}");
        assert!(msg.contains("duplicate id 0"), "got: {msg}");
        assert!(msg.contains("line 2"), "got: {msg}");
    }

    #[test]
    fn parse_rejects_out_of_order_ids_with_line_numbers() {
        let msg = config_err("receiver 127.0.0.1:1\n1 127.0.0.1:2\n0 127.0.0.1:3");
        assert!(msg.contains("line 3"), "got: {msg}");
        assert!(msg.contains("out of order"), "got: {msg}");
        assert!(msg.contains("line 2"), "got: {msg}");
    }

    #[test]
    fn parse_rejects_duplicate_addresses_with_both_line_numbers() {
        let msg = config_err("receiver 127.0.0.1:1\n0 127.0.0.1:2\n1 127.0.0.1:2");
        assert!(msg.contains("line 3"), "got: {msg}");
        assert!(msg.contains("duplicate address 127.0.0.1:2"), "got: {msg}");
        assert!(msg.contains("line 2"), "got: {msg}");

        // the receiver's address is part of the uniqueness domain too
        let msg = config_err("receiver 127.0.0.1:1\n0 127.0.0.1:1");
        assert!(msg.contains("line 2"), "got: {msg}");
        assert!(msg.contains("duplicate address"), "got: {msg}");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Directory::parse("0 127.0.0.1:1", b"s").is_err()); // no receiver
        assert!(Directory::parse("receiver 127.0.0.1:1\nx y z", b"s").is_err());
        assert!(Directory::parse("receiver 127.0.0.1:1\nzero 127.0.0.1:2", b"s").is_err());
        assert!(Directory::parse("receiver 127.0.0.1:1\n0 nowhere", b"s").is_err());
        assert!(Directory::parse(
            "receiver 127.0.0.1:1\nreceiver 127.0.0.1:2\n0 127.0.0.1:3",
            b"s"
        )
        .is_err());
        // sparse ids
        assert!(
            Directory::parse("receiver 127.0.0.1:1\n0 127.0.0.1:2\n2 127.0.0.1:3", b"s").is_err()
        );
        // empty
        assert!(Directory::parse("receiver 127.0.0.1:1", b"s").is_err());
    }

    #[test]
    fn construction_validates_density() {
        let info = |id| NodeInfo {
            id,
            addr: addr(9100 + id as u16),
            public: [0u8; 32],
        };
        assert!(Directory::new(vec![info(0), info(1)], addr(9000)).is_ok());
        assert!(Directory::new(vec![info(1), info(0)], addr(9000)).is_err());
        assert!(Directory::new(vec![], addr(9000)).is_err());
    }
}
