//! The network directory: where each member listens and its public key.
//!
//! Deployed onion systems publish a signed directory of router addresses
//! and long-term public keys; senders build circuits against it. Here the
//! directory is a plain value: the cluster harness constructs it from its
//! bound listeners, and the CLI parses it from a small text format in
//! which identities are derived from a shared *net seed* (the same
//! deterministic provisioning [`NodeIdentity::derive`] the rest of the
//! workspace uses for reproducible deployments).

use std::net::SocketAddr;

use anonroute_crypto::handshake::NodeIdentity;
use anonroute_sim::NodeId;

use crate::error::{Error, Result};

/// One member's directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Member id, `0..n`.
    pub id: NodeId,
    /// TCP address the member's relay listens on.
    pub addr: SocketAddr,
    /// Static X25519 public key for the circuit handshake.
    pub public: [u8; 32],
}

/// The full network map: all member relays plus the receiver endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    nodes: Vec<NodeInfo>,
    receiver: SocketAddr,
}

impl Directory {
    /// Builds a directory; entries must be dense (`nodes[i].id == i`).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when ids are out of order, the directory is
    /// empty, or too large for the 16-bit next-hop field.
    pub fn new(nodes: Vec<NodeInfo>, receiver: SocketAddr) -> Result<Self> {
        if nodes.is_empty() {
            return Err(Error::Config("a directory needs at least one relay".into()));
        }
        // the onion next-hop field is u16 with u16::MAX reserved for DELIVER
        if nodes.len() >= u16::MAX as usize {
            return Err(Error::Config(format!(
                "{} relays exceed the 16-bit id space",
                nodes.len()
            )));
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.id != i {
                return Err(Error::Config(format!(
                    "directory entry {i} has id {} (entries must be dense and ordered)",
                    node.id
                )));
            }
        }
        Ok(Directory { nodes, receiver })
    }

    /// Number of member relays.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The entry for member `id`, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        self.nodes.get(id)
    }

    /// All entries, ordered by id.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Where the receiver (destination server) listens.
    pub fn receiver(&self) -> SocketAddr {
        self.receiver
    }

    /// Parses the CLI text format, deriving public keys from `net_seed`:
    ///
    /// ```text
    /// receiver 127.0.0.1:9000
    /// 0 127.0.0.1:9001
    /// 1 127.0.0.1:9002
    /// ```
    ///
    /// Blank lines and `#` comments are ignored. Every relay daemon and
    /// sender sharing the same net seed derives the same identities, so
    /// the file only needs addresses.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] on malformed lines, missing receiver, or sparse
    /// ids.
    pub fn parse(text: &str, net_seed: &[u8]) -> Result<Self> {
        let mut receiver = None;
        let mut entries: Vec<(usize, SocketAddr)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (who, addr) = (parts.next(), parts.next());
            let (Some(who), Some(addr), None) = (who, addr, parts.next()) else {
                return Err(Error::Config(format!(
                    "directory line {}: expected `<id|receiver> <host:port>`, got `{line}`",
                    lineno + 1
                )));
            };
            let addr: SocketAddr = addr.parse().map_err(|_| {
                Error::Config(format!(
                    "directory line {}: bad address `{addr}`",
                    lineno + 1
                ))
            })?;
            if who == "receiver" {
                if receiver.replace(addr).is_some() {
                    return Err(Error::Config("duplicate receiver line".into()));
                }
            } else {
                let id: usize = who.parse().map_err(|_| {
                    Error::Config(format!("directory line {}: bad id `{who}`", lineno + 1))
                })?;
                entries.push((id, addr));
            }
        }
        let receiver =
            receiver.ok_or_else(|| Error::Config("directory has no receiver line".into()))?;
        entries.sort_by_key(|&(id, _)| id);
        let nodes = entries
            .into_iter()
            .map(|(id, addr)| NodeInfo {
                id,
                addr,
                public: *NodeIdentity::derive(net_seed, id as u64).public(),
            })
            .collect();
        Directory::new(nodes, receiver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn parse_roundtrips_with_derived_identities() {
        let text = "\
# test net
receiver 127.0.0.1:9000

1 127.0.0.1:9002
0 127.0.0.1:9001
";
        let dir = Directory::parse(text, b"seed").unwrap();
        assert_eq!(dir.n(), 2);
        assert_eq!(dir.receiver(), addr(9000));
        assert_eq!(dir.node(0).unwrap().addr, addr(9001));
        assert_eq!(dir.node(1).unwrap().addr, addr(9002));
        assert_eq!(
            dir.node(1).unwrap().public,
            *NodeIdentity::derive(b"seed", 1).public()
        );
        assert!(dir.node(2).is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Directory::parse("0 127.0.0.1:1", b"s").is_err()); // no receiver
        assert!(Directory::parse("receiver 127.0.0.1:1\nx y z", b"s").is_err());
        assert!(Directory::parse("receiver 127.0.0.1:1\nzero 127.0.0.1:2", b"s").is_err());
        assert!(Directory::parse("receiver 127.0.0.1:1\n0 nowhere", b"s").is_err());
        assert!(Directory::parse(
            "receiver 127.0.0.1:1\nreceiver 127.0.0.1:2\n0 127.0.0.1:3",
            b"s"
        )
        .is_err());
        // sparse ids
        assert!(
            Directory::parse("receiver 127.0.0.1:1\n0 127.0.0.1:2\n2 127.0.0.1:3", b"s").is_err()
        );
        // empty
        assert!(Directory::parse("receiver 127.0.0.1:1", b"s").is_err());
    }

    #[test]
    fn construction_validates_density() {
        let info = |id| NodeInfo {
            id,
            addr: addr(9100 + id as u16),
            public: [0u8; 32],
        };
        assert!(Directory::new(vec![info(0), info(1)], addr(9000)).is_ok());
        assert!(Directory::new(vec![info(1), info(0)], addr(9000)).is_err());
        assert!(Directory::new(vec![], addr(9000)).is_err());
    }
}
