//! The per-link observation tap.
//!
//! Every party records the link transfers it originates — client → first
//! hop, relay → relay, exit → receiver — as
//! [`anonroute_sim::TransferRecord`]s against a shared wall-clock epoch.
//! The result is the same omniscient ground-truth trace the discrete-event
//! simulator produces, so [`anonroute_adversary::Adversary`] (which
//! filters it down to compromised vantage points) consumes live TCP
//! traffic unchanged.
//!
//! Records are pushed *before* the bytes hit the socket: a hop's record
//! always precedes the downstream hop's (the receive happens after the
//! send), so per-message record order equals path order even when
//! timestamps collide at microsecond resolution.
//!
//! [`anonroute_adversary::Adversary`]: ../../anonroute_adversary/reconstruct/struct.Adversary.html

use std::sync::{Arc, Mutex};
use std::time::Instant;

use anonroute_sim::{Endpoint, MsgId, SimTime, TransferRecord};

/// A cheaply clonable handle to the shared link trace.
#[derive(Debug, Clone)]
pub struct LinkTap {
    epoch: Instant,
    records: Arc<Mutex<Vec<TransferRecord>>>,
}

impl LinkTap {
    /// Creates an empty tap; the epoch is `now`.
    pub fn new() -> Self {
        LinkTap {
            epoch: Instant::now(),
            records: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Microseconds elapsed since the tap's epoch, as simulator time.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Records one link transfer (call immediately before sending).
    pub fn record(&self, from: Endpoint, to: Endpoint, msg: MsgId) {
        let record = TransferRecord {
            time: self.now(),
            from,
            to,
            msg,
        };
        self.records.lock().expect("tap lock").push(record);
    }

    /// A copy of the trace so far, in push order.
    pub fn snapshot(&self) -> Vec<TransferRecord> {
        self.records.lock().expect("tap lock").clone()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("tap lock").len()
    }

    /// Whether no transfer has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for LinkTap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_across_clones() {
        let tap = LinkTap::new();
        let other = tap.clone();
        tap.record(Endpoint::Node(0), Endpoint::Node(1), MsgId(0));
        other.record(Endpoint::Node(1), Endpoint::Receiver, MsgId(0));
        assert_eq!(tap.len(), 2);
        let trace = tap.snapshot();
        assert_eq!(trace[0].from, Endpoint::Node(0));
        assert_eq!(trace[1].to, Endpoint::Receiver);
        assert!(trace[0].time <= trace[1].time);
    }

    #[test]
    fn empty_tap() {
        let tap = LinkTap::default();
        assert!(tap.is_empty());
        assert!(tap.snapshot().is_empty());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let tap = LinkTap::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let tap = tap.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tap.record(Endpoint::Node(t), Endpoint::Node(0), MsgId(i));
                    }
                });
            }
        });
        assert_eq!(tap.len(), 400);
    }
}
