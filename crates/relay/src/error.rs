//! Error types for `anonroute-relay`.

use std::fmt;

/// Errors from the relay network.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Onion construction or peeling failed.
    Crypto(anonroute_crypto::Error),
    /// Route sampling or model validation failed.
    Core(anonroute_core::Error),
    /// A frame violated the wire protocol.
    Protocol(String),
    /// Configuration rejected (cell too small, bad directory, …).
    Config(String),
    /// A relay worker thread panicked; carries the panic message.
    WorkerPanic(String),
    /// An operation did not finish within its deadline.
    Timeout(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Crypto(e) => write!(f, "crypto error: {e}"),
            Error::Core(e) => write!(f, "model error: {e}"),
            Error::Protocol(msg) => write!(f, "wire-protocol violation: {msg}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::WorkerPanic(msg) => write!(f, "relay worker panicked: {msg}"),
            Error::Timeout(msg) => write!(f, "timed out: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Crypto(e) => Some(e),
            Error::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<anonroute_crypto::Error> for Error {
    fn from(e: anonroute_crypto::Error) -> Self {
        Error::Crypto(e)
    }
}

impl From<anonroute_core::Error> for Error {
    fn from(e: anonroute_core::Error) -> Self {
        Error::Core(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

// the panic-payload renderer is shared with the simulator's live runtime
pub(crate) use anonroute_sim::runtime::panic_text as panic_message;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::Protocol("bad tag".into())
            .to_string()
            .contains("bad tag"));
        assert!(Error::WorkerPanic("boom".into())
            .to_string()
            .contains("boom"));
        assert!(Error::Timeout("join".into()).to_string().contains("join"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn panic_payloads_render() {
        assert_eq!(panic_message(Box::new("static")), "static");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(42u8)), "non-string panic payload");
    }
}
