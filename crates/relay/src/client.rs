//! The sending client: samples a circuit, builds the onion, transmits.
//!
//! A client acts for a member node (the paper's senders *are* members):
//! it draws a route from a [`RouteSampler`] — any [`PathLengthDist`] ×
//! [`PathKind`] combination, including the optimizer's optimal strategy —
//! wraps the payload in one handshake-keyed layer per hop
//! ([`crate::circuit::build`]), and writes the framed cell to the first
//! hop over TCP. A zero-length route is the paper's `l = 0` case: the
//! payload goes straight to the receiver.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Arc;

use anonroute_core::{PathKind, PathLengthDist};
use anonroute_crypto::onion;
use anonroute_protocols::RouteSampler;
use anonroute_sim::{Endpoint, MsgId, NodeId};
use rand::Rng;

use crate::circuit;
use crate::daemon::send_cached;
use crate::directory::Directory;
use crate::error::{Error, Result};
use crate::tap::LinkTap;
use crate::wire::{self, Frame};

/// A circuit-building sender over a relay [`Directory`].
#[derive(Debug)]
pub struct Client {
    directory: Arc<Directory>,
    sampler: RouteSampler,
    cell_size: usize,
    tap: Option<LinkTap>,
    conns: HashMap<usize, TcpStream>,
}

impl Client {
    /// Creates a client whose circuits follow `dist` × `kind` over the
    /// directory's members.
    ///
    /// `tap` makes the client report its own first-hop link transfers to
    /// the cluster's observation tap; standalone senders pass `None`.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] when the strategy is unrealizable for the member
    /// count, [`Error::Config`] when the longest sampleable route cannot
    /// fit a `cell_size` cell.
    pub fn new(
        directory: Arc<Directory>,
        dist: PathLengthDist,
        kind: PathKind,
        cell_size: usize,
        tap: Option<LinkTap>,
    ) -> Result<Self> {
        let sampler = RouteSampler::new(directory.n(), dist, kind)?;
        // a CELL frame body is tag(1) + msg(8) + the cell itself; anything
        // larger than MAX_FRAME would be written fine but rejected by
        // every reader, surfacing only as a delivery timeout
        if cell_size + 9 > wire::MAX_FRAME {
            return Err(Error::Config(format!(
                "cell size {cell_size} exceeds the wire frame bound ({} max)",
                wire::MAX_FRAME - 9
            )));
        }
        let worst = circuit::wire_len(sampler.dist().max_len().max(1), 0);
        if worst > cell_size {
            return Err(Error::Config(format!(
                "cell size {cell_size} cannot carry {} hops (needs {worst} bytes)",
                sampler.dist().max_len()
            )));
        }
        Ok(Client {
            directory,
            sampler,
            cell_size,
            tap,
            conns: HashMap::new(),
        })
    }

    /// The fixed relay-cell size this client frames to.
    pub fn cell_size(&self) -> usize {
        self.cell_size
    }

    /// Sends `payload` as member `sender`, tagged `msg`, over a freshly
    /// sampled circuit. Returns the sampled route (ground truth — the
    /// harness keeps it away from the adversary).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when the payload does not fit the sampled
    /// route's cell budget, [`Error::Io`] when the first hop (or the
    /// receiver, for direct sends) is unreachable.
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        sender: NodeId,
        msg: MsgId,
        payload: &[u8],
        rng: &mut R,
    ) -> Result<Vec<NodeId>> {
        let route = self.sampler.sample(sender, rng);
        if route.is_empty() {
            // direct send: no onion, the receiver sees the sender. The
            // DELIVER body is tag(1) + msg(8) + from(2) + payload, and is
            // not bounded by the cell budget — check the frame bound
            if payload.len() + 11 > wire::MAX_FRAME {
                return Err(Error::Config(format!(
                    "payload of {} bytes exceeds the wire frame bound for a direct send",
                    payload.len()
                )));
            }
            if let Some(tap) = &self.tap {
                tap.record(Endpoint::Node(sender), Endpoint::Receiver, msg);
            }
            let frame = Frame::Deliver {
                msg: msg.0,
                from: sender as u16,
                payload: payload.to_vec(),
            };
            send_cached(
                &mut self.conns,
                usize::MAX,
                self.directory.receiver(),
                &frame,
            )?;
            return Ok(route);
        }
        if circuit::wire_len(route.len(), payload.len()) > self.cell_size {
            return Err(Error::Config(format!(
                "payload of {} bytes exceeds the budget of a {}-hop route in a {}-byte cell",
                payload.len(),
                route.len(),
                self.cell_size
            )));
        }
        let publics: Vec<[u8; 32]> = route
            .iter()
            .map(|&id| {
                self.directory
                    .node(id)
                    .expect("sampler draws ids below directory.n()")
                    .public
            })
            .collect();
        let hops: Vec<u16> = route.iter().map(|&id| id as u16).collect();
        let wire_bytes = circuit::build(&publics, &hops, payload, rng)?;
        let cell = onion::frame(&wire_bytes, self.cell_size, &mut || rng.gen::<u8>())
            .expect("route budget validated above");
        let first = route[0];
        if let Some(tap) = &self.tap {
            tap.record(Endpoint::Node(sender), Endpoint::Node(first), msg);
        }
        let addr = self.directory.node(first).expect("validated above").addr;
        send_cached(
            &mut self.conns,
            first,
            addr,
            &Frame::Cell { msg: msg.0, cell },
        )?;
        Ok(route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::NodeInfo;
    use anonroute_crypto::handshake::NodeIdentity;
    use std::net::TcpListener;

    fn tiny_directory(n: usize, receiver: std::net::SocketAddr) -> Arc<Directory> {
        let nodes = (0..n)
            .map(|id| NodeInfo {
                id,
                addr: "127.0.0.1:1".parse().unwrap(), // never dialed in these tests
                public: *NodeIdentity::derive(b"client-tests", id as u64).public(),
            })
            .collect();
        Arc::new(Directory::new(nodes, receiver).unwrap())
    }

    #[test]
    fn rejects_unfittable_strategies() {
        let dir = tiny_directory(40, "127.0.0.1:1".parse().unwrap());
        // 30 hops × 64 bytes > 512-byte cells
        let err = Client::new(
            Arc::clone(&dir),
            PathLengthDist::fixed(30),
            PathKind::Simple,
            512,
            None,
        );
        assert!(matches!(err, Err(Error::Config(_))));
        // cells beyond the wire frame bound would be unreadable by peers
        let err = Client::new(
            dir,
            PathLengthDist::fixed(3),
            PathKind::Simple,
            wire::MAX_FRAME,
            None,
        );
        assert!(matches!(err, Err(Error::Config(_))));
    }

    #[test]
    fn direct_sends_reach_the_receiver_unwrapped() {
        use crate::wire::{read_frame, ReadOutcome};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = tiny_directory(6, listener.local_addr().unwrap());
        let tap = LinkTap::new();
        let mut client = Client::new(
            dir,
            PathLengthDist::fixed(0),
            PathKind::Simple,
            512,
            Some(tap.clone()),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::SeedableRng;
        let route = client.send(2, MsgId(9), b"direct", &mut rng).unwrap();
        assert!(route.is_empty());
        let (mut conn, _) = listener.accept().unwrap();
        match read_frame(&mut conn, 100).unwrap() {
            ReadOutcome::Frame(Frame::Deliver { msg, from, payload }) => {
                assert_eq!((msg, from), (9, 2));
                assert_eq!(payload, b"direct");
            }
            other => panic!("unexpected {other:?}"),
        }
        let trace = tap.snapshot();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].from, Endpoint::Node(2));
        assert_eq!(trace[0].to, Endpoint::Receiver);
    }

    #[test]
    fn oversized_payload_for_sampled_route_errors() {
        let dir = tiny_directory(10, "127.0.0.1:1".parse().unwrap());
        let mut client =
            Client::new(dir, PathLengthDist::fixed(3), PathKind::Simple, 256, None).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        // 3 hops × 64 = 192 of 256 bytes: a 100-byte payload cannot fit
        let err = client.send(0, MsgId(0), &[0u8; 100], &mut rng);
        assert!(matches!(err, Err(Error::Config(_))));
    }

    #[test]
    fn oversized_direct_send_errors_instead_of_wedging_readers() {
        let dir = tiny_directory(6, "127.0.0.1:1".parse().unwrap());
        let mut client =
            Client::new(dir, PathLengthDist::fixed(0), PathKind::Simple, 512, None).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // direct sends bypass the cell budget but not the frame bound
        let err = client.send(1, MsgId(0), &vec![0u8; wire::MAX_FRAME], &mut rng);
        assert!(matches!(err, Err(Error::Config(_))));
    }
}
