//! # anonroute-relay
//!
//! A real TCP relay network serving the paper's onion circuits end to
//! end. The rest of the workspace validates Guan et al.'s optimal
//! path-length strategies inside in-process simulations; this crate runs
//! the same strategies over genuine sockets (`std::net`, one thread per
//! connection — no external dependencies):
//!
//! * [`wire`] — a length-prefixed frame protocol carrying fixed-size
//!   onion cells plus delivery frames;
//! * [`circuit`] — onion layers keyed by a zero-round-trip X25519
//!   handshake ([`anonroute_crypto::handshake`]) instead of pre-shared
//!   keys, with the per-hop ephemeral public key in the clear;
//! * [`directory`] — the network map (addresses + static public keys);
//! * [`daemon`] — the relay node: accept, peel one layer
//!   ([`anonroute_crypto::onion`]), re-frame, forward;
//! * [`client`] — samples circuits via
//!   [`anonroute_protocols::RouteSampler`] from any strategy (including
//!   the optimizer's optimal distribution) and sends payloads;
//! * [`receiver`] — the destination server terminating every circuit;
//! * [`tap`] — the per-link observation tap whose records are simulator
//!   [`anonroute_sim::TransferRecord`]s, directly consumable by
//!   `anonroute-adversary`;
//! * [`cluster`] — the in-process harness: N relays on `127.0.0.1`
//!   ephemeral ports, seeded traffic from [`anonroute_sim::traffic`],
//!   bounded graceful teardown — so the measured anonymity degree of
//!   live TCP traffic is checked against `anonroute-core`'s analytic
//!   prediction;
//! * [`budget`] — relay-slot budgeting so many concurrent clusters (a
//!   campaign sweep's live cells) share the loopback without exhausting
//!   ports or file descriptors;
//! * [`authority`] — the directory authority: signed, versioned relay
//!   descriptors, a mergeable [`authority::NetworkView`], a snapshot
//!   service with lease expiry, and real [`authority::MembershipEvent`]s
//!   feeding `anonroute_core::epochs`;
//! * [`gossip`] — peer-to-peer topology maintenance: relays push
//!   snapshots to random peers and drop departed ones via dial health;
//! * [`obs`] — cluster run phases (for wedge diagnosis) and process-wide
//!   aggregate metrics over all cluster runs, registered in
//!   `anonroute-obs`'s global registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod budget;
pub mod circuit;
pub mod client;
pub mod cluster;
pub mod daemon;
pub mod directory;
pub mod error;
pub mod gossip;
pub mod obs;
pub mod receiver;
pub mod tap;
pub mod wire;
mod workers;

pub use authority::{
    AuthorityClient, AuthorityServer, MembershipChange, MembershipEvent, NetworkView,
    RelayDescriptor, SignedDescriptor,
};
pub use budget::{BudgetPermit, ClusterBudget, DEFAULT_CLUSTER_SLOTS};
pub use circuit::DEFAULT_CELL_SIZE;
pub use client::Client;
pub use cluster::{
    cluster_identity, run_cluster, run_cluster_budgeted_observed, run_cluster_budgeted_unless,
    run_cluster_observed, run_cluster_with_budget, ClusterConfig, ClusterOutcome, SharedCellSpec,
    SharedCluster,
};
pub use daemon::{PendingRelay, Relay, RelayConfig, RelayStats};
pub use directory::{Directory, DirectoryCell, NodeInfo};
pub use error::{Error, Result};
pub use gossip::{GossipConfig, GossipRunner};
pub use obs::{ClusterMetrics, DirectoryMetrics, Phase, PhaseCell};
pub use receiver::ReceiverServer;
pub use tap::LinkTap;
