//! Cluster-level observability: run phases and aggregate metrics.
//!
//! Two pieces live here:
//!
//! * [`Phase`] / [`PhaseCell`] — where a cluster run currently is
//!   (queued on the budget, booting, handshaking, passing traffic,
//!   draining, tearing down). The sweep watchdog reads the cell when a
//!   live cell times out, turning "wedged somewhere" into "wedged in the
//!   handshake phase".
//! * [`ClusterMetrics`] — process-wide aggregates over *all* cluster
//!   runs, registered once in [`Registry::global`]. Individual cluster
//!   members are ephemeral (fresh ports each run), so per-relay series
//!   would be unbounded-cardinality noise; sweeps get totals instead,
//!   plus the budget gauge that explains *why* live cells queue.
//!
//! Everything here is a write-only sink per the determinism boundary
//! documented in `anonroute-obs`: cluster evaluation never reads these.

use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use anonroute_obs::{Counter, Histogram, Registry};

use crate::budget::ClusterBudget;
use crate::daemon::RelayStats;

/// Where a cluster run currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Waiting for budget slots before anything is bound.
    Queued = 0,
    /// Binding listeners, building the directory, starting daemons.
    Boot = 1,
    /// Building the client and pushing the first circuit (the earliest
    /// point onion handshakes can fail).
    Handshake = 2,
    /// Driving the remaining workload.
    Traffic = 3,
    /// Awaiting full delivery at the receiver.
    Drain = 4,
    /// Bounded shutdown of relays and receiver.
    Teardown = 5,
    /// The run returned (successfully or not).
    Done = 6,
}

impl Phase {
    /// Human-readable phase name (used in wedge diagnoses and metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Boot => "boot",
            Phase::Handshake => "handshake",
            Phase::Traffic => "traffic",
            Phase::Drain => "drain",
            Phase::Teardown => "teardown",
            Phase::Done => "done",
        }
    }

    fn from_u8(raw: u8) -> Phase {
        match raw {
            0 => Phase::Queued,
            1 => Phase::Boot,
            2 => Phase::Handshake,
            3 => Phase::Traffic,
            4 => Phase::Drain,
            5 => Phase::Teardown,
            _ => Phase::Done,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A current-depth / high-water-mark gauge pair for one relay work
/// queue (inbound worker connections, outbound writes in progress).
///
/// Depth moves with [`enter`](QueueDepth::enter)/[`exit`](QueueDepth::exit)
/// (or [`set`](QueueDepth::set) for externally counted queues); the high
/// water mark is CAS-maxed on every raise and never resets, so a scrape
/// after a burst still shows how deep the queue got.
#[derive(Debug, Default)]
pub struct QueueDepth {
    depth: AtomicI64,
    high_water: AtomicI64,
}

impl QueueDepth {
    /// An empty queue gauge.
    pub fn new() -> Self {
        QueueDepth::default()
    }

    /// One item entered the queue.
    pub fn enter(&self) {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.raise(depth);
    }

    /// One item left the queue.
    pub fn exit(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrites the depth with an externally counted value (e.g. the
    /// accept loop's live-worker count after a reap pass).
    pub fn set(&self, depth: i64) {
        self.depth.store(depth, Ordering::Relaxed);
        self.raise(depth);
    }

    fn raise(&self, depth: i64) {
        self.high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// The current depth.
    pub fn depth(&self) -> i64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// A lock-free phase marker shared between a cluster run and whoever is
/// watching it (the live-cell watchdog, a progress ticker).
#[derive(Debug)]
pub struct PhaseCell(AtomicU8);

impl Default for PhaseCell {
    fn default() -> Self {
        PhaseCell::new()
    }
}

impl PhaseCell {
    /// A cell starting at [`Phase::Queued`].
    pub fn new() -> Self {
        PhaseCell(AtomicU8::new(Phase::Queued as u8))
    }

    /// Moves the run to `phase`.
    pub fn set(&self, phase: Phase) {
        self.0.store(phase as u8, Ordering::SeqCst);
    }

    /// The phase the run was last seen in.
    pub fn get(&self) -> Phase {
        Phase::from_u8(self.0.load(Ordering::SeqCst))
    }
}

/// Aggregate metrics over every cluster run in this process, shared by
/// all sweeps and registered once in the global registry.
#[derive(Debug)]
pub struct ClusterMetrics {
    /// Clusters fully booted (listeners bound, directory built, daemons
    /// serving).
    pub boots: Arc<Counter>,
    /// Wall-clock from first bind to all daemons serving.
    pub boot_seconds: Arc<Histogram>,
    /// Cluster runs that returned `Ok`.
    pub runs_ok: Arc<Counter>,
    /// Cluster runs that returned an error.
    pub runs_failed: Arc<Counter>,
    /// Cells forwarded relay→relay, summed over finished runs.
    pub cells_relayed: Arc<Counter>,
    /// Payloads delivered to receivers, summed over finished runs.
    pub cells_delivered: Arc<Counter>,
    /// Cells dropped, summed over finished runs.
    pub cells_dropped: Arc<Counter>,
    /// Onion-layer authentication failures, summed over finished runs.
    pub handshake_failures: Arc<Counter>,
}

impl ClusterMetrics {
    /// The process-wide instance, registered in [`Registry::global`] on
    /// first use (including the budget-usage gauge).
    pub fn global() -> &'static ClusterMetrics {
        static GLOBAL: OnceLock<ClusterMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| ClusterMetrics::register(Registry::global()))
    }

    fn register(registry: &'static Registry) -> ClusterMetrics {
        registry.gauge_fn(
            "anonroute_cluster_budget_slots_in_use",
            "Relay slots of the global cluster budget currently claimed.",
            &[],
            || {
                let budget = ClusterBudget::global();
                (budget.capacity() - budget.available()) as f64
            },
        );
        let cells = |outcome: &str| {
            registry.counter(
                "anonroute_cluster_cells_total",
                "Cells handled across all cluster runs, by outcome.",
                &[("outcome", outcome)],
            )
        };
        let runs = |result: &str| {
            registry.counter(
                "anonroute_cluster_runs_total",
                "Finished cluster runs, by result.",
                &[("result", result)],
            )
        };
        ClusterMetrics {
            boots: registry.counter(
                "anonroute_cluster_boots_total",
                "Clusters that reached the serving state.",
                &[],
            ),
            boot_seconds: registry.histogram(
                "anonroute_cluster_boot_seconds",
                "Wall-clock from first bind to all relay daemons serving.",
                &[],
                &[0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0],
            ),
            runs_ok: runs("ok"),
            runs_failed: runs("error"),
            cells_relayed: cells("relayed"),
            cells_delivered: cells("delivered"),
            cells_dropped: cells("dropped"),
            handshake_failures: registry.counter(
                "anonroute_cluster_handshake_failures_total",
                "Onion-layer authentication failures across all cluster runs.",
                &[],
            ),
        }
    }

    /// Folds one finished run's per-relay stats into the process totals.
    pub fn record_run(&self, ok: bool, stats: &[RelayStats]) {
        if ok {
            self.runs_ok.inc();
        } else {
            self.runs_failed.inc();
        }
        self.cells_relayed
            .add(stats.iter().map(|s| s.relayed).sum());
        self.cells_delivered
            .add(stats.iter().map(|s| s.delivered).sum());
        self.cells_dropped
            .add(stats.iter().map(|s| s.dropped).sum());
        self.handshake_failures
            .add(stats.iter().map(|s| s.peel_failures).sum());
    }
}

/// Aggregate metrics over the directory/gossip subsystem, shared by the
/// authority server, gossip runners, and dynamic relay daemons in this
/// process.
#[derive(Debug)]
pub struct DirectoryMetrics {
    /// Descriptor publishes accepted (authority `PUT`s).
    pub publishes: Arc<Counter>,
    /// Snapshots served to fetchers (authority `GET`s that returned one).
    pub snapshots_served: Arc<Counter>,
    /// Gossip snapshots pushed to peers.
    pub gossip_sent: Arc<Counter>,
    /// Gossip snapshots received (over TCP or ingested directly).
    pub gossip_received: Arc<Counter>,
    /// Received snapshots that changed the local view.
    pub gossip_merges: Arc<Counter>,
    /// Received snapshots rejected as malformed.
    pub gossip_rejected: Arc<Counter>,
    /// Peers dropped for failed health checks or expired leases.
    pub peers_dropped: Arc<Counter>,
}

impl DirectoryMetrics {
    /// The process-wide instance, registered in [`Registry::global`] on
    /// first use.
    pub fn global() -> &'static DirectoryMetrics {
        static GLOBAL: OnceLock<DirectoryMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| DirectoryMetrics::register(Registry::global()))
    }

    fn register(registry: &'static Registry) -> DirectoryMetrics {
        let gossip = |direction: &str| {
            registry.counter(
                "anonroute_directory_gossip_total",
                "Gossip snapshots exchanged, by direction.",
                &[("direction", direction)],
            )
        };
        DirectoryMetrics {
            publishes: registry.counter(
                "anonroute_directory_publishes_total",
                "Relay descriptors accepted by the directory authority.",
                &[],
            ),
            snapshots_served: registry.counter(
                "anonroute_directory_snapshots_served_total",
                "Directory snapshots served to fetching peers.",
                &[],
            ),
            gossip_sent: gossip("sent"),
            gossip_received: gossip("received"),
            gossip_merges: registry.counter(
                "anonroute_directory_gossip_merges_total",
                "Received gossip snapshots that changed the local view.",
                &[],
            ),
            gossip_rejected: registry.counter(
                "anonroute_directory_gossip_rejected_total",
                "Received gossip snapshots rejected as malformed.",
                &[],
            ),
            peers_dropped: registry.counter(
                "anonroute_directory_peers_dropped_total",
                "Peers dropped for failed dials or expired leases.",
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_metrics_register_once() {
        let a = DirectoryMetrics::global() as *const _;
        let b = DirectoryMetrics::global() as *const _;
        assert!(std::ptr::eq(a, b));
        let before = DirectoryMetrics::global().gossip_received.get();
        DirectoryMetrics::global().gossip_received.inc();
        assert_eq!(DirectoryMetrics::global().gossip_received.get(), before + 1);
    }

    #[test]
    fn phase_cell_round_trips_every_phase() {
        let cell = PhaseCell::new();
        assert_eq!(cell.get(), Phase::Queued);
        for phase in [
            Phase::Boot,
            Phase::Handshake,
            Phase::Traffic,
            Phase::Drain,
            Phase::Teardown,
            Phase::Done,
        ] {
            cell.set(phase);
            assert_eq!(cell.get(), phase);
            assert_eq!(Phase::from_u8(phase as u8), phase);
        }
    }

    #[test]
    fn phase_names_are_stable() {
        // wedge diagnoses embed these strings in CellResult::outcome;
        // renaming one silently changes campaign artifacts
        let names: Vec<&str> = [
            Phase::Queued,
            Phase::Boot,
            Phase::Handshake,
            Phase::Traffic,
            Phase::Drain,
            Phase::Teardown,
            Phase::Done,
        ]
        .iter()
        .map(|p| p.as_str())
        .collect();
        assert_eq!(
            names,
            [
                "queued",
                "boot",
                "handshake",
                "traffic",
                "drain",
                "teardown",
                "done"
            ]
        );
    }

    #[test]
    fn queue_depth_tracks_current_and_high_water() {
        let q = QueueDepth::new();
        assert_eq!((q.depth(), q.high_water()), (0, 0));
        q.enter();
        q.enter();
        assert_eq!((q.depth(), q.high_water()), (2, 2));
        q.exit();
        assert_eq!((q.depth(), q.high_water()), (1, 2), "high water sticks");
        q.set(5);
        assert_eq!((q.depth(), q.high_water()), (5, 5));
        q.set(0);
        assert_eq!((q.depth(), q.high_water()), (0, 5));
    }

    #[test]
    fn record_run_accumulates_stats() {
        let metrics = ClusterMetrics::global();
        let before_ok = metrics.runs_ok.get();
        let before_relayed = metrics.cells_relayed.get();
        let before_peel = metrics.handshake_failures.get();
        metrics.record_run(
            true,
            &[
                RelayStats {
                    relayed: 3,
                    delivered: 1,
                    dropped: 0,
                    peel_failures: 0,
                },
                RelayStats {
                    relayed: 2,
                    delivered: 0,
                    dropped: 4,
                    peel_failures: 4,
                },
            ],
        );
        assert_eq!(metrics.runs_ok.get(), before_ok + 1);
        assert_eq!(metrics.cells_relayed.get(), before_relayed + 5);
        assert_eq!(metrics.handshake_failures.get(), before_peel + 4);
    }
}
