//! Loopback capacity budgeting for concurrent clusters.
//!
//! Every cluster costs real OS resources: one listener socket plus an
//! accept thread per relay, a receiver server, and a worker thread per
//! accepted connection. A campaign sweep that evaluates many live cells
//! in parallel would multiply that by the thread-pool width and can
//! exhaust loopback ports or the process file-descriptor limit. A
//! [`ClusterBudget`] caps the number of *relay slots* (listeners) alive
//! at once: callers acquire a permit sized to their cluster before
//! binding anything, and blocked callers wake as running clusters wind
//! down.
//!
//! Requests larger than the whole budget are clamped to it, so an
//! oversized cluster still runs — alone — instead of deadlocking.

use std::sync::{Condvar, Mutex, OnceLock};

/// Default relay-slot capacity of the process-wide budget: enough for a
/// handful of mid-size clusters side by side without threatening the
/// default file-descriptor limit.
pub const DEFAULT_CLUSTER_SLOTS: usize = 64;

/// Waiter bookkeeping behind the budget's mutex.
#[derive(Debug)]
struct BudgetState {
    /// Slots currently free.
    available: usize,
    /// Ticket handed to the next arriving acquirer.
    next_ticket: u64,
    /// Ticket currently allowed to claim slots.
    serving: u64,
}

/// A counting budget of relay slots shared by concurrent cluster runs.
///
/// Acquisition is FIFO (ticketed): a large request parked at the head of
/// the queue blocks later small ones until the budget drains enough to
/// serve it, so big clusters see a bounded wait instead of being starved
/// by a stream of small acquirers slipping past them.
#[derive(Debug)]
pub struct ClusterBudget {
    capacity: usize,
    state: Mutex<BudgetState>,
    freed: Condvar,
}

impl ClusterBudget {
    /// A budget of `capacity` relay slots (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ClusterBudget {
            capacity,
            state: Mutex::new(BudgetState {
                available: capacity,
                next_ticket: 0,
                serving: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// The process-wide budget ([`DEFAULT_CLUSTER_SLOTS`] slots) used by
    /// callers that don't manage their own.
    pub fn global() -> &'static ClusterBudget {
        static GLOBAL: OnceLock<ClusterBudget> = OnceLock::new();
        GLOBAL.get_or_init(|| ClusterBudget::new(DEFAULT_CLUSTER_SLOTS))
    }

    /// Total slots this budget manages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently free (a snapshot; racy by nature).
    pub fn available(&self) -> usize {
        self.state.lock().expect("budget lock").available
    }

    /// Blocks until `slots` relay slots are free and claims them, in
    /// arrival (FIFO) order. The request is clamped to the budget's
    /// capacity so an oversized cluster degrades to exclusive use rather
    /// than waiting forever.
    pub fn acquire(&self, slots: usize) -> BudgetPermit<'_> {
        let want = slots.clamp(1, self.capacity);
        let mut state = self.state.lock().expect("budget lock");
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        while state.serving != ticket || state.available < want {
            state = self.freed.wait(state).expect("budget lock");
        }
        state.available -= want;
        state.serving += 1;
        // the next ticket in line may already be satisfiable
        self.freed.notify_all();
        BudgetPermit {
            budget: self,
            held: want,
        }
    }
}

/// RAII claim on relay slots; returns them to the budget on drop.
#[derive(Debug)]
pub struct BudgetPermit<'a> {
    budget: &'a ClusterBudget,
    held: usize,
}

impl BudgetPermit<'_> {
    /// Number of slots this permit holds (the clamped request).
    pub fn held(&self) -> usize {
        self.held
    }
}

impl Drop for BudgetPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.budget.state.lock().expect("budget lock");
        state.available += self.held;
        self.budget.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn permits_claim_and_release() {
        let budget = ClusterBudget::new(10);
        assert_eq!(budget.capacity(), 10);
        let a = budget.acquire(4);
        assert_eq!(a.held(), 4);
        assert_eq!(budget.available(), 6);
        {
            let b = budget.acquire(6);
            assert_eq!(b.held(), 6);
            assert_eq!(budget.available(), 0);
        }
        assert_eq!(budget.available(), 6);
        drop(a);
        assert_eq!(budget.available(), 10);
    }

    #[test]
    fn oversized_requests_are_clamped_not_deadlocked() {
        let budget = ClusterBudget::new(3);
        let permit = budget.acquire(100);
        assert_eq!(permit.held(), 3);
        assert_eq!(budget.available(), 0);
    }

    #[test]
    fn blocked_acquirers_wake_as_slots_free() {
        let budget = Arc::new(ClusterBudget::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let running = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let budget = Arc::clone(&budget);
                let peak = Arc::clone(&peak);
                let running = Arc::clone(&running);
                s.spawn(move || {
                    let _permit = budget.acquire(1);
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget overshot");
        assert_eq!(budget.available(), 2);
    }

    #[test]
    fn whole_budget_requests_are_not_starved_by_small_ones() {
        // FIFO tickets: a request for the whole budget parked behind one
        // held slot must complete even while later small acquirers keep
        // arriving — under notify-race semantics it could starve forever
        let budget = Arc::new(ClusterBudget::new(4));
        let first = budget.acquire(1);
        std::thread::scope(|s| {
            let big_budget = Arc::clone(&budget);
            let big = s.spawn(move || {
                let permit = big_budget.acquire(4);
                assert_eq!(permit.held(), 4);
            });
            // let the big request take its ticket before the small ones
            std::thread::sleep(std::time::Duration::from_millis(20));
            let smalls: Vec<_> = (0..6)
                .map(|_| {
                    let budget = Arc::clone(&budget);
                    s.spawn(move || {
                        let _p = budget.acquire(1);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    })
                })
                .collect();
            drop(first);
            big.join().unwrap();
            for small in smalls {
                small.join().unwrap();
            }
        });
        assert_eq!(budget.available(), 4);
    }

    #[test]
    fn global_budget_is_a_singleton() {
        let a = ClusterBudget::global() as *const _;
        let b = ClusterBudget::global() as *const _;
        assert!(std::ptr::eq(a, b));
        assert_eq!(ClusterBudget::global().capacity(), DEFAULT_CLUSTER_SLOTS);
    }
}
