//! Shared scaffolding for the TCP daemons: completion guards and the
//! accept → spawn → reap → join loop with panic collection. Used by both
//! the relay daemon and the receiver server so their shutdown semantics
//! cannot drift apart.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::{panic_message, Error, Result};
use crate::obs::QueueDepth;

/// Signals its channel even when the owning thread unwinds, so bounded
/// joins ([`std::sync::mpsc::Receiver::recv_timeout`] on the paired
/// receiver) work whether the thread returned or panicked.
pub(crate) struct DoneGuard(pub(crate) mpsc::Sender<()>);

impl Drop for DoneGuard {
    fn drop(&mut self) {
        let _ = self.0.send(());
    }
}

/// Accepts connections until `shutdown` is raised, spawning one worker
/// per connection via `spawn_worker` (handed the configured stream and a
/// 1-based connection index), reaping finished workers as it goes — a
/// long-running daemon keeps O(live connections) thread handles, not
/// O(all connections ever) — and joining the rest at shutdown. Worker
/// panics are collected and reported as one [`Error::WorkerPanic`]
/// prefixed with `label`. When `depth` is given, the live-worker count
/// after each reap pass is published there as the daemon's inbound
/// queue depth.
pub(crate) fn accept_loop(
    listener: TcpListener,
    shutdown: &AtomicBool,
    io_timeout: Duration,
    label: &str,
    depth: Option<&QueueDepth>,
    mut spawn_worker: impl FnMut(TcpStream, u64) -> JoinHandle<()>,
) -> Result<()> {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut panics: Vec<String> = Vec::new();
    let mut conn_index = 0u64;
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown addr>".to_string());
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // name who failed and where: multi-process bring-up
                // failures must be attributable to a specific daemon
                return Err(Error::Io(std::io::Error::new(
                    e.kind(),
                    format!("{label}: accept failed on {local}: {e}"),
                )));
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a raced real one)
        }
        let _ = stream.set_read_timeout(Some(io_timeout));
        let _ = stream.set_nodelay(true);
        conn_index += 1;
        workers.push(spawn_worker(stream, conn_index));
        reap_finished(&mut workers, &mut panics);
        if let Some(depth) = depth {
            depth.set(workers.len() as i64);
        }
    }
    if let Some(depth) = depth {
        depth.set(0);
    }
    drop(listener);
    for worker in workers {
        if let Err(payload) = worker.join() {
            panics.push(panic_message(payload));
        }
    }
    if panics.is_empty() {
        Ok(())
    } else {
        Err(Error::WorkerPanic(format!(
            "{label}: {}",
            panics.join("; ")
        )))
    }
}

/// Joins (and forgets) every worker that already exited, keeping any
/// panic messages.
fn reap_finished(workers: &mut Vec<JoinHandle<()>>, panics: &mut Vec<String>) {
    let mut live = Vec::with_capacity(workers.len());
    for worker in workers.drain(..) {
        if worker.is_finished() {
            if let Err(payload) = worker.join() {
                panics.push(panic_message(payload));
            }
        } else {
            live.push(worker);
        }
    }
    *workers = live;
}
