//! Peer-to-peer topology maintenance: relays push directory snapshots
//! to random peers and learn the network from each other.
//!
//! Each relay holds a [`NetworkView`] (see [`crate::authority`]) and a
//! [`GossipRunner`] thread that, every interval:
//!
//! 1. refreshes from the directory authority when one is configured —
//!    re-publishing its own descriptor (which doubles as the lease
//!    heartbeat) and merging any newer snapshot;
//! 2. pushes its current snapshot to `fanout` random live peers as a
//!    [`crate::wire::Frame::Gossip`] frame on the ordinary relay port;
//! 3. tracks per-peer dial health: a peer that fails
//!    `max_peer_failures` consecutive dials is dropped from the local
//!    view and reported `DOWN` to the authority, which is how departed
//!    relays leave the directory without a graceful goodbye.
//!
//! Snapshot merging itself is pure and socket-free
//! ([`NetworkView::merge_snapshot`]), so convergence is property-tested
//! without any networking: k views exchanging snapshots in any order
//! reach identical fingerprints.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::authority::{AuthorityClient, NetworkView, SignedDescriptor};
use crate::directory::DirectoryCell;
use crate::obs::DirectoryMetrics;
use crate::wire::{self, Frame};

/// Tuning for the gossip loop.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Peers pushed to per round.
    pub fanout: usize,
    /// Delay between gossip rounds.
    pub interval: Duration,
    /// Consecutive dial failures before a peer is declared down.
    pub max_peer_failures: u32,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 2,
            interval: Duration::from_millis(500),
            max_peer_failures: 3,
        }
    }
}

/// Background gossip loop for one relay. Owns nothing but the thread;
/// the view and directory cell are shared with the relay daemon so
/// merged topology becomes routable immediately.
pub struct GossipRunner {
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl GossipRunner {
    /// Starts gossiping on behalf of relay `me`. `view` and `cell` are
    /// the same handles the daemon serves from; `authority` is optional
    /// (pure peer-to-peer mode works once bootstrapped); `net_seed`
    /// re-signs the heartbeat descriptor. `seed` makes peer selection
    /// deterministic for tests.
    pub fn spawn(
        me: SignedDescriptor,
        net_seed: Vec<u8>,
        view: Arc<Mutex<NetworkView>>,
        cell: DirectoryCell,
        authority: Option<AuthorityClient>,
        config: GossipConfig,
        seed: u64,
    ) -> GossipRunner {
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x6055_51D0_11FE_60D5);
                let mut failures: HashMap<u64, u32> = HashMap::new();
                let mut lease_version = me.descriptor.version;
                while !shutdown.load(Ordering::SeqCst) {
                    round(
                        &me,
                        &net_seed,
                        &view,
                        &cell,
                        authority.as_ref(),
                        &config,
                        &mut rng,
                        &mut failures,
                        &mut lease_version,
                    );
                    thread::sleep(config.interval);
                }
            })
        };
        GossipRunner {
            shutdown,
            thread: Some(thread),
        }
    }

    /// Stops the loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for GossipRunner {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One gossip round: authority refresh, peer push, health bookkeeping.
#[allow(clippy::too_many_arguments)]
fn round(
    me: &SignedDescriptor,
    net_seed: &[u8],
    view: &Mutex<NetworkView>,
    cell: &DirectoryCell,
    authority: Option<&AuthorityClient>,
    config: &GossipConfig,
    rng: &mut StdRng,
    failures: &mut HashMap<u64, u32>,
    lease_version: &mut u64,
) {
    let metrics = DirectoryMetrics::global();
    if let Some(client) = authority {
        // Heartbeat: bump our descriptor version so the lease refreshes
        // and stale-version rejection never bites our own re-PUT.
        *lease_version += 1;
        let mut fresh = me.descriptor.clone();
        fresh.version = *lease_version;
        let have = view.lock().expect("gossip view").version();
        let _ = client.publish(&fresh.sign(net_seed));
        if let Ok(Some(snapshot)) = client.fetch(have) {
            ingest(view, cell, &snapshot);
        }
    }

    // Push our snapshot to `fanout` random live peers.
    let (snapshot, peers) = {
        let view = view.lock().expect("gossip view");
        let peers: Vec<(u64, std::net::SocketAddr)> = view
            .member_ids()
            .into_iter()
            .filter(|&id| id != me.descriptor.id)
            .filter_map(|id| view.member(id).map(|m| (id, m.descriptor.addr)))
            .collect();
        (view.snapshot(), peers)
    };
    if peers.is_empty() {
        return;
    }
    for _ in 0..config.fanout.min(peers.len()) {
        let (peer, addr) = peers[rng.gen_range(0..peers.len())];
        let pushed = TcpStream::connect_timeout(&addr, Duration::from_millis(250))
            .map_err(|e| e.to_string())
            .and_then(|mut stream| {
                wire::write_frame(
                    &mut stream,
                    &Frame::Gossip {
                        snapshot: snapshot.clone(),
                    },
                )
                .map_err(|e| e.to_string())
            });
        match pushed {
            Ok(()) => {
                metrics.gossip_sent.inc();
                failures.remove(&peer);
            }
            Err(_) => {
                let count = failures.entry(peer).or_insert(0);
                *count += 1;
                if *count >= config.max_peer_failures {
                    failures.remove(&peer);
                    metrics.peers_dropped.inc();
                    let mut view = view.lock().expect("gossip view");
                    view.report_down(peer);
                    drop(view);
                    if let Some(client) = authority {
                        let _ = client.report_down(peer);
                    }
                }
            }
        }
    }
}

/// Merges a received snapshot into the shared view and, when the
/// membership changed and stayed dense, refreshes the routable
/// directory. Returns true when the view changed.
pub fn ingest(view: &Mutex<NetworkView>, cell: &DirectoryCell, snapshot: &[u8]) -> bool {
    let metrics = DirectoryMetrics::global();
    metrics.gossip_received.inc();
    let mut view = view.lock().expect("gossip view");
    match view.merge_snapshot(snapshot) {
        Ok(true) => {
            metrics.gossip_merges.inc();
            if let Ok(directory) = view.to_directory() {
                cell.store(directory);
            }
            true
        }
        Ok(false) => false,
        Err(_) => {
            metrics.gossip_rejected.inc();
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::RelayDescriptor;
    use std::net::SocketAddr;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().expect("addr")
    }

    #[test]
    fn ingest_merges_and_refreshes_the_directory() {
        let receiver = addr(8999);
        let mut publisher = NetworkView::new(b"seed", receiver);
        for id in 0..3 {
            let sd = RelayDescriptor::derive(b"seed", id, addr(9100 + id as u16), 1).sign(b"seed");
            publisher.publish(sd).expect("publish");
        }
        let snapshot = publisher.snapshot();

        let local = Mutex::new(NetworkView::new(b"seed", receiver));
        let cell = DirectoryCell::new(publisher.to_directory().expect("directory"));
        assert!(ingest(&local, &cell, &snapshot));
        assert!(!ingest(&local, &cell, &snapshot), "idempotent");
        assert_eq!(local.lock().expect("view").member_ids(), vec![0, 1, 2]);
        assert_eq!(cell.load().n(), 3);
        assert!(!ingest(&local, &cell, b"garbage"), "bad snapshot rejected");
    }
}
