//! The relay daemon: accepts connections, peels one layer, forwards.
//!
//! Each relay owns one `TcpListener`; every accepted connection gets a
//! worker thread that reads [`wire`] frames, peels cells with the relay's
//! static identity ([`crate::circuit::peel`]), re-frames the inner prefix
//! with fresh junk, and writes it to the next hop (or the receiver) over
//! a cached downstream connection.
//!
//! Shutdown is graceful and bounded: [`Relay::shutdown`] raises a flag
//! and wakes the blocked `accept`; workers observe the flag within one
//! read-timeout tick; [`Relay::join`] waits with a deadline and
//! propagates worker panics as [`Error::WorkerPanic`] instead of hanging
//! the caller — the discipline the in-process cluster harness (and its
//! tests) rely on.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use anonroute_obs::Registry;

use anonroute_crypto::handshake::NodeIdentity;
use anonroute_crypto::onion::{self, Peeled};
use anonroute_sim::{Endpoint, MsgId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::authority::NetworkView;
use crate::circuit;
use crate::directory::{Directory, DirectoryCell};
use crate::error::{panic_message, Error, Result};
use crate::gossip;
use crate::obs;
use crate::tap::LinkTap;
use crate::wire::{self, Frame, ReadOutcome};
use crate::workers;

/// Tuning knobs of one relay daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayConfig {
    /// Fixed relay-cell size in bytes; cells of any other size are
    /// dropped.
    pub cell_size: usize,
    /// Read timeout per socket read — the shutdown-poll granularity.
    pub io_timeout: Duration,
    /// Consecutive stalled mid-frame reads tolerated before a peer
    /// connection is declared wedged and dropped.
    pub max_stalls: u32,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            cell_size: circuit::DEFAULT_CELL_SIZE,
            io_timeout: Duration::from_millis(50),
            max_stalls: 100,
        }
    }
}

/// Traffic counters of one relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelayStats {
    /// Cells peeled and forwarded to another member.
    pub relayed: u64,
    /// Payloads delivered to the receiver.
    pub delivered: u64,
    /// Cells dropped: wrong size, failed authentication, unknown next
    /// hop, unexpected frame type, or a dead downstream link.
    pub dropped: u64,
    /// The handshake-failure subset of `dropped`: correctly sized cells
    /// whose layer failed to authenticate/decrypt at this relay — the
    /// signal that distinguishes a misdelivered or corrupted circuit
    /// from transport-level trouble.
    pub peel_failures: u64,
}

#[derive(Debug, Default)]
struct Counters {
    relayed: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    peel_failures: AtomicU64,
    /// Worker connections currently open (accept .. socket close).
    connections: AtomicI64,
    /// Inbound queue: live (unreaped) worker threads on the accept loop.
    /// The honest depth for a thread-per-connection daemon — there is no
    /// buffered queue of cells, connections *are* the backlog.
    inbound: obs::QueueDepth,
    /// Outbound queue: downstream frame writes currently in progress.
    outbound: obs::QueueDepth,
}

impl Counters {
    fn snapshot(&self) -> RelayStats {
        RelayStats {
            relayed: self.relayed.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            peel_failures: self.peel_failures.load(Ordering::Relaxed),
        }
    }
}

/// How a serving relay resolves the current network map.
#[derive(Debug, Clone)]
enum Topology {
    /// Directory pinned at serve time (cluster harness, static CLI).
    Fixed(Arc<Directory>),
    /// Hot-swappable gossiped topology: the cell is refreshed whenever a
    /// merged snapshot changes the member set (see [`crate::gossip`]).
    Dynamic {
        /// The routable directory, swapped atomically on merges.
        cell: DirectoryCell,
        /// The mergeable membership state behind the cell.
        view: Arc<Mutex<NetworkView>>,
    },
}

impl Topology {
    /// The directory to route the next cell against.
    fn directory(&self) -> Arc<Directory> {
        match self {
            Topology::Fixed(directory) => Arc::clone(directory),
            Topology::Dynamic { cell, .. } => cell.load(),
        }
    }
}

/// Decrements the open-connection gauge when a worker unwinds, panic or
/// not.
struct ConnectionGuard(Arc<Counters>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bound-but-not-yet-serving relay: the two-phase start lets the
/// cluster harness bind every listener first, build the [`Directory`]
/// from the resulting addresses, then start serving against it.
#[derive(Debug)]
pub struct PendingRelay {
    id: NodeId,
    identity: NodeIdentity,
    listener: TcpListener,
    config: RelayConfig,
}

impl PendingRelay {
    /// Binds member `id` on a loopback ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(id: NodeId, identity: NodeIdentity, config: RelayConfig) -> Result<Self> {
        Self::bind_to(
            id,
            identity,
            "127.0.0.1:0".parse().expect("static addr"),
            config,
        )
    }

    /// Binds member `id` on an explicit address (for standalone daemons).
    ///
    /// # Errors
    ///
    /// Socket errors, wrapped so the message names the relay id and the
    /// address that failed — a multi-process bring-up with a port taken
    /// or an interface missing must say *which* relay could not bind.
    pub fn bind_to(
        id: NodeId,
        identity: NodeIdentity,
        addr: SocketAddr,
        config: RelayConfig,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(|e| {
            Error::Io(std::io::Error::new(
                e.kind(),
                format!("relay {id}: failed to bind {addr}: {e}"),
            ))
        })?;
        Ok(PendingRelay {
            id,
            identity,
            listener,
            config,
        })
    }

    /// The member id this relay will serve.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// The relay's static public key for the directory.
    pub fn public(&self) -> [u8; 32] {
        *self.identity.public()
    }

    /// Starts serving against `directory`, recording forwarded links into
    /// `tap`. `seed` only feeds the junk-byte generators (framing
    /// padding), never key material.
    pub fn serve(self, directory: Arc<Directory>, tap: LinkTap, seed: u64) -> Relay {
        self.serve_with(Topology::Fixed(directory), tap, seed)
    }

    /// Starts serving against a gossiped topology: routing reads the
    /// hot-swappable `cell`, and incoming [`Frame::Gossip`] snapshots
    /// are merged into `view` (refreshing the cell on change), so the
    /// relay learns the network from its peers instead of a static
    /// file. Pair with a [`crate::gossip::GossipRunner`] sharing the
    /// same handles.
    pub fn serve_dynamic(
        self,
        cell: DirectoryCell,
        view: Arc<Mutex<NetworkView>>,
        tap: LinkTap,
        seed: u64,
    ) -> Relay {
        self.serve_with(Topology::Dynamic { cell, view }, tap, seed)
    }

    fn serve_with(self, topology: Topology, tap: LinkTap, seed: u64) -> Relay {
        let PendingRelay {
            id,
            identity,
            listener,
            config,
        } = self;
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                let _done = workers::DoneGuard(done_tx);
                accept_loop(
                    listener, id, identity, topology, tap, counters, shutdown, config, seed,
                )
            })
        };
        Relay {
            id,
            addr,
            shutdown,
            counters,
            thread,
            done: done_rx,
        }
    }
}

/// A serving relay daemon.
#[derive(Debug)]
pub struct Relay {
    id: NodeId,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    thread: JoinHandle<Result<()>>,
    done: mpsc::Receiver<()>,
}

impl Relay {
    /// The member id this relay serves.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The address the relay listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current traffic counters.
    pub fn stats(&self) -> RelayStats {
        self.counters.snapshot()
    }

    /// Registers this relay's live counters as polled series in
    /// `registry`, labeled `relay="<id>"` — the wiring for a standalone
    /// daemon's `--metrics-addr` endpoint. Per-relay label cardinality is
    /// deliberate here and wrong for ephemeral cluster members; sweeps
    /// aggregate through [`crate::obs::ClusterMetrics`] instead.
    pub fn register_metrics(&self, registry: &'static Registry) {
        let id = self.id.to_string();
        let labels: &[(&str, &str)] = &[("relay", &id)];
        for (outcome, read) in [
            ("relayed", {
                let c = Arc::clone(&self.counters);
                Box::new(move || c.relayed.load(Ordering::Relaxed) as f64)
                    as Box<dyn Fn() -> f64 + Send + Sync>
            }),
            ("delivered", {
                let c = Arc::clone(&self.counters);
                Box::new(move || c.delivered.load(Ordering::Relaxed) as f64)
            }),
            ("dropped", {
                let c = Arc::clone(&self.counters);
                Box::new(move || c.dropped.load(Ordering::Relaxed) as f64)
            }),
        ] {
            registry.counter_fn(
                "anonroute_relay_cells_total",
                "Cells handled by this relay, by outcome.",
                &[("outcome", outcome), ("relay", &id)],
                read,
            );
        }
        let counters = Arc::clone(&self.counters);
        registry.counter_fn(
            "anonroute_relay_handshake_failures_total",
            "Cells whose onion layer failed to authenticate at this relay.",
            labels,
            move || counters.peel_failures.load(Ordering::Relaxed) as f64,
        );
        let counters = Arc::clone(&self.counters);
        registry.gauge_fn(
            "anonroute_relay_connections",
            "Worker connections currently open on this relay.",
            labels,
            move || counters.connections.load(Ordering::Relaxed) as f64,
        );
        let shutdown = Arc::clone(&self.shutdown);
        registry.gauge_fn(
            "anonroute_relay_shutting_down",
            "1 once shutdown has been requested, else 0.",
            labels,
            move || f64::from(u8::from(shutdown.load(Ordering::SeqCst))),
        );
        for (queue, depth, high_water) in [
            (
                "inbound",
                {
                    let c = Arc::clone(&self.counters);
                    Box::new(move || c.inbound.depth() as f64) as Box<dyn Fn() -> f64 + Send + Sync>
                },
                {
                    let c = Arc::clone(&self.counters);
                    Box::new(move || c.inbound.high_water() as f64)
                        as Box<dyn Fn() -> f64 + Send + Sync>
                },
            ),
            (
                "outbound",
                {
                    let c = Arc::clone(&self.counters);
                    Box::new(move || c.outbound.depth() as f64)
                },
                {
                    let c = Arc::clone(&self.counters);
                    Box::new(move || c.outbound.high_water() as f64)
                },
            ),
        ] {
            registry.gauge_fn(
                "anonroute_relay_queue_depth",
                "Current work-queue depth on this relay (inbound = live worker \
                 connections, outbound = downstream writes in progress).",
                &[("queue", queue), ("relay", &id)],
                depth,
            );
            registry.gauge_fn(
                "anonroute_relay_queue_high_water",
                "Deepest the queue has been since the relay started.",
                &[("queue", queue), ("relay", &id)],
                high_water,
            );
        }
    }

    /// Requests shutdown: raises the flag and wakes the blocked accept.
    /// Idempotent; returns immediately — pair with [`Relay::join`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // wake the accept loop; the connection itself is discarded there
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Stops the relay and waits for every thread, with a deadline.
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] if the daemon does not wind down in time (the
    /// thread is leaked rather than blocked on), [`Error::WorkerPanic`]
    /// when a connection worker or the accept loop panicked, or the
    /// first error the accept loop itself hit.
    pub fn join(self, timeout: Duration) -> Result<RelayStats> {
        self.shutdown();
        let Relay {
            id,
            counters,
            thread,
            done,
            ..
        } = self;
        match done.recv_timeout(timeout) {
            // a disconnect means the guard dropped — the thread is done
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Err(Error::Timeout(format!(
                    "relay {id} did not stop within {timeout:?}"
                )));
            }
        }
        match thread.join() {
            Ok(Ok(())) => Ok(counters.snapshot()),
            Ok(Err(e)) => Err(e),
            Err(p) => Err(Error::WorkerPanic(format!(
                "relay {id} accept loop: {}",
                panic_message(p)
            ))),
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal plumbing, not public API
fn accept_loop(
    listener: TcpListener,
    id: NodeId,
    identity: NodeIdentity,
    topology: Topology,
    tap: LinkTap,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    config: RelayConfig,
    seed: u64,
) -> Result<()> {
    let label = format!("relay {id}");
    workers::accept_loop(
        listener,
        &shutdown,
        config.io_timeout,
        &label,
        Some(&counters.inbound),
        |stream, conn_index| {
            let junk_rng =
                StdRng::seed_from_u64(seed ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let identity = identity.clone();
            let topology = topology.clone();
            let tap = tap.clone();
            let counters = Arc::clone(&counters);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                serve_conn(
                    stream, id, identity, topology, tap, counters, shutdown, config, junk_rng,
                )
            })
        },
    )
}

#[allow(clippy::too_many_arguments)] // internal plumbing, not public API
fn serve_conn(
    mut stream: TcpStream,
    id: NodeId,
    identity: NodeIdentity,
    topology: Topology,
    tap: LinkTap,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    config: RelayConfig,
    mut junk_rng: StdRng,
) {
    counters.connections.fetch_add(1, Ordering::Relaxed);
    let _open = ConnectionGuard(Arc::clone(&counters));
    // downstream connections cached per next hop (receiver = usize::MAX),
    // owned by this worker so no locks sit on the forwarding path
    let mut downstream: HashMap<usize, TcpStream> = HashMap::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match wire::read_frame(&mut stream, config.max_stalls) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::Frame(Frame::Cell { msg, cell })) => {
                let directory = topology.directory();
                handle_cell(
                    msg,
                    &cell,
                    id,
                    &identity,
                    &directory,
                    &tap,
                    &counters,
                    &config,
                    &mut junk_rng,
                    &mut downstream,
                );
            }
            Ok(ReadOutcome::Frame(Frame::Deliver { .. })) => {
                // relays are not the receiver; a DELIVER here is misrouted
                counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Ok(ReadOutcome::Frame(Frame::Gossip { snapshot })) => match &topology {
                // a gossip push to a statically provisioned relay is
                // misrouted, like a DELIVER
                Topology::Fixed(_) => {
                    counters.dropped.fetch_add(1, Ordering::Relaxed);
                }
                Topology::Dynamic { cell, view } => {
                    gossip::ingest(view, cell, &snapshot);
                }
            },
            Err(_) => {
                // protocol violation or dead socket: drop the connection
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal plumbing, not public API
fn handle_cell(
    msg: u64,
    cell: &[u8],
    id: NodeId,
    identity: &NodeIdentity,
    directory: &Directory,
    tap: &LinkTap,
    counters: &Counters,
    config: &RelayConfig,
    junk_rng: &mut StdRng,
    downstream: &mut HashMap<usize, TcpStream>,
) {
    if cell.len() != config.cell_size {
        counters.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let _cell_span = anonroute_obs::span("relay.cell", "relay");
    let peeled = {
        let _peel_span = anonroute_obs::span("relay.peel", "relay");
        circuit::peel(identity, cell)
    };
    match peeled {
        Ok(Peeled::Forward { next, content }) => {
            let next_id = next as usize;
            let Some(info) = directory.node(next_id) else {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let framed = onion::frame(&content, config.cell_size, &mut || junk_rng.gen::<u8>())
                .expect("peeled content is strictly smaller than the incoming cell");
            // record before sending: per-message tap order = path order
            tap.record(Endpoint::Node(id), Endpoint::Node(next_id), MsgId(msg));
            let frame = Frame::Cell { msg, cell: framed };
            let _fwd_span = anonroute_obs::span("relay.forward", "relay");
            counters.outbound.enter();
            let sent = send_cached(downstream, next_id, info.addr, &frame);
            counters.outbound.exit();
            if sent.is_ok() {
                counters.relayed.fetch_add(1, Ordering::Relaxed);
            } else {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(Peeled::Deliver { payload }) => {
            tap.record(Endpoint::Node(id), Endpoint::Receiver, MsgId(msg));
            let frame = Frame::Deliver {
                msg,
                from: id as u16,
                payload,
            };
            let _deliver_span = anonroute_obs::span("relay.deliver", "relay");
            counters.outbound.enter();
            let sent = send_cached(downstream, usize::MAX, directory.receiver(), &frame);
            counters.outbound.exit();
            if sent.is_ok() {
                counters.delivered.fetch_add(1, Ordering::Relaxed);
            } else {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(_) => {
            // not addressed to us / corrupted: a real router drops it,
            // but the handshake-failure count is what an operator (and
            // the sweep watchdog) diagnoses from
            counters.peel_failures.fetch_add(1, Ordering::Relaxed);
            counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Writes `frame` over the cached connection to `key`, dialing (or
/// re-dialing a stale socket) on demand.
pub(crate) fn send_cached(
    conns: &mut HashMap<usize, TcpStream>,
    key: usize,
    addr: SocketAddr,
    frame: &Frame,
) -> Result<()> {
    if let Some(stream) = conns.get_mut(&key) {
        if wire::write_frame(stream, frame).is_ok() {
            return Ok(());
        }
        conns.remove(&key); // stale: the peer restarted or timed us out
    }
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    wire::write_frame(&mut stream, frame)?;
    conns.insert(key, stream);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::NodeInfo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::Read;

    fn identity(id: u64) -> NodeIdentity {
        NodeIdentity::derive(b"daemon-tests", id)
    }

    /// One relay, a fake receiver socket, and a hand-built 1-hop circuit.
    #[test]
    fn relay_peels_and_delivers_over_tcp() {
        let receiver_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let receiver_addr = receiver_listener.local_addr().unwrap();
        let config = RelayConfig {
            cell_size: 512,
            ..RelayConfig::default()
        };
        let pending = PendingRelay::bind(0, identity(0), config).unwrap();
        let directory = Arc::new(
            Directory::new(
                vec![NodeInfo {
                    id: 0,
                    addr: pending.addr(),
                    public: pending.public(),
                }],
                receiver_addr,
            )
            .unwrap(),
        );
        let tap = LinkTap::new();
        let relay = pending.serve(Arc::clone(&directory), tap.clone(), 1);

        let mut rng = StdRng::seed_from_u64(9);
        let wire_bytes = circuit::build(
            &[directory.node(0).unwrap().public],
            &[0u16],
            b"over real sockets",
            &mut rng,
        )
        .unwrap();
        let cell = onion::frame(&wire_bytes, 512, &mut || rng.gen::<u8>()).unwrap();
        let mut conn = TcpStream::connect(relay.addr()).unwrap();
        wire::write_frame(&mut conn, &Frame::Cell { msg: 7, cell }).unwrap();

        let (mut from_relay, _) = receiver_listener.accept().unwrap();
        match wire::read_frame(&mut from_relay, 100).unwrap() {
            ReadOutcome::Frame(Frame::Deliver { msg, from, payload }) => {
                assert_eq!(msg, 7);
                assert_eq!(from, 0);
                assert_eq!(payload, b"over real sockets");
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = relay.join(Duration::from_secs(5)).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(tap.len(), 1); // the exit→receiver edge
    }

    #[test]
    fn garbage_cells_are_dropped_not_fatal() {
        let receiver = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = RelayConfig {
            cell_size: 256,
            ..RelayConfig::default()
        };
        let pending = PendingRelay::bind(0, identity(0), config).unwrap();
        let directory = Arc::new(
            Directory::new(
                vec![NodeInfo {
                    id: 0,
                    addr: pending.addr(),
                    public: pending.public(),
                }],
                receiver.local_addr().unwrap(),
            )
            .unwrap(),
        );
        let relay = pending.serve(directory, LinkTap::new(), 2);
        let mut conn = TcpStream::connect(relay.addr()).unwrap();
        // wrong size
        wire::write_frame(
            &mut conn,
            &Frame::Cell {
                msg: 1,
                cell: vec![0u8; 10],
            },
        )
        .unwrap();
        // right size, not addressed to this relay
        wire::write_frame(
            &mut conn,
            &Frame::Cell {
                msg: 2,
                cell: vec![0u8; 256],
            },
        )
        .unwrap();
        // misrouted DELIVER
        wire::write_frame(
            &mut conn,
            &Frame::Deliver {
                msg: 3,
                from: 0,
                payload: vec![],
            },
        )
        .unwrap();
        drop(conn);
        // shutdown may discard unprocessed input, so await the counters
        // before joining
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while relay.stats().dropped < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = relay.join(Duration::from_secs(5)).unwrap();
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.relayed, 0);
    }

    #[test]
    fn shutdown_is_bounded_even_with_open_idle_connections() {
        let receiver = TcpListener::bind("127.0.0.1:0").unwrap();
        let pending = PendingRelay::bind(0, identity(0), RelayConfig::default()).unwrap();
        let directory = Arc::new(
            Directory::new(
                vec![NodeInfo {
                    id: 0,
                    addr: pending.addr(),
                    public: pending.public(),
                }],
                receiver.local_addr().unwrap(),
            )
            .unwrap(),
        );
        let relay = pending.serve(directory, LinkTap::new(), 3);
        // an idle connection that never sends and never closes
        let _idle = TcpStream::connect(relay.addr()).unwrap();
        let start = std::time::Instant::now();
        relay.join(Duration::from_secs(5)).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "join exceeded its bound"
        );
    }

    #[test]
    fn bind_errors_name_the_relay_and_address() {
        let taken = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = taken.local_addr().unwrap();
        let err = PendingRelay::bind_to(7, identity(7), addr, RelayConfig::default())
            .expect_err("double bind must fail");
        let msg = err.to_string();
        assert!(msg.contains("relay 7"), "got: {msg}");
        assert!(msg.contains(&addr.to_string()), "got: {msg}");
    }

    #[test]
    fn dynamic_relays_merge_gossip_frames_into_their_topology() {
        use crate::authority::{NetworkView, RelayDescriptor};

        let receiver = TcpListener::bind("127.0.0.1:0").unwrap();
        let receiver_addr = receiver.local_addr().unwrap();
        let net_seed = b"daemon-gossip";
        let pending =
            PendingRelay::bind(0, NodeIdentity::derive(net_seed, 0), RelayConfig::default())
                .unwrap();
        let mut bootstrap = NetworkView::new(net_seed, receiver_addr);
        bootstrap
            .publish(RelayDescriptor::derive(net_seed, 0, pending.addr(), 1).sign(net_seed))
            .unwrap();
        let cell = DirectoryCell::new(bootstrap.to_directory().unwrap());
        let view = Arc::new(Mutex::new(bootstrap.clone()));
        let relay = pending.serve_dynamic(cell.clone(), Arc::clone(&view), LinkTap::new(), 5);

        // a peer that also knows relay 1 pushes its snapshot at us
        let other = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer_view = bootstrap;
        peer_view
            .publish(
                RelayDescriptor::derive(net_seed, 1, other.local_addr().unwrap(), 1).sign(net_seed),
            )
            .unwrap();
        let mut conn = TcpStream::connect(relay.addr()).unwrap();
        wire::write_frame(
            &mut conn,
            &Frame::Gossip {
                snapshot: peer_view.snapshot(),
            },
        )
        .unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while view.lock().unwrap().len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(view.lock().unwrap().member_ids(), vec![0, 1]);
        assert_eq!(cell.load().n(), 2, "merged topology must become routable");
        relay.join(Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn send_cached_redials_stale_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut conns = HashMap::new();
        let frame = Frame::Deliver {
            msg: 1,
            from: 0,
            payload: b"a".to_vec(),
        };
        send_cached(&mut conns, 0, addr, &frame).unwrap();
        let (mut first, _) = listener.accept().unwrap();
        // kill the server side of the cached connection and drain it
        let mut buf = Vec::new();
        first
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let _ = first.read_to_end(&mut buf);
        drop(first);
        // writes eventually fail; a redial must recover (the first failed
        // write can be absorbed by socket buffers, so retry a few times)
        listener.set_nonblocking(true).unwrap();
        let mut recovered = false;
        for _ in 0..100 {
            let _ = send_cached(&mut conns, 0, addr, &frame);
            if let Ok((second, _)) = listener.accept() {
                drop(second);
                recovered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(recovered, "send_cached never re-dialed");
    }
}
