//! Circuit construction: handshake-keyed onion layers in fixed relay
//! cells.
//!
//! The simulator's onion stack pre-shares symmetric master keys
//! ([`anonroute_crypto::keys::KeyStore`]); a real network cannot. Here
//! every layer key comes from a zero-round-trip X25519 exchange
//! ([`anonroute_crypto::handshake`], the design of Tor's first onions and
//! of Sphinx): the sender draws one ephemeral key pair per hop and places
//! the ephemeral public key in the clear in front of that hop's layer.
//!
//! ```text
//! relay cell := eph_pub(32) ‖ nonce(12) ‖ ciphertext      (fixed size)
//! Forward content := next hop's relay-cell prefix (eph' ‖ nonce' ‖ ct')
//! ```
//!
//! Each hop strips its ephemeral key, recomputes the layer key from its
//! static identity, peels ([`anonroute_crypto::onion::peel`]), and frames
//! the inner prefix back to the fixed cell size with fresh junk — so a
//! per-hop observer sees constant-size, bitwise-unlinkable cells, the mix
//! property the paper's system model presumes.

use anonroute_crypto::handshake::{send_layer_key, NodeIdentity};
use anonroute_crypto::onion::{self, Peeled, DELIVER, LAYER_OVERHEAD, NONCE_LEN};
use rand::Rng;

use crate::error::{Error, Result};

/// Bytes of the cleartext ephemeral X25519 public key per hop.
pub const EPH_LEN: usize = 32;

/// Total overhead one relay hop adds to the meaningful prefix.
pub const HOP_OVERHEAD: usize = EPH_LEN + LAYER_OVERHEAD;

/// Default fixed relay-cell size in bytes (fits 31 hops of overhead).
pub const DEFAULT_CELL_SIZE: usize = 2048;

/// Size in bytes of the meaningful prefix of the outermost relay cell
/// for `payload_len` bytes routed over `hops` hops.
pub fn wire_len(hops: usize, payload_len: usize) -> usize {
    payload_len + hops * HOP_OVERHEAD
}

/// Largest payload that fits a `cell_size` relay cell across `hops` hops.
pub fn max_payload(cell_size: usize, hops: usize) -> Option<usize> {
    cell_size.checked_sub(hops * HOP_OVERHEAD)
}

/// Builds the meaningful prefix of the outermost relay cell carrying
/// `payload` along `path`, keyed against each hop's directory public key
/// (`publics[i]` belongs to `path[i]`). Frame the result with
/// [`anonroute_crypto::onion::frame`] before transmission.
///
/// Ephemeral keys and nonces are drawn from `rng` — fresh per hop per
/// message, as the handshake requires.
///
/// # Errors
///
/// [`Error::Config`] on empty/mismatched inputs or an id colliding with
/// the DELIVER marker; [`Error::Crypto`] when a layer exceeds the 16-bit
/// length field.
pub fn build<R: Rng + ?Sized>(
    publics: &[[u8; 32]],
    path: &[u16],
    payload: &[u8],
    rng: &mut R,
) -> Result<Vec<u8>> {
    if path.is_empty() {
        return Err(Error::Config("circuits need at least one hop".into()));
    }
    if publics.len() != path.len() {
        return Err(Error::Config(format!(
            "need one public key per hop: {} hops, {} keys",
            path.len(),
            publics.len()
        )));
    }
    if path.contains(&DELIVER) {
        return Err(Error::Config(format!(
            "node id {DELIVER} collides with the DELIVER marker"
        )));
    }
    // innermost first: the exit hop delivers the payload
    let mut content = payload.to_vec();
    let mut next = DELIVER;
    for (&hop, public) in path.iter().zip(publics.iter()).rev() {
        let eph_priv: [u8; 32] = rng.gen();
        let (master, eph_pub) = send_layer_key(&eph_priv, public);
        let nonce: [u8; NONCE_LEN] = rng.gen();
        let sealed = onion::seal(&master, &nonce, next, &content)?;
        let mut wire = Vec::with_capacity(EPH_LEN + sealed.len());
        wire.extend_from_slice(&eph_pub);
        wire.extend_from_slice(&sealed);
        content = wire;
        next = hop;
    }
    Ok(content)
}

/// Peels one relay layer with the node's static identity: strips the
/// ephemeral public key, recomputes the layer key, and delegates to
/// [`anonroute_crypto::onion::peel`]. A `Forward` content is the next
/// hop's relay-cell prefix, ready for re-framing.
///
/// # Errors
///
/// [`Error::Crypto`] when the cell is malformed or fails authentication
/// (wrong relay, corruption, forgery).
pub fn peel(identity: &NodeIdentity, cell: &[u8]) -> Result<Peeled> {
    if cell.len() < HOP_OVERHEAD {
        return Err(Error::Crypto(anonroute_crypto::Error::Malformed(format!(
            "relay cell of {} bytes is shorter than one hop ({HOP_OVERHEAD})",
            cell.len()
        ))));
    }
    let eph_pub: [u8; 32] = cell[..EPH_LEN].try_into().expect("length checked");
    let master = identity.recv_layer_key(&eph_pub);
    onion::peel(&master, &cell[EPH_LEN..]).map_err(Error::Crypto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identities(n: usize) -> Vec<NodeIdentity> {
        (0..n)
            .map(|i| NodeIdentity::derive(b"circuit-tests", i as u64))
            .collect()
    }

    fn publics_for(ids: &[NodeIdentity], path: &[u16]) -> Vec<[u8; 32]> {
        path.iter().map(|&h| *ids[h as usize].public()).collect()
    }

    fn frame_with(content: &[u8], cell_size: usize, rng: &mut StdRng) -> Vec<u8> {
        onion::frame(content, cell_size, &mut || rng.gen::<u8>()).unwrap()
    }

    /// Relays a framed cell along `path`, asserting fixed size per hop.
    fn relay_chain(
        ids: &[NodeIdentity],
        path: &[u16],
        wire: Vec<u8>,
        cell_size: usize,
        rng: &mut StdRng,
    ) -> Vec<u8> {
        let mut cell = frame_with(&wire, cell_size, rng);
        for (i, &hop) in path.iter().enumerate() {
            assert_eq!(cell.len(), cell_size);
            match peel(&ids[hop as usize], &cell).unwrap() {
                Peeled::Forward { next, content } => {
                    assert_eq!(next, path[i + 1], "hop {i} forwards to the wrong relay");
                    cell = frame_with(&content, cell_size, rng);
                }
                Peeled::Deliver { payload } => {
                    assert_eq!(i, path.len() - 1, "delivered early at hop {i}");
                    return payload;
                }
            }
        }
        panic!("message never delivered");
    }

    #[test]
    fn multi_hop_roundtrip_with_handshake_keys() {
        let ids = identities(10);
        let mut rng = StdRng::seed_from_u64(1);
        for path in [vec![3u16], vec![2, 7, 1, 9, 4], vec![5, 2, 5, 2]] {
            let payload = b"optimal strategies over real sockets";
            let wire = build(&publics_for(&ids, &path), &path, payload, &mut rng).unwrap();
            assert_eq!(wire.len(), wire_len(path.len(), payload.len()));
            let got = relay_chain(&ids, &path, wire, 1024, &mut rng);
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn wrong_relay_rejects_the_cell() {
        let ids = identities(4);
        let mut rng = StdRng::seed_from_u64(2);
        let path = [1u16, 2];
        let wire = build(&publics_for(&ids, &path), &path, b"secret", &mut rng).unwrap();
        let cell = onion::frame(&wire, 512, &mut || 0u8).unwrap();
        assert!(peel(&ids[3], &cell).is_err());
        assert!(peel(&ids[1], &cell).is_ok());
    }

    #[test]
    fn rebuilding_the_same_message_is_unlinkable() {
        // fresh ephemerals/nonces per build: two cells for the same
        // payload and path share no bytes beyond chance
        let ids = identities(6);
        let mut rng = StdRng::seed_from_u64(3);
        let path = [1u16, 4];
        let publics = publics_for(&ids, &path);
        let a = build(&publics, &path, &[0u8; 64], &mut rng).unwrap();
        let b = build(&publics, &path, &[0u8; 64], &mut rng).unwrap();
        let matching = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            matching < a.len() / 10,
            "{matching} of {} bytes match",
            a.len()
        );
    }

    #[test]
    fn input_validation() {
        let ids = identities(3);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(build(&[], &[], b"x", &mut rng).is_err());
        assert!(build(&publics_for(&ids, &[1]), &[1, 2], b"x", &mut rng).is_err());
        assert!(build(&[[0u8; 32]], &[DELIVER], b"x", &mut rng).is_err());
        assert!(peel(&ids[0], &[0u8; 10]).is_err());
    }

    #[test]
    fn overhead_accounting() {
        assert_eq!(HOP_OVERHEAD, 64);
        assert_eq!(max_payload(DEFAULT_CELL_SIZE, 31), Some(64));
        assert_eq!(max_payload(128, 3), None);
        let ids = identities(8);
        let mut rng = StdRng::seed_from_u64(5);
        let path = [0u16, 1, 2];
        let cap = max_payload(512, 3).unwrap();
        let wire = build(&publics_for(&ids, &path), &path, &vec![9u8; cap], &mut rng).unwrap();
        assert_eq!(wire.len(), 512);
        let got = relay_chain(&ids, &path, wire, 512, &mut rng);
        assert_eq!(got.len(), cap);
    }
}
