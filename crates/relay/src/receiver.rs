//! The destination server: collects deliveries from exit relays.
//!
//! In the paper's threat model the receiver is always compromised; here
//! it is simply the TCP endpoint that terminates every circuit, recording
//! [`anonroute_sim::Delivery`] values the harness can await and inspect.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use anonroute_sim::{Delivery, Endpoint, MsgId};

use crate::error::{panic_message, Error, Result};
use crate::tap::LinkTap;
use crate::wire::{self, Frame, ReadOutcome};
use crate::workers;

/// A serving receiver endpoint.
///
/// `Sync`: the done-channel receiver sits behind a mutex so shared
/// harnesses (e.g. [`crate::cluster::SharedCluster`]) can poll
/// deliveries from many evaluation threads at once.
#[derive(Debug)]
pub struct ReceiverServer {
    addr: SocketAddr,
    inbox: Arc<Inbox>,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<Result<()>>,
    done: Mutex<mpsc::Receiver<()>>,
}

#[derive(Debug)]
struct Inbox {
    deliveries: Mutex<Vec<Delivery>>,
    arrived: Condvar,
}

impl ReceiverServer {
    /// Binds a loopback ephemeral port and starts collecting. Timestamps
    /// come from `tap` so deliveries share the cluster's clock;
    /// `io_timeout` bounds how long workers block between reads (the
    /// shutdown-poll granularity).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the bind.
    pub fn spawn(tap: LinkTap, io_timeout: Duration) -> Result<Self> {
        Self::spawn_at("127.0.0.1:0".parse().expect("static addr"), tap, io_timeout)
    }

    /// Like [`ReceiverServer::spawn`] on an explicit address (for
    /// standalone daemons serving a published directory entry).
    ///
    /// # Errors
    ///
    /// Socket errors from the bind, wrapped to name the receiver and
    /// the address that failed.
    pub fn spawn_at(addr: SocketAddr, tap: LinkTap, io_timeout: Duration) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(|e| {
            crate::error::Error::Io(std::io::Error::new(
                e.kind(),
                format!("receiver: failed to bind {addr}: {e}"),
            ))
        })?;
        let addr = listener.local_addr()?;
        let inbox = Arc::new(Inbox {
            deliveries: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let thread = {
            let inbox = Arc::clone(&inbox);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                let _done = workers::DoneGuard(done_tx);
                accept_loop(listener, inbox, tap, shutdown, io_timeout)
            })
        };
        Ok(ReceiverServer {
            addr,
            inbox,
            shutdown,
            thread,
            done: Mutex::new(done_rx),
        })
    }

    /// The address exit relays (and direct senders) dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A copy of the deliveries so far, in arrival order.
    pub fn deliveries(&self) -> Vec<Delivery> {
        self.inbox.deliveries.lock().expect("inbox lock").clone()
    }

    /// A copy of the deliveries from index `from` on — incremental drains
    /// (e.g. a printing daemon) copy only the tail instead of the whole
    /// history on every wakeup.
    pub fn deliveries_since(&self, from: usize) -> Vec<Delivery> {
        let guard = self.inbox.deliveries.lock().expect("inbox lock");
        guard
            .get(from..)
            .map(<[Delivery]>::to_vec)
            .unwrap_or_default()
    }

    /// Blocks until at least `count` deliveries arrived or `timeout`
    /// elapsed; returns whether the count was reached.
    pub fn wait_for(&self, count: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.inbox.deliveries.lock().expect("inbox lock");
        loop {
            if guard.len() >= count {
                return true;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (next, wait) = self
                .inbox
                .arrived
                .wait_timeout(guard, remaining)
                .expect("inbox lock");
            guard = next;
            if wait.timed_out() && guard.len() < count {
                return false;
            }
        }
    }

    /// Stops the server and returns everything delivered.
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] when the server does not wind down in time,
    /// [`Error::WorkerPanic`] when a worker panicked.
    pub fn join(self, timeout: Duration) -> Result<Vec<Delivery>> {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let ReceiverServer {
            inbox,
            thread,
            done,
            ..
        } = self;
        let done = done.into_inner().expect("done-channel lock");
        match done.recv_timeout(timeout) {
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Err(Error::Timeout(format!(
                    "receiver did not stop within {timeout:?}"
                )));
            }
        }
        match thread.join() {
            Ok(Ok(())) => Ok(inbox.deliveries.lock().expect("inbox lock").clone()),
            Ok(Err(e)) => Err(e),
            Err(p) => Err(Error::WorkerPanic(format!(
                "receiver accept loop: {}",
                panic_message(p)
            ))),
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    inbox: Arc<Inbox>,
    tap: LinkTap,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
) -> Result<()> {
    workers::accept_loop(
        listener,
        &shutdown,
        io_timeout,
        "receiver",
        None,
        |stream, _| {
            let inbox = Arc::clone(&inbox);
            let tap = tap.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || serve_conn(stream, inbox, tap, shutdown))
        },
    )
}

/// Mirrors [`crate::daemon::RelayConfig::default`]'s `max_stalls`: the
/// receiver has no per-daemon config, but tolerates the same number of
/// stalled mid-frame reads before declaring a peer wedged.
const MAX_STALLS: u32 = 100;

fn serve_conn(mut stream: TcpStream, inbox: Arc<Inbox>, tap: LinkTap, shutdown: Arc<AtomicBool>) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match wire::read_frame(&mut stream, MAX_STALLS) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::Frame(Frame::Deliver { msg, from, payload })) => {
                let delivery = Delivery {
                    time: tap.now(),
                    msg: MsgId(msg),
                    last_hop: Endpoint::Node(from as usize),
                    payload,
                };
                inbox.deliveries.lock().expect("inbox lock").push(delivery);
                inbox.arrived.notify_all();
            }
            // the receiver terminates circuits; raw CELL and GOSSIP
            // frames are misrouted here
            Ok(ReadOutcome::Frame(Frame::Cell { .. } | Frame::Gossip { .. })) => {}
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_awaits_deliveries() {
        let tap = LinkTap::new();
        let server = ReceiverServer::spawn(tap, Duration::from_millis(50)).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        for i in 0..3u64 {
            wire::write_frame(
                &mut conn,
                &Frame::Deliver {
                    msg: i,
                    from: 4,
                    payload: vec![i as u8],
                },
            )
            .unwrap();
        }
        assert!(server.wait_for(3, Duration::from_secs(5)));
        assert_eq!(server.deliveries_since(2).len(), 1);
        assert_eq!(server.deliveries_since(2)[0].msg, MsgId(2));
        assert!(server.deliveries_since(5).is_empty());
        let got = server.join(Duration::from_secs(5)).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].last_hop, Endpoint::Node(4));
        assert_eq!(got[2].payload, vec![2u8]);
    }

    #[test]
    fn wait_for_times_out_honestly() {
        let server = ReceiverServer::spawn(LinkTap::new(), Duration::from_millis(50)).unwrap();
        let start = Instant::now();
        assert!(!server.wait_for(1, Duration::from_millis(120)));
        assert!(start.elapsed() >= Duration::from_millis(100));
        server.join(Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn misrouted_cells_are_ignored() {
        let server = ReceiverServer::spawn(LinkTap::new(), Duration::from_millis(50)).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        wire::write_frame(
            &mut conn,
            &Frame::Cell {
                msg: 1,
                cell: vec![0; 64],
            },
        )
        .unwrap();
        wire::write_frame(
            &mut conn,
            &Frame::Deliver {
                msg: 2,
                from: 0,
                payload: vec![9],
            },
        )
        .unwrap();
        assert!(server.wait_for(1, Duration::from_secs(5)));
        let got = server.join(Duration::from_secs(5)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].msg, MsgId(2));
    }
}
