//! Directory authority: signed, versioned relay descriptors with
//! join/leave tracking and a consensus-lite snapshot protocol.
//!
//! The static text directory ([`crate::Directory::parse`]) freezes the
//! topology at process start. This module replaces it for multi-process
//! deployments with a small directory service:
//!
//! * [`RelayDescriptor`] — one relay's advertisement (id, address,
//!   onion public key, bandwidth weight) carrying a **monotone version
//!   number** so replays and stale re-announcements are rejected.
//! * [`SignedDescriptor`] — the descriptor plus an HMAC-SHA256
//!   signature in the ed25519 detached-signature shape (canonical bytes
//!   ‖ 32-byte tag). The MAC key is derived per relay id from the
//!   shared network seed via HKDF, which matches the trust model of the
//!   rest of the stack: everyone who knows the net seed can already
//!   derive every relay's *private* onion key, so a shared-seed MAC
//!   loses nothing over true public-key signatures while staying inside
//!   the vendored crypto toolbox (no ed25519 available offline).
//! * [`NetworkView`] — a mergeable membership map (per-id
//!   latest-version-wins, tombstones for departures). Merging is
//!   commutative, associative, and idempotent over the member and
//!   tombstone sets, so gossiping snapshots in any order converges.
//! * [`AuthorityServer`] / [`AuthorityClient`] — a line-oriented TCP
//!   protocol (`PUT`/`GET`/`DOWN`/`EVENTS`/`PING`) serving snapshots
//!   and accepting descriptor publishes, with optional lease expiry so
//!   relays that stop refreshing are tombstoned automatically.
//!
//! Every accepted change appends a [`MembershipEvent`]; those are the
//! *real* churn observations that feed
//! `anonroute_core::epochs::EpochSchedule::realize_from_active` in
//! place of the synthetic `ChurnModel` coin flips.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use anonroute_crypto::handshake::NodeIdentity;
use anonroute_crypto::{hkdf, hmac};

use crate::directory::{Directory, NodeInfo};
use crate::error::{Error, Result};
use crate::obs::DirectoryMetrics;
use crate::workers::{self, DoneGuard};

/// Domain-separation salt for descriptor MAC keys.
const MAC_SALT: &[u8] = b"anonroute-authority-v1";
/// Magic prefix of a canonically encoded descriptor.
const DESC_MAGIC: &[u8; 4] = b"ARD1";
/// Magic prefix of an encoded directory snapshot.
const SNAP_MAGIC: &[u8; 4] = b"ASNP";
/// Signature (HMAC-SHA256 tag) length in bytes.
const SIG_LEN: usize = 32;
/// Hard cap on encoded descriptor size (the address string is the only
/// variable-length field).
const MAX_DESC_LEN: usize = 512;

/// Derives the MAC key that signs relay `id`'s descriptors on a network
/// provisioned from `net_seed`.
fn descriptor_key(net_seed: &[u8], id: u64) -> [u8; 32] {
    let mut info = Vec::with_capacity(24);
    info.extend_from_slice(b"descriptor ");
    info.extend_from_slice(&id.to_be_bytes());
    let mut key = [0u8; 32];
    hkdf::derive(MAC_SALT, net_seed, &info, &mut key);
    key
}

/// One relay's signed advertisement: who it is, where it listens, the
/// onion public key clients encrypt to, and a relative bandwidth weight
/// for weighted route sampling. `version` must increase on every
/// re-announcement; stale versions are rejected by [`NetworkView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayDescriptor {
    /// Dense relay id (the directory index clients route by).
    pub id: u64,
    /// Socket address the relay daemon listens on.
    pub addr: SocketAddr,
    /// X25519 public key for onion-circuit handshakes.
    pub public: [u8; 32],
    /// Relative bandwidth weight (reserved for weighted sampling).
    pub bandwidth_weight: u32,
    /// Monotone per-relay version; higher supersedes lower.
    pub version: u64,
    /// True when this descriptor announces a graceful departure.
    pub leaving: bool,
}

impl RelayDescriptor {
    /// The descriptor a relay derives for itself from the shared
    /// network seed (same provisioning as [`Directory::parse`]).
    pub fn derive(net_seed: &[u8], id: u64, addr: SocketAddr, version: u64) -> RelayDescriptor {
        RelayDescriptor {
            id,
            addr,
            public: *NodeIdentity::derive(net_seed, id).public(),
            bandwidth_weight: 1,
            version,
            leaving: false,
        }
    }

    /// Canonical byte encoding (the bytes that get signed).
    fn canonical(&self) -> Vec<u8> {
        let addr = self.addr.to_string();
        let mut out = Vec::with_capacity(64 + addr.len());
        out.extend_from_slice(DESC_MAGIC);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.version.to_be_bytes());
        out.extend_from_slice(&self.bandwidth_weight.to_be_bytes());
        out.push(u8::from(self.leaving));
        out.extend_from_slice(&(addr.len() as u16).to_be_bytes());
        out.extend_from_slice(addr.as_bytes());
        out.extend_from_slice(&self.public);
        out
    }

    /// Signs the canonical encoding with the per-id key derived from
    /// `net_seed`.
    pub fn sign(&self, net_seed: &[u8]) -> SignedDescriptor {
        let key = descriptor_key(net_seed, self.id);
        let sig = hmac::hmac_sha256(&key, &self.canonical());
        SignedDescriptor {
            descriptor: self.clone(),
            sig,
        }
    }
}

/// A [`RelayDescriptor`] plus its detached signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedDescriptor {
    /// The signed payload.
    pub descriptor: RelayDescriptor,
    /// HMAC-SHA256 tag over the canonical descriptor bytes.
    pub sig: [u8; SIG_LEN],
}

impl SignedDescriptor {
    /// Constant-time signature check against the key derived for the
    /// descriptor's claimed id.
    pub fn verify(&self, net_seed: &[u8]) -> bool {
        let key = descriptor_key(net_seed, self.descriptor.id);
        let expected = hmac::hmac_sha256(&key, &self.descriptor.canonical());
        hmac::verify_mac(&expected, &self.sig)
    }

    /// Wire encoding: canonical bytes followed by the signature.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.descriptor.canonical();
        out.extend_from_slice(&self.sig);
        out
    }

    /// Parses an encoded signed descriptor. Rejects truncated, trailing
    /// or oversized input; does **not** check the signature (call
    /// [`SignedDescriptor::verify`]).
    pub fn decode(bytes: &[u8]) -> Result<SignedDescriptor> {
        if bytes.len() > MAX_DESC_LEN {
            return Err(Error::Protocol(format!(
                "descriptor too large: {} bytes (max {MAX_DESC_LEN})",
                bytes.len()
            )));
        }
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != DESC_MAGIC {
            return Err(Error::Protocol("bad descriptor magic".into()));
        }
        let id = r.u64()?;
        let version = r.u64()?;
        let bandwidth_weight = r.u32()?;
        let leaving = r.u8()? != 0;
        let addr_len = r.u16()? as usize;
        let addr_bytes = r.take(addr_len)?;
        let addr: SocketAddr = std::str::from_utf8(addr_bytes)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::Protocol("bad descriptor address".into()))?;
        let mut public = [0u8; 32];
        public.copy_from_slice(r.take(32)?);
        let mut sig = [0u8; SIG_LEN];
        sig.copy_from_slice(r.take(SIG_LEN)?);
        r.finish()?;
        Ok(SignedDescriptor {
            descriptor: RelayDescriptor {
                id,
                addr,
                public,
                bandwidth_weight,
                version,
                leaving,
            },
            sig,
        })
    }
}

/// Bounds-checked cursor over an encoded buffer.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| Error::Protocol("truncated encoding".into()))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len")))
    }

    fn finish(&self) -> Result<()> {
        if self.at != self.bytes.len() {
            return Err(Error::Protocol("trailing bytes in encoding".into()));
        }
        Ok(())
    }
}

/// What happened to a relay's membership, in view-version order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The relay joined (first accepted descriptor).
    Joined,
    /// The relay left: graceful `leaving` descriptor, a `DOWN` report,
    /// or lease expiry.
    Left,
}

/// One accepted membership change; `version` is the view version the
/// change produced, so replaying events in order reconstructs the
/// active set at any point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// View version after this change was applied.
    pub version: u64,
    /// Relay id the change concerns.
    pub id: u64,
    /// Join or leave.
    pub kind: MembershipChange,
}

/// Replays `events` (any slice ordered by version) up to and including
/// `version`, returning the sorted set of active relay ids.
pub fn active_at(events: &[MembershipEvent], version: u64) -> Vec<usize> {
    let mut active: BTreeMap<u64, ()> = BTreeMap::new();
    for ev in events.iter().filter(|ev| ev.version <= version) {
        match ev.kind {
            MembershipChange::Joined => {
                active.insert(ev.id, ());
            }
            MembershipChange::Left => {
                active.remove(&ev.id);
            }
        }
    }
    active.keys().map(|&id| id as usize).collect()
}

/// A mergeable view of network membership: the latest verified
/// descriptor per relay plus tombstones for departed ones.
///
/// Local mutations ([`NetworkView::publish`], [`NetworkView::report_down`])
/// bump the view version; [`NetworkView::merge_snapshot`] folds a
/// peer's snapshot in with per-id latest-version-wins semantics and
/// takes the max of the two view versions, so any gossip order reaches
/// the same fixed point (checked by a property test).
#[derive(Debug, Clone)]
pub struct NetworkView {
    net_seed: Vec<u8>,
    receiver: SocketAddr,
    members: BTreeMap<u64, SignedDescriptor>,
    tombstones: BTreeMap<u64, u64>,
    version: u64,
    events: Vec<MembershipEvent>,
}

impl NetworkView {
    /// An empty view of the network identified by `net_seed`, with the
    /// delivery endpoint at `receiver`.
    pub fn new(net_seed: &[u8], receiver: SocketAddr) -> NetworkView {
        NetworkView {
            net_seed: net_seed.to_vec(),
            receiver,
            members: BTreeMap::new(),
            tombstones: BTreeMap::new(),
            version: 0,
            events: Vec::new(),
        }
    }

    /// Current view version (bumped by every accepted change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The delivery endpoint this network routes final hops to.
    pub fn receiver(&self) -> SocketAddr {
        self.receiver
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no relay has joined (or all have left).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Sorted ids of the live members.
    pub fn member_ids(&self) -> Vec<u64> {
        self.members.keys().copied().collect()
    }

    /// The live descriptor for `id`, if any.
    pub fn member(&self, id: u64) -> Option<&SignedDescriptor> {
        self.members.get(&id)
    }

    /// All accepted membership events, in version order.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// Events strictly after view version `since`.
    pub fn events_since(&self, since: u64) -> &[MembershipEvent] {
        let from = self.events.partition_point(|ev| ev.version <= since);
        &self.events[from..]
    }

    /// Accepts a signed descriptor: verifies the signature, rejects
    /// stale versions (≤ the live descriptor's, or ≤ a tombstone's),
    /// and applies join/update/leave. Returns the new view version.
    pub fn publish(&mut self, signed: SignedDescriptor) -> Result<u64> {
        if !signed.verify(&self.net_seed) {
            return Err(Error::Protocol(format!(
                "descriptor for relay {} has a bad signature",
                signed.descriptor.id
            )));
        }
        let id = signed.descriptor.id;
        let version = signed.descriptor.version;
        if let Some(&dead) = self.tombstones.get(&id) {
            if version <= dead {
                return Err(Error::Protocol(format!(
                    "stale descriptor for relay {id}: version {version} <= tombstone {dead}"
                )));
            }
        }
        if let Some(live) = self.members.get(&id) {
            if version <= live.descriptor.version {
                return Err(Error::Protocol(format!(
                    "stale descriptor for relay {id}: version {version} <= live {}",
                    live.descriptor.version
                )));
            }
        }
        if signed.descriptor.leaving {
            self.tombstones.insert(id, version);
            let was_member = self.members.remove(&id).is_some();
            self.version += 1;
            if was_member {
                self.push_event(id, MembershipChange::Left);
            }
        } else {
            let joined = !self.members.contains_key(&id);
            self.tombstones.remove(&id);
            self.members.insert(id, signed);
            self.version += 1;
            if joined {
                self.push_event(id, MembershipChange::Joined);
            }
        }
        Ok(self.version)
    }

    /// Tombstones `id` at its current descriptor version (a peer-health
    /// or lease-expiry departure). Returns the new view version, or the
    /// unchanged one when `id` was not a member.
    pub fn report_down(&mut self, id: u64) -> u64 {
        if let Some(signed) = self.members.remove(&id) {
            self.tombstones.insert(id, signed.descriptor.version);
            self.version += 1;
            self.push_event(id, MembershipChange::Left);
        }
        self.version
    }

    fn push_event(&mut self, id: u64, kind: MembershipChange) {
        self.events.push(MembershipEvent {
            version: self.version,
            id,
            kind,
        });
    }

    /// Serializes the full view (version, receiver, members,
    /// tombstones) for gossip or an authority `GET`.
    pub fn snapshot(&self) -> Vec<u8> {
        let receiver = self.receiver.to_string();
        let mut out = Vec::with_capacity(64 + self.members.len() * 96);
        out.extend_from_slice(SNAP_MAGIC);
        out.extend_from_slice(&self.version.to_be_bytes());
        out.extend_from_slice(&(receiver.len() as u16).to_be_bytes());
        out.extend_from_slice(receiver.as_bytes());
        out.extend_from_slice(&(self.members.len() as u32).to_be_bytes());
        for signed in self.members.values() {
            let enc = signed.encode();
            out.extend_from_slice(&(enc.len() as u32).to_be_bytes());
            out.extend_from_slice(&enc);
        }
        out.extend_from_slice(&(self.tombstones.len() as u32).to_be_bytes());
        for (&id, &version) in &self.tombstones {
            out.extend_from_slice(&id.to_be_bytes());
            out.extend_from_slice(&version.to_be_bytes());
        }
        out
    }

    /// Folds a peer's snapshot into this view. Returns true when
    /// anything changed. Descriptors that fail verification and stale
    /// versions are skipped (a malicious or lagging peer cannot regress
    /// the view); the view version becomes the max of the two.
    pub fn merge_snapshot(&mut self, bytes: &[u8]) -> Result<bool> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != SNAP_MAGIC {
            return Err(Error::Protocol("bad snapshot magic".into()));
        }
        let their_version = r.u64()?;
        let receiver_len = r.u16()? as usize;
        let _receiver = r.take(receiver_len)?;
        let member_count = r.u32()? as usize;
        let mut incoming = Vec::with_capacity(member_count.min(1024));
        for _ in 0..member_count {
            let len = r.u32()? as usize;
            incoming.push(SignedDescriptor::decode(r.take(len)?)?);
        }
        let tombstone_count = r.u32()? as usize;
        let mut tombstones = Vec::with_capacity(tombstone_count.min(1024));
        for _ in 0..tombstone_count {
            tombstones.push((r.u64()?, r.u64()?));
        }
        r.finish()?;

        let mut changed = false;
        for (id, dead) in tombstones {
            let newer = self.tombstones.get(&id).is_none_or(|&have| dead > have);
            if newer {
                self.tombstones.insert(id, dead);
                changed = true;
            }
            let buried = self
                .members
                .get(&id)
                .is_some_and(|live| live.descriptor.version <= dead);
            if buried {
                self.members.remove(&id);
                self.push_event(id, MembershipChange::Left);
                changed = true;
            }
        }
        for signed in incoming {
            if !signed.verify(&self.net_seed) {
                continue;
            }
            let id = signed.descriptor.id;
            let version = signed.descriptor.version;
            let dead = self.tombstones.get(&id).is_some_and(|&t| version <= t);
            let stale = self
                .members
                .get(&id)
                .is_some_and(|live| version <= live.descriptor.version);
            if dead || stale {
                continue;
            }
            let joined = !self.members.contains_key(&id);
            self.members.insert(id, signed);
            if joined {
                self.push_event(id, MembershipChange::Joined);
            }
            changed = true;
        }
        self.version = self.version.max(their_version);
        // Late events recorded above carry the merged version so replay
        // stays consistent with `events_since`.
        let version = self.version;
        for ev in self.events.iter_mut().rev() {
            if ev.version > version {
                ev.version = version;
            } else {
                break;
            }
        }
        Ok(changed)
    }

    /// Content fingerprint over members and tombstones (not the event
    /// log, which is order-dependent). Two views that gossiped to a
    /// fixed point have equal fingerprints.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut hasher = anonroute_crypto::sha256::Sha256::new();
        for signed in self.members.values() {
            hasher.update(&signed.encode());
        }
        for (&id, &version) in &self.tombstones {
            hasher.update(&id.to_be_bytes());
            hasher.update(&version.to_be_bytes());
        }
        hasher.finalize()
    }

    /// Materializes a routable [`Directory`] from the live members.
    /// Requires dense ids `0..len` (the onion format addresses relays
    /// by directory index); a view made sparse by churn keeps serving
    /// its previous directory — see [`crate::DirectoryCell`].
    pub fn to_directory(&self) -> Result<Directory> {
        let nodes: Vec<NodeInfo> = self
            .members
            .values()
            .map(|signed| NodeInfo {
                id: signed.descriptor.id as usize,
                addr: signed.descriptor.addr,
                public: signed.descriptor.public,
            })
            .collect();
        Directory::new(nodes, self.receiver)
    }
}

/// Encodes bytes as lowercase hex for the line protocol.
pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes the hex produced by [`hex_encode`].
pub(crate) fn hex_decode(text: &str) -> Result<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return Err(Error::Protocol("odd-length hex".into()));
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16);
        let lo = (pair[1] as char).to_digit(16);
        match (hi, lo) {
            (Some(hi), Some(lo)) => out.push(((hi << 4) | lo) as u8),
            _ => return Err(Error::Protocol("bad hex digit".into())),
        }
    }
    Ok(out)
}

/// Shared state behind the authority's accept loop and lease sweeper.
struct AuthorityState {
    view: Mutex<NetworkView>,
    /// Last refresh instant per member, for lease expiry.
    leases: Mutex<HashMap<u64, Instant>>,
    lease: Option<Duration>,
}

/// A directory authority serving the line protocol over TCP.
///
/// Commands (one per line, responses one per line):
///
/// * `PUT <hex signed descriptor>` → `OK <version>` | `ERR <reason>`
/// * `GET <have-version>` → `SNAP <hex snapshot>` | `SAME <version>`
/// * `DOWN <id>` → `OK <version>` (peer-health departure report)
/// * `EVENTS <since-version>` → zero or more
///   `EV <version> <JOIN|LEFT> <id>` lines, then `END <version>`
/// * `PING` → `PONG <version>`
/// * `RECV` → `ADDR <receiver>` (delivery endpoint, for bootstrap)
///
/// With a lease configured, members that don't re-`PUT` (or re-`GET`
/// with their id) within the lease window are tombstoned.
pub struct AuthorityServer {
    addr: SocketAddr,
    state: Arc<AuthorityState>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl AuthorityServer {
    /// Binds `addr` and serves the authority protocol for the network
    /// identified by `net_seed`, delivering to `receiver`. `lease` of
    /// `None` disables expiry.
    pub fn spawn(
        addr: &str,
        net_seed: &[u8],
        receiver: SocketAddr,
        lease: Option<Duration>,
    ) -> Result<AuthorityServer> {
        let listener = TcpListener::bind(addr).map_err(|e| {
            Error::Config(format!("directory authority failed to bind {addr}: {e}"))
        })?;
        let local = listener.local_addr().map_err(Error::Io)?;
        let state = Arc::new(AuthorityState {
            view: Mutex::new(NetworkView::new(net_seed, receiver)),
            leases: Mutex::new(HashMap::new()),
            lease,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let io_timeout = Duration::from_millis(50);

        let accept = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                let (done_tx, _done_rx) = mpsc::channel();
                let result = workers::accept_loop(
                    listener,
                    &shutdown,
                    io_timeout,
                    "directory authority",
                    None,
                    |stream, _conn| {
                        let state = Arc::clone(&state);
                        let guard = DoneGuard(done_tx.clone());
                        thread::spawn(move || {
                            let _guard = guard;
                            let _ = serve_conn(stream, &state);
                        })
                    },
                );
                if let Err(e) = result {
                    eprintln!("directory authority accept loop: {e}");
                }
            })
        };

        let sweeper = lease.map(|lease| {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                let tick = (lease / 4).max(Duration::from_millis(10));
                while !shutdown.load(Ordering::SeqCst) {
                    thread::sleep(tick);
                    sweep_leases(&state, lease);
                }
            })
        });

        Ok(AuthorityServer {
            addr: local,
            state,
            shutdown,
            accept: Some(accept),
            sweeper,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current view version.
    pub fn version(&self) -> u64 {
        self.state.view.lock().expect("authority view").version()
    }

    /// Sorted live member ids.
    pub fn member_ids(&self) -> Vec<u64> {
        self.state.view.lock().expect("authority view").member_ids()
    }

    /// Membership events strictly after `since`.
    pub fn events_since(&self, since: u64) -> Vec<MembershipEvent> {
        self.state
            .view
            .lock()
            .expect("authority view")
            .events_since(since)
            .to_vec()
    }

    /// Stops accepting, wakes the sweeper, and joins both threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // wake the blocked accept; the connection itself is discarded
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sweeper.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AuthorityServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Tombstones every member whose lease expired.
fn sweep_leases(state: &AuthorityState, lease: Duration) {
    let now = Instant::now();
    let expired: Vec<u64> = {
        let leases = state.leases.lock().expect("authority leases");
        leases
            .iter()
            .filter(|(_, &at)| now.duration_since(at) > lease)
            .map(|(&id, _)| id)
            .collect()
    };
    if expired.is_empty() {
        return;
    }
    let metrics = DirectoryMetrics::global();
    let mut view = state.view.lock().expect("authority view");
    let mut leases = state.leases.lock().expect("authority leases");
    for id in expired {
        if view.member(id).is_some() {
            view.report_down(id);
            metrics.peers_dropped.inc();
        }
        leases.remove(&id);
    }
}

/// Handles one authority connection until EOF.
fn serve_conn(stream: TcpStream, state: &AuthorityState) -> Result<()> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(Error::Io)?;
    let mut writer = stream.try_clone().map_err(Error::Io)?;
    let reader = BufReader::new(stream);
    let metrics = DirectoryMetrics::global();
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let mut reply = String::new();
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("PUT"), Some(hex)) => {
                let outcome = hex_decode(hex)
                    .and_then(|bytes| SignedDescriptor::decode(&bytes))
                    .and_then(|signed| {
                        let id = signed.descriptor.id;
                        let mut view = state.view.lock().expect("authority view");
                        let version = view.publish(signed)?;
                        if state.lease.is_some() {
                            state
                                .leases
                                .lock()
                                .expect("authority leases")
                                .insert(id, Instant::now());
                        }
                        Ok(version)
                    });
                match outcome {
                    Ok(version) => {
                        metrics.publishes.inc();
                        reply = format!("OK {version}\n");
                    }
                    Err(e) => reply = format!("ERR {e}\n"),
                }
            }
            (Some("GET"), Some(have)) => {
                let have: u64 = have.parse().unwrap_or(0);
                let view = state.view.lock().expect("authority view");
                if view.version() > have {
                    metrics.snapshots_served.inc();
                    reply = format!("SNAP {}\n", hex_encode(&view.snapshot()));
                } else {
                    reply = format!("SAME {}\n", view.version());
                }
            }
            (Some("DOWN"), Some(id)) => match id.parse::<u64>() {
                Ok(id) => {
                    let mut view = state.view.lock().expect("authority view");
                    let before = view.version();
                    let version = view.report_down(id);
                    if version != before {
                        metrics.peers_dropped.inc();
                        state.leases.lock().expect("authority leases").remove(&id);
                    }
                    reply = format!("OK {version}\n");
                }
                Err(_) => reply = "ERR bad relay id\n".to_string(),
            },
            (Some("EVENTS"), Some(since)) => {
                let since: u64 = since.parse().unwrap_or(0);
                let view = state.view.lock().expect("authority view");
                for ev in view.events_since(since) {
                    let kind = match ev.kind {
                        MembershipChange::Joined => "JOIN",
                        MembershipChange::Left => "LEFT",
                    };
                    reply.push_str(&format!("EV {} {} {}\n", ev.version, kind, ev.id));
                }
                reply.push_str(&format!("END {}\n", view.version()));
            }
            (Some("PING"), _) => {
                let view = state.view.lock().expect("authority view");
                reply = format!("PONG {}\n", view.version());
            }
            (Some("RECV"), _) => {
                let view = state.view.lock().expect("authority view");
                reply = format!("ADDR {}\n", view.receiver());
            }
            (Some(_), _) => reply = "ERR unknown command\n".to_string(),
            (None, _) => continue,
        }
        if writer.write_all(reply.as_bytes()).is_err() {
            break;
        }
    }
    Ok(())
}

/// Client side of the authority line protocol. Opens one connection
/// per call — the protocol is request/response and calls are rare
/// (publish on boot, periodic refresh).
#[derive(Debug, Clone)]
pub struct AuthorityClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl AuthorityClient {
    /// A client for the authority at `addr`.
    pub fn new(addr: SocketAddr) -> AuthorityClient {
        AuthorityClient {
            addr,
            timeout: Duration::from_secs(5),
        }
    }

    fn call(&self, request: &str) -> Result<Vec<String>> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout).map_err(|e| {
            Error::Config(format!(
                "cannot reach directory authority at {}: {e}",
                self.addr
            ))
        })?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(Error::Io)?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(Error::Io)?;
        let mut writer = stream.try_clone().map_err(Error::Io)?;
        writer
            .write_all(format!("{request}\n").as_bytes())
            .map_err(Error::Io)?;
        let _ = writer.flush();
        let mut reader = BufReader::new(stream);
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).map_err(Error::Io)?;
            if n == 0 {
                break;
            }
            let line = line.trim_end().to_string();
            let terminal = !line.starts_with("EV ");
            lines.push(line);
            if terminal {
                break;
            }
        }
        if lines.is_empty() {
            return Err(Error::Protocol("authority closed without replying".into()));
        }
        Ok(lines)
    }

    fn expect_version(&self, request: &str, ok: &str) -> Result<u64> {
        let lines = self.call(request)?;
        let line = &lines[lines.len() - 1];
        match line.split_once(' ') {
            Some((word, rest)) if word == ok => rest
                .parse()
                .map_err(|_| Error::Protocol(format!("bad authority reply: {line}"))),
            _ => Err(Error::Protocol(format!("authority replied: {line}"))),
        }
    }

    /// Publishes a signed descriptor; returns the new view version.
    pub fn publish(&self, signed: &SignedDescriptor) -> Result<u64> {
        self.expect_version(&format!("PUT {}", hex_encode(&signed.encode())), "OK")
    }

    /// Fetches a snapshot newer than `have`, or `None` when the
    /// authority has nothing newer.
    pub fn fetch(&self, have: u64) -> Result<Option<Vec<u8>>> {
        let lines = self.call(&format!("GET {have}"))?;
        let line = &lines[lines.len() - 1];
        match line.split_once(' ') {
            Some(("SNAP", hex)) => Ok(Some(hex_decode(hex)?)),
            Some(("SAME", _)) => Ok(None),
            _ => Err(Error::Protocol(format!("authority replied: {line}"))),
        }
    }

    /// Reports `id` as unreachable; returns the view version.
    pub fn report_down(&self, id: u64) -> Result<u64> {
        self.expect_version(&format!("DOWN {id}"), "OK")
    }

    /// Current authority view version.
    pub fn ping(&self) -> Result<u64> {
        self.expect_version("PING", "PONG")
    }

    /// The network's delivery endpoint. Lets a joining relay bootstrap
    /// a [`NetworkView`] before any snapshot exists to fetch.
    pub fn receiver(&self) -> Result<SocketAddr> {
        let lines = self.call("RECV")?;
        let line = &lines[lines.len() - 1];
        match line.split_once(' ') {
            Some(("ADDR", addr)) => addr
                .parse()
                .map_err(|_| Error::Protocol(format!("bad authority reply: {line}"))),
            _ => Err(Error::Protocol(format!("authority replied: {line}"))),
        }
    }

    /// Membership events after `since`, plus the current view version.
    pub fn events(&self, since: u64) -> Result<(Vec<MembershipEvent>, u64)> {
        let lines = self.call(&format!("EVENTS {since}"))?;
        let mut events = Vec::new();
        let mut version = 0;
        for line in &lines {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some("EV"), Some(v), Some(kind), Some(id)) => {
                    let kind = match kind {
                        "JOIN" => MembershipChange::Joined,
                        "LEFT" => MembershipChange::Left,
                        _ => return Err(Error::Protocol(format!("bad event line: {line}"))),
                    };
                    events.push(MembershipEvent {
                        version: v
                            .parse()
                            .map_err(|_| Error::Protocol(format!("bad event line: {line}")))?,
                        id: id
                            .parse()
                            .map_err(|_| Error::Protocol(format!("bad event line: {line}")))?,
                        kind,
                    });
                }
                (Some("END"), Some(v), _, _) => {
                    version = v
                        .parse()
                        .map_err(|_| Error::Protocol(format!("bad end line: {line}")))?;
                }
                _ => return Err(Error::Protocol(format!("authority replied: {line}"))),
            }
        }
        Ok((events, version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().expect("addr")
    }

    fn signed(net_seed: &[u8], id: u64, version: u64) -> SignedDescriptor {
        RelayDescriptor::derive(net_seed, id, addr(9000 + id as u16), version).sign(net_seed)
    }

    #[test]
    fn descriptors_roundtrip_and_verify() {
        let sd = signed(b"seed", 3, 7);
        let decoded = SignedDescriptor::decode(&sd.encode()).expect("decode");
        assert_eq!(decoded, sd);
        assert!(decoded.verify(b"seed"));
        assert!(!decoded.verify(b"other-seed"));
    }

    #[test]
    fn views_reject_stale_and_unsigned_descriptors() {
        let mut view = NetworkView::new(b"seed", addr(8999));
        view.publish(signed(b"seed", 0, 2)).expect("publish");
        let stale = view.publish(signed(b"seed", 0, 2));
        assert!(stale.is_err(), "equal version must be stale");
        let forged = view.publish(signed(b"evil", 1, 1));
        assert!(forged.is_err(), "wrong-seed signature must be rejected");
        view.publish(signed(b"seed", 0, 3)).expect("newer version");
        assert_eq!(view.member_ids(), vec![0]);
    }

    #[test]
    fn leaves_tombstone_and_block_stale_rejoins() {
        let mut view = NetworkView::new(b"seed", addr(8999));
        view.publish(signed(b"seed", 0, 1)).expect("join");
        let mut leave = RelayDescriptor::derive(b"seed", 0, addr(9000), 2);
        leave.leaving = true;
        view.publish(leave.sign(b"seed")).expect("leave");
        assert!(view.is_empty());
        assert!(view.publish(signed(b"seed", 0, 2)).is_err(), "tombstoned");
        view.publish(signed(b"seed", 0, 3))
            .expect("rejoin at newer");
        assert_eq!(view.member_ids(), vec![0]);
        let kinds: Vec<MembershipChange> = view.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                MembershipChange::Joined,
                MembershipChange::Left,
                MembershipChange::Joined
            ]
        );
    }

    #[test]
    fn merge_is_idempotent_and_converges() {
        let mut a = NetworkView::new(b"seed", addr(8999));
        let mut b = NetworkView::new(b"seed", addr(8999));
        a.publish(signed(b"seed", 0, 1)).expect("a0");
        a.publish(signed(b"seed", 1, 1)).expect("a1");
        b.publish(signed(b"seed", 2, 1)).expect("b2");
        b.report_down(2);
        b.publish(signed(b"seed", 3, 1)).expect("b3");

        let snap_a = a.snapshot();
        let snap_b = b.snapshot();
        a.merge_snapshot(&snap_b).expect("merge b into a");
        b.merge_snapshot(&snap_a).expect("merge a into b");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.member_ids(), vec![0, 1, 3]);
        let again = a.merge_snapshot(&b.snapshot()).expect("re-merge");
        assert!(!again, "idempotent merge must report no change");
    }

    #[test]
    fn authority_serves_put_get_down_events() {
        let receiver = addr(8999);
        let server = AuthorityServer::spawn("127.0.0.1:0", b"seed", receiver, None).expect("spawn");
        let client = AuthorityClient::new(server.addr());
        assert_eq!(client.ping().expect("ping"), 0);
        assert_eq!(
            client.receiver().expect("receiver"),
            receiver,
            "RECV must work before any member joins"
        );
        for id in 0..3 {
            client.publish(&signed(b"seed", id, 1)).expect("publish");
        }
        let snapshot = client.fetch(0).expect("fetch").expect("some");
        let mut view = NetworkView::new(b"seed", receiver);
        view.merge_snapshot(&snapshot).expect("merge");
        assert_eq!(view.member_ids(), vec![0, 1, 2]);
        assert!(client.fetch(view.version()).expect("same").is_none());

        let version = client.report_down(1).expect("down");
        assert_eq!(version, 4);
        let (events, at) = client.events(3).expect("events");
        assert_eq!(at, 4);
        assert_eq!(
            events,
            vec![MembershipEvent {
                version: 4,
                id: 1,
                kind: MembershipChange::Left
            }]
        );
        assert_eq!(server.member_ids(), vec![0, 2]);
        server.shutdown();
    }

    #[test]
    fn leases_expire_silent_members() {
        let server = AuthorityServer::spawn(
            "127.0.0.1:0",
            b"seed",
            addr(8999),
            Some(Duration::from_millis(60)),
        )
        .expect("spawn");
        let client = AuthorityClient::new(server.addr());
        client.publish(&signed(b"seed", 0, 1)).expect("publish");
        client.publish(&signed(b"seed", 1, 1)).expect("publish");
        let deadline = Instant::now() + Duration::from_secs(5);
        // keep relay 0 alive with fresh versions; let relay 1 lapse
        loop {
            if server.member_ids() == vec![0] || Instant::now() > deadline {
                break;
            }
            let next = server.version() + 10;
            let _ = client.publish(&signed(b"seed", 0, next));
            thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(server.member_ids(), vec![0], "silent member must expire");
        server.shutdown();
    }

    #[test]
    fn replaying_events_reconstructs_membership() {
        let mut view = NetworkView::new(b"seed", addr(8999));
        for id in 0..4 {
            view.publish(signed(b"seed", id, 1)).expect("join");
        }
        let full = view.version();
        view.report_down(2);
        let after = view.version();
        assert_eq!(active_at(view.events(), full), vec![0, 1, 2, 3]);
        assert_eq!(active_at(view.events(), after), vec![0, 1, 3]);
    }

    #[test]
    fn hex_roundtrips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).expect("decode"), bytes);
        assert!(hex_decode("0g").is_err());
        assert!(hex_decode("abc").is_err());
    }
}
