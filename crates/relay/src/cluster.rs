//! The in-process cluster harness: N relays on loopback, seeded traffic,
//! and a ground-truth link tap.
//!
//! [`run_cluster`] is the live-network analogue of one
//! [`anonroute_sim::Simulation`] run: it binds every relay on a
//! `127.0.0.1` ephemeral port, builds the [`Directory`] from the bound
//! addresses, drives a schedule of [`Arrival`]s (from the
//! [`anonroute_sim::traffic`] generators) through a circuit-building
//! [`Client`], and returns the tap's [`TransferRecord`] trace plus the
//! receiver's deliveries — the exact inputs
//! `anonroute_adversary::attack_trace` consumes, so the measured
//! anonymity degree of live TCP traffic can be checked against
//! `anonroute-core`'s analytic prediction.
//!
//! Route sampling, handshake ephemerals, nonces, and payload junk all
//! derive from the cluster seed, so the *observations* (and therefore the
//! measured anonymity degree) are deterministic per seed even though TCP
//! scheduling is not.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use anonroute_core::{PathKind, PathLengthDist};
use anonroute_crypto::handshake::NodeIdentity;
use anonroute_sim::traffic::Arrival;
use anonroute_sim::{Delivery, MsgId, Origination, TransferRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::budget::{BudgetPermit, ClusterBudget};
use crate::circuit::DEFAULT_CELL_SIZE;
use crate::client::Client;
use crate::daemon::{PendingRelay, Relay, RelayConfig, RelayStats};
use crate::directory::{Directory, NodeInfo};
use crate::error::{Error, Result};
use crate::obs::{ClusterMetrics, Phase, PhaseCell};
use crate::receiver::ReceiverServer;
use crate::tap::LinkTap;

/// Configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of member relays.
    pub n: usize,
    /// Path-length strategy the client samples circuits from.
    pub dist: PathLengthDist,
    /// Path kind (simple or cyclic routes).
    pub path_kind: PathKind,
    /// Fixed relay-cell size in bytes.
    pub cell_size: usize,
    /// Master seed: identities, routes, ephemerals, nonces, junk.
    pub seed: u64,
    /// Epoch number for multi-round runs. Relay *identities* depend only
    /// on `seed`, while circuit material (routes, handshake ephemerals,
    /// nonces) and cover junk mix the epoch in — so consecutive epochs
    /// re-key every circuit over the same cluster. Epoch `0` reproduces
    /// the pre-dynamics single-round streams exactly.
    pub epoch: u64,
    /// Socket read timeout (shutdown-poll granularity).
    pub io_timeout: Duration,
    /// How long to await full delivery after the last origination.
    pub deliver_timeout: Duration,
    /// Per-component bound when winding the cluster down.
    pub join_timeout: Duration,
}

impl ClusterConfig {
    /// A config with workable defaults for loopback testing.
    pub fn new(n: usize, dist: PathLengthDist) -> Self {
        ClusterConfig {
            n,
            dist,
            path_kind: PathKind::Simple,
            cell_size: DEFAULT_CELL_SIZE,
            seed: 7,
            epoch: 0,
            io_timeout: Duration::from_millis(50),
            deliver_timeout: Duration::from_secs(30),
            join_timeout: Duration::from_secs(10),
        }
    }

    /// Relay slots this cluster costs against a
    /// [`ClusterBudget`](crate::budget::ClusterBudget): one per member
    /// relay plus one for the receiver server. The single source of
    /// truth for slot accounting — every budgeted caller must use it.
    pub fn budget_slots(&self) -> usize {
        self.n + 1
    }
}

/// Everything a cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Ground-truth per-link trace from the observation tap — feed it to
    /// `anonroute_adversary::Adversary` to reconstruct observations.
    pub trace: Vec<TransferRecord>,
    /// Payloads the receiver collected, in arrival order.
    pub deliveries: Vec<Delivery>,
    /// Ground-truth senders, in origination order (scoring only).
    pub originations: Vec<Origination>,
    /// Per-relay traffic counters, indexed by member id.
    pub stats: Vec<RelayStats>,
    /// Wall-clock from first bind to all daemons serving, in
    /// microseconds. Operator profile only — nondeterministic, never fed
    /// back into evaluation.
    pub boot_micros: u64,
    /// Wall-clock from the first handshake to full delivery at the
    /// receiver, in microseconds (same caveat).
    pub traffic_micros: u64,
}

/// Derives the deterministic identity provisioning seed of a cluster.
fn net_seed(seed: u64) -> Vec<u8> {
    let mut s = b"anonroute-cluster-v1".to_vec();
    s.extend_from_slice(&seed.to_be_bytes());
    s
}

/// The static identity of member `id` in a cluster seeded `seed`.
pub fn cluster_identity(seed: u64, id: usize) -> NodeIdentity {
    NodeIdentity::derive(&net_seed(seed), id as u64)
}

/// [`run_cluster`] gated by a [`ClusterBudget`](crate::budget::ClusterBudget):
/// blocks until `budget` has [`ClusterConfig::budget_slots`] free relay
/// slots (members plus the receiver server), then runs the cluster while
/// holding them — the headless per-cell entry point for sweeps that
/// evaluate many live clusters concurrently.
///
/// # Errors
///
/// Exactly those of [`run_cluster`].
pub fn run_cluster_with_budget(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    budget: &crate::budget::ClusterBudget,
) -> Result<ClusterOutcome> {
    run_cluster_budgeted_unless(
        config,
        arrivals,
        budget,
        &std::sync::atomic::AtomicBool::new(false),
    )
    .expect("a false abandonment flag never cancels the run")
}

/// The cancellable form of [`run_cluster_with_budget`]: after the
/// (possibly long) wait for budget slots, gives up and returns `None`
/// without booting anything if `abandoned` was set in the meantime —
/// the hook sweep watchdogs use so a cell that timed out while queued
/// doesn't burn slots on a cluster run nobody will read. This is the
/// single slot-accounting path; every budgeted run goes through it.
pub fn run_cluster_budgeted_unless(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    budget: &crate::budget::ClusterBudget,
    abandoned: &std::sync::atomic::AtomicBool,
) -> Option<Result<ClusterOutcome>> {
    run_cluster_budgeted_observed(config, arrivals, budget, abandoned, &PhaseCell::new())
}

/// [`run_cluster_budgeted_unless`] with a shared [`PhaseCell`] the run
/// keeps current — the observable form sweep watchdogs use to report
/// *where* a timed-out cell was (queued on the budget vs booting vs
/// handshaking vs passing traffic) instead of just that it wedged.
pub fn run_cluster_budgeted_observed(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    budget: &crate::budget::ClusterBudget,
    abandoned: &std::sync::atomic::AtomicBool,
    phase: &PhaseCell,
) -> Option<Result<ClusterOutcome>> {
    phase.set(Phase::Queued);
    let _permit = budget.acquire(config.budget_slots());
    if abandoned.load(std::sync::atomic::Ordering::SeqCst) {
        return None;
    }
    Some(run_cluster_observed(config, arrivals, phase))
}

/// Runs `arrivals` through a fresh loopback cluster and drains it.
///
/// # Errors
///
/// [`Error::Config`] on invalid parameters, [`Error::Timeout`] when not
/// every message was delivered within the deadline (loopback TCP is
/// lossless — this indicates a wedged relay), [`Error::WorkerPanic`]
/// when any relay/receiver thread panicked, and I/O or strategy errors
/// from setup.
pub fn run_cluster(config: &ClusterConfig, arrivals: &[Arrival]) -> Result<ClusterOutcome> {
    run_cluster_observed(config, arrivals, &PhaseCell::new())
}

/// [`run_cluster`] keeping `phase` current as the run advances through
/// its lifecycle, and feeding the process-wide
/// [`ClusterMetrics`] aggregates. Metrics
/// are write-only sinks: nothing the run computes depends on them, so
/// observed and unobserved runs produce identical outcomes per seed.
///
/// # Errors
///
/// Exactly those of [`run_cluster`].
pub fn run_cluster_observed(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    phase: &PhaseCell,
) -> Result<ClusterOutcome> {
    let metrics = ClusterMetrics::global();
    let result = run_cluster_inner(config, arrivals, phase, metrics);
    match &result {
        Ok(outcome) => metrics.record_run(true, &outcome.stats),
        Err(_) => metrics.record_run(false, &[]),
    }
    phase.set(Phase::Done);
    result
}

fn run_cluster_inner(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    phase: &PhaseCell,
    metrics: &ClusterMetrics,
) -> Result<ClusterOutcome> {
    if config.n == 0 {
        return Err(Error::Config("a cluster needs at least one relay".into()));
    }
    for arrival in arrivals {
        if arrival.sender >= config.n {
            return Err(Error::Config(format!(
                "arrival sender {} out of range (n={})",
                arrival.sender, config.n
            )));
        }
    }
    phase.set(Phase::Boot);
    let boot_start = Instant::now();
    let boot_span = anonroute_obs::span_with("cluster.boot", "relay", &[("epoch", config.epoch)]);
    let tap = LinkTap::new();
    let receiver = ReceiverServer::spawn(tap.clone(), config.io_timeout)?;
    let relay_cfg = RelayConfig {
        cell_size: config.cell_size,
        io_timeout: config.io_timeout,
        ..RelayConfig::default()
    };

    // bind every listener first so the directory can carry real ports
    let mut pending: Vec<PendingRelay> = Vec::with_capacity(config.n);
    for id in 0..config.n {
        match PendingRelay::bind(id, cluster_identity(config.seed, id), relay_cfg) {
            Ok(p) => pending.push(p),
            Err(e) => {
                let _ = receiver.join(config.join_timeout);
                return Err(e);
            }
        }
    }
    let nodes: Vec<NodeInfo> = pending
        .iter()
        .map(|p| NodeInfo {
            id: p.id(),
            addr: p.addr(),
            public: p.public(),
        })
        .collect();
    let directory = match Directory::new(nodes, receiver.addr()) {
        Ok(d) => Arc::new(d),
        Err(e) => {
            let _ = receiver.join(config.join_timeout);
            return Err(e);
        }
    };
    let relays: Vec<Relay> = pending
        .into_iter()
        .map(|p| {
            let junk_seed = config
                .seed
                .wrapping_add(config.epoch.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
                .wrapping_add((p.id() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            p.serve(Arc::clone(&directory), tap.clone(), junk_seed)
        })
        .collect();
    metrics.boots.inc();
    metrics
        .boot_seconds
        .observe(boot_start.elapsed().as_secs_f64());
    let boot_micros = boot_start.elapsed().as_micros() as u64;
    drop(boot_span);

    // drive the workload; the client drops (closing its connections) as
    // soon as the last cell is on the wire. The first send is where
    // onion handshakes can first fail, so it gets its own phase.
    phase.set(Phase::Handshake);
    let traffic_start = Instant::now();
    let traffic_span =
        anonroute_obs::span_with("cluster.traffic", "relay", &[("epoch", config.epoch)]);
    let send_result = (|| -> Result<Vec<Origination>> {
        let mut client = Client::new(
            Arc::clone(&directory),
            config.dist.clone(),
            config.path_kind,
            config.cell_size,
            Some(tap.clone()),
        )?;
        // epoch 0 leaves the stream untouched; later epochs re-key every
        // circuit built over the same relay identities
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ 0x517E_C0DE_5EED_0001 ^ config.epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut originations = Vec::with_capacity(arrivals.len());
        for (i, arrival) in arrivals.iter().enumerate() {
            let msg = MsgId(i as u64);
            originations.push(Origination {
                time: tap.now(),
                sender: arrival.sender,
                msg,
            });
            client.send(arrival.sender, msg, &arrival.payload, &mut rng)?;
            if i == 0 {
                phase.set(Phase::Traffic);
            }
        }
        Ok(originations)
    })();

    let all_arrived = match &send_result {
        Ok(_) => {
            phase.set(Phase::Drain);
            receiver.wait_for(arrivals.len(), config.deliver_timeout)
        }
        Err(_) => false,
    };
    let traffic_micros = traffic_start.elapsed().as_micros() as u64;
    drop(traffic_span);

    // teardown is unconditional and bounded; keep the first error seen
    phase.set(Phase::Teardown);
    let _teardown_span =
        anonroute_obs::span_with("cluster.teardown", "relay", &[("epoch", config.epoch)]);
    let mut stats = Vec::with_capacity(config.n);
    let mut teardown_err: Option<Error> = None;
    for relay in relays {
        match relay.join(config.join_timeout) {
            Ok(s) => stats.push(s),
            Err(e) => {
                stats.push(RelayStats::default());
                teardown_err.get_or_insert(e);
            }
        }
    }
    let deliveries = match receiver.join(config.join_timeout) {
        Ok(d) => d,
        Err(e) => {
            teardown_err.get_or_insert(e);
            Vec::new()
        }
    };

    let originations = send_result?;
    if let Some(e) = teardown_err {
        return Err(e);
    }
    if !all_arrived {
        return Err(Error::Timeout(format!(
            "only {} of {} messages delivered within {:?}",
            deliveries.len(),
            arrivals.len(),
            config.deliver_timeout
        )));
    }
    Ok(ClusterOutcome {
        trace: tap.snapshot(),
        deliveries,
        originations,
        stats,
        boot_micros,
        traffic_micros,
    })
}

/// Parameters of one evaluation cell run against a [`SharedCluster`].
///
/// A cell is the shared analogue of one [`run_cluster`] call: it picks a
/// sub-network size, a path-length strategy, and a seed, but reuses the
/// already-booted relays instead of binding fresh ones. The cell's
/// `seed`/`epoch` drive *circuit material only* (routes, handshake
/// ephemerals, nonces) — relay identities stay those of the shared
/// cluster — which is exactly the property that keeps cell observations
/// byte-identical to a fresh cluster run with the same parameters: trace
/// shape depends on the sampled routes, never on which long-lived
/// identity sits at a directory index.
#[derive(Debug, Clone)]
pub struct SharedCellSpec {
    /// Sub-network size: the cell routes over the first `n` members of
    /// the shared cluster (directory indices agree between the prefix
    /// view and the relays' full view, so forwarding needs no remap).
    pub n: usize,
    /// Path-length strategy the cell's client samples circuits from.
    pub dist: PathLengthDist,
    /// Path kind (simple or cyclic routes).
    pub path_kind: PathKind,
    /// Per-cell seed for routes, ephemerals, and nonces.
    pub seed: u64,
    /// Epoch number mixed into the circuit-material stream.
    pub epoch: u64,
    /// How long to await full delivery after the last origination.
    pub deliver_timeout: Duration,
}

/// A long-running loopback cluster that many evaluation cells attach to.
///
/// [`run_cluster`] boots and tears down the whole network per call — the
/// right contract for one-shot determinism, but a sweep with dozens of
/// live cells pays the bind/handshake/teardown tax dozens of times.
/// `SharedCluster` boots once (one `anonroute_cluster_boots_total`
/// increment, one budget acquisition held for its lifetime) and lets each
/// cell re-key circuits over the standing relays via [`run_cell`].
///
/// Message-id ranges are allocated disjointly per cell, so concurrent
/// cells share the receiver and the link tap without mixing traffic; each
/// cell's outcome is sliced out of the global streams and remapped to
///0-based ids, matching the shape a fresh cluster would have produced.
///
/// [`run_cell`]: SharedCluster::run_cell
#[derive(Debug)]
pub struct SharedCluster {
    config: ClusterConfig,
    nodes: Vec<NodeInfo>,
    directory: Arc<Directory>,
    relays: Mutex<Vec<Option<Relay>>>,
    receiver: Option<ReceiverServer>,
    tap: LinkTap,
    next_msg: Mutex<u64>,
    boot_micros: u64,
    _permit: Option<BudgetPermit<'static>>,
}

impl SharedCluster {
    /// Boots the shared network against the process-wide
    /// [`ClusterBudget::global`], holding
    /// [`ClusterConfig::budget_slots`] until shutdown.
    ///
    /// # Errors
    ///
    /// Exactly those of [`SharedCluster::boot_with_budget`].
    pub fn boot(config: &ClusterConfig) -> Result<SharedCluster> {
        Self::boot_with_budget(config, ClusterBudget::global())
    }

    /// Boots the shared network, first acquiring
    /// [`ClusterConfig::budget_slots`] from `budget`. The permit is held
    /// for the cluster's whole lifetime — cells cost nothing extra.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] on invalid parameters, plus I/O errors from
    /// binding relays or the receiver.
    pub fn boot_with_budget(
        config: &ClusterConfig,
        budget: &'static ClusterBudget,
    ) -> Result<SharedCluster> {
        let permit = budget.acquire(config.budget_slots());
        Self::boot_inner(config, Some(permit))
    }

    fn boot_inner(
        config: &ClusterConfig,
        permit: Option<BudgetPermit<'static>>,
    ) -> Result<SharedCluster> {
        if config.n == 0 {
            return Err(Error::Config("a cluster needs at least one relay".into()));
        }
        let metrics = ClusterMetrics::global();
        let boot_start = Instant::now();
        let boot_span = anonroute_obs::span_with(
            "cluster.boot",
            "relay",
            &[("shared", 1), ("n", config.n as u64)],
        );
        let tap = LinkTap::new();
        let receiver = ReceiverServer::spawn(tap.clone(), config.io_timeout)?;
        let relay_cfg = RelayConfig {
            cell_size: config.cell_size,
            io_timeout: config.io_timeout,
            ..RelayConfig::default()
        };
        let mut pending: Vec<PendingRelay> = Vec::with_capacity(config.n);
        for id in 0..config.n {
            match PendingRelay::bind(id, cluster_identity(config.seed, id), relay_cfg) {
                Ok(p) => pending.push(p),
                Err(e) => {
                    let _ = receiver.join(config.join_timeout);
                    return Err(e);
                }
            }
        }
        let nodes: Vec<NodeInfo> = pending
            .iter()
            .map(|p| NodeInfo {
                id: p.id(),
                addr: p.addr(),
                public: p.public(),
            })
            .collect();
        let directory = match Directory::new(nodes.clone(), receiver.addr()) {
            Ok(d) => Arc::new(d),
            Err(e) => {
                let _ = receiver.join(config.join_timeout);
                return Err(e);
            }
        };
        let relays: Vec<Option<Relay>> = pending
            .into_iter()
            .map(|p| {
                let junk_seed = config
                    .seed
                    .wrapping_add(config.epoch.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
                    .wrapping_add((p.id() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                Some(p.serve(Arc::clone(&directory), tap.clone(), junk_seed))
            })
            .collect();
        metrics.boots.inc();
        metrics
            .boot_seconds
            .observe(boot_start.elapsed().as_secs_f64());
        let boot_micros = boot_start.elapsed().as_micros() as u64;
        drop(boot_span);
        Ok(SharedCluster {
            config: config.clone(),
            nodes,
            directory,
            relays: Mutex::new(relays),
            receiver: Some(receiver),
            tap,
            next_msg: Mutex::new(0),
            boot_micros,
            _permit: permit,
        })
    }

    /// Number of member relays the cluster was booted with (relays killed
    /// via [`SharedCluster::kill_relay`] still count toward capacity).
    pub fn n(&self) -> usize {
        self.config.n
    }

    /// The full network map cells over the whole membership route with.
    pub fn directory(&self) -> Arc<Directory> {
        Arc::clone(&self.directory)
    }

    /// Wall-clock microseconds the one-time boot took.
    pub fn boot_micros(&self) -> u64 {
        self.boot_micros
    }

    fn receiver(&self) -> &ReceiverServer {
        self.receiver
            .as_ref()
            .expect("receiver lives until shutdown")
    }

    /// Runs one evaluation cell over the standing network; see
    /// [`SharedCellSpec`] for what a cell controls. Concurrent cells are
    /// safe: message-id ranges are disjoint and each cell slices only its
    /// own records out of the shared streams.
    ///
    /// The returned [`ClusterOutcome`] matches a fresh [`run_cluster`]
    /// with the same parameters except: `boot_micros` is `0` (the boot is
    /// amortized) and `stats` are zeroed (relay counters are cumulative
    /// across cells and only collected at [`SharedCluster::shutdown`]).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] on invalid parameters, [`Error::Timeout`] when
    /// not every message was delivered within the cell's deadline, and
    /// I/O or strategy errors from sending.
    pub fn run_cell(&self, spec: &SharedCellSpec, arrivals: &[Arrival]) -> Result<ClusterOutcome> {
        self.run_cell_observed(spec, arrivals, &PhaseCell::new())
    }

    /// [`SharedCluster::run_cell`] keeping `phase` current (handshake →
    /// traffic → drain → done), for sweep watchdogs.
    ///
    /// # Errors
    ///
    /// Exactly those of [`SharedCluster::run_cell`].
    pub fn run_cell_observed(
        &self,
        spec: &SharedCellSpec,
        arrivals: &[Arrival],
        phase: &PhaseCell,
    ) -> Result<ClusterOutcome> {
        let metrics = ClusterMetrics::global();
        let result = self.run_cell_inner(spec, arrivals, phase);
        metrics.record_run(result.is_ok(), &[]);
        phase.set(Phase::Done);
        result
    }

    fn run_cell_inner(
        &self,
        spec: &SharedCellSpec,
        arrivals: &[Arrival],
        phase: &PhaseCell,
    ) -> Result<ClusterOutcome> {
        if spec.n == 0 {
            return Err(Error::Config("a cell needs at least one relay".into()));
        }
        if spec.n > self.nodes.len() {
            return Err(Error::Config(format!(
                "cell wants n={} but the shared cluster only has {} relays",
                spec.n,
                self.nodes.len()
            )));
        }
        for arrival in arrivals {
            if arrival.sender >= spec.n {
                return Err(Error::Config(format!(
                    "arrival sender {} out of range (n={})",
                    arrival.sender, spec.n
                )));
            }
        }
        // the prefix sub-directory shares indices with the relays' full
        // view, so onions built against it forward without remapping
        let directory = if spec.n == self.nodes.len() {
            Arc::clone(&self.directory)
        } else {
            Arc::new(Directory::new(
                self.nodes[..spec.n].to_vec(),
                self.receiver().addr(),
            )?)
        };
        // reserve a message-id range disjoint from every other cell
        let base = {
            let mut next = self.next_msg.lock().expect("msg-range lock");
            let base = *next;
            *next += arrivals.len() as u64;
            base
        };
        let want = arrivals.len();

        phase.set(Phase::Handshake);
        let traffic_start = Instant::now();
        let traffic_span =
            anonroute_obs::span_with("cluster.traffic", "relay", &[("epoch", spec.epoch)]);
        let send_result = (|| -> Result<Vec<Origination>> {
            let mut client = Client::new(
                directory,
                spec.dist.clone(),
                spec.path_kind,
                self.config.cell_size,
                Some(self.tap.clone()),
            )?;
            // the same stream formula as run_cluster, keyed by the
            // *cell's* seed — shape-identical to a fresh cluster run
            let mut rng = StdRng::seed_from_u64(
                spec.seed ^ 0x517E_C0DE_5EED_0001 ^ spec.epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut originations = Vec::with_capacity(want);
            for (i, arrival) in arrivals.iter().enumerate() {
                let msg = MsgId(base + i as u64);
                originations.push(Origination {
                    time: self.tap.now(),
                    sender: arrival.sender,
                    msg,
                });
                client.send(arrival.sender, msg, &arrival.payload, &mut rng)?;
                if i == 0 {
                    phase.set(Phase::Traffic);
                }
            }
            Ok(originations)
        })();
        let mut originations = send_result?;

        // drain: poll the shared receiver for this cell's range only
        phase.set(Phase::Drain);
        let deadline = Instant::now() + spec.deliver_timeout;
        let in_range = |m: MsgId| m.0 >= base && m.0 < base + want as u64;
        let mut scanned = 0usize;
        let mut deliveries: Vec<Delivery> = Vec::with_capacity(want);
        while deliveries.len() < want {
            let tail = self.receiver().deliveries_since(scanned);
            scanned += tail.len();
            deliveries.extend(tail.into_iter().filter(|d| in_range(d.msg)));
            if deliveries.len() >= want {
                break;
            }
            if Instant::now() >= deadline {
                return Err(Error::Timeout(format!(
                    "only {} of {} messages delivered within {:?}",
                    deliveries.len(),
                    want,
                    spec.deliver_timeout
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let traffic_micros = traffic_start.elapsed().as_micros() as u64;
        drop(traffic_span);

        // slice this cell out of the shared streams and rebase msg ids so
        // the outcome is indistinguishable from a fresh cluster's
        let mut trace: Vec<TransferRecord> = self
            .tap
            .snapshot()
            .into_iter()
            .filter(|r| in_range(r.msg))
            .collect();
        for r in &mut trace {
            r.msg = MsgId(r.msg.0 - base);
        }
        for d in &mut deliveries {
            d.msg = MsgId(d.msg.0 - base);
        }
        for o in &mut originations {
            o.msg = MsgId(o.msg.0 - base);
        }
        Ok(ClusterOutcome {
            trace,
            deliveries,
            originations,
            stats: vec![RelayStats::default(); spec.n],
            boot_micros: 0,
            traffic_micros,
        })
    }

    /// Kills member `id` mid-run: the relay stops serving, its port goes
    /// dead, and subsequent dials to it fail — the real departure signal
    /// the gossip layer's peer-health check and the directory authority's
    /// lease sweeper turn into membership events. Returns the relay's
    /// cumulative traffic counters.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for an unknown or already-killed id; join errors
    /// from the relay's worker threads.
    pub fn kill_relay(&self, id: usize) -> Result<RelayStats> {
        let relay = {
            let mut relays = self.relays.lock().expect("relay roster lock");
            match relays.get_mut(id) {
                Some(slot) => slot
                    .take()
                    .ok_or_else(|| Error::Config(format!("relay {id} was already killed")))?,
                None => {
                    return Err(Error::Config(format!(
                        "relay {id} out of range (n={})",
                        self.config.n
                    )))
                }
            }
        };
        relay.join(self.config.join_timeout)
    }

    /// Winds the whole network down: joins every still-running relay and
    /// the receiver, returning per-relay cumulative traffic counters
    /// (zeroed for relays killed earlier). Releases the budget permit.
    ///
    /// # Errors
    ///
    /// The first join error seen; teardown still proceeds through every
    /// component.
    pub fn shutdown(mut self) -> Result<Vec<RelayStats>> {
        self.wind_down()
    }

    fn wind_down(&mut self) -> Result<Vec<RelayStats>> {
        let mut teardown_err: Option<Error> = None;
        let mut stats = Vec::with_capacity(self.config.n);
        let relays: Vec<Option<Relay>> =
            std::mem::take(&mut *self.relays.lock().expect("relay roster lock"));
        for slot in relays {
            match slot {
                Some(relay) => match relay.join(self.config.join_timeout) {
                    Ok(s) => stats.push(s),
                    Err(e) => {
                        stats.push(RelayStats::default());
                        teardown_err.get_or_insert(e);
                    }
                },
                None => stats.push(RelayStats::default()),
            }
        }
        if let Some(receiver) = self.receiver.take() {
            if let Err(e) = receiver.join(self.config.join_timeout) {
                teardown_err.get_or_insert(e);
            }
        }
        match teardown_err {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }
}

impl Drop for SharedCluster {
    fn drop(&mut self) {
        let _ = self.wind_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_sim::traffic::UniformTraffic;
    use anonroute_sim::Endpoint;

    fn workload(n: usize, count: usize, seed: u64) -> Vec<Arrival> {
        UniformTraffic {
            count,
            interval_us: 0,
            payload_len: 24,
        }
        .generate(n, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn fixed_two_hop_cluster_delivers_everything() {
        let config = ClusterConfig::new(6, PathLengthDist::fixed(2));
        let arrivals = workload(6, 25, 11);
        let outcome = run_cluster(&config, &arrivals).unwrap();

        assert_eq!(outcome.deliveries.len(), 25);
        assert_eq!(outcome.originations.len(), 25);
        // l = 2: sender→x1, x1→x2, x2→receiver per message
        assert_eq!(outcome.trace.len(), 75);
        let relayed: u64 = outcome.stats.iter().map(|s| s.relayed).sum();
        let delivered: u64 = outcome.stats.iter().map(|s| s.delivered).sum();
        let dropped: u64 = outcome.stats.iter().map(|s| s.dropped).sum();
        assert_eq!((relayed, delivered, dropped), (25, 25, 0));

        // payload integrity end to end
        let mut sent: Vec<Vec<u8>> = arrivals.iter().map(|a| a.payload.clone()).collect();
        let mut got: Vec<Vec<u8>> = outcome
            .deliveries
            .iter()
            .map(|d| d.payload.clone())
            .collect();
        sent.sort();
        got.sort();
        assert_eq!(sent, got);

        // every message has exactly one receiver edge
        for o in &outcome.originations {
            let receiver_edges = outcome
                .trace
                .iter()
                .filter(|r| r.msg == o.msg && r.to == Endpoint::Receiver)
                .count();
            assert_eq!(receiver_edges, 1, "{:?}", o.msg);
        }
    }

    #[test]
    fn zero_length_paths_send_directly() {
        let config = ClusterConfig::new(4, PathLengthDist::fixed(0));
        let arrivals = workload(4, 8, 3);
        let outcome = run_cluster(&config, &arrivals).unwrap();
        assert_eq!(outcome.deliveries.len(), 8);
        assert_eq!(outcome.trace.len(), 8);
        for (d, o) in outcome.deliveries.iter().zip(&outcome.originations) {
            // arrival order == origination order on a single direct link
            let _ = o;
            assert!(matches!(d.last_hop, Endpoint::Node(_)));
        }
        let relayed: u64 = outcome.stats.iter().map(|s| s.relayed).sum();
        assert_eq!(relayed, 0, "direct sends never touch a relay");
    }

    #[test]
    fn same_seed_reproduces_the_same_observations() {
        let config = ClusterConfig::new(5, PathLengthDist::uniform(1, 3).unwrap());
        let arrivals = workload(5, 15, 21);
        let a = run_cluster(&config, &arrivals).unwrap();
        let b = run_cluster(&config, &arrivals).unwrap();
        // timestamps differ; the observable structure must not
        let shape = |t: &[TransferRecord]| {
            let mut edges: Vec<(Endpoint, Endpoint, MsgId)> =
                t.iter().map(|r| (r.from, r.to, r.msg)).collect();
            edges.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            edges
        };
        assert_eq!(shape(&a.trace), shape(&b.trace));
    }

    #[test]
    fn epochs_rekey_circuits_but_not_identities() {
        let mut config = ClusterConfig::new(5, PathLengthDist::uniform(1, 3).unwrap());
        config.seed = 13;
        let arrivals = workload(5, 12, 4);
        let shape = |t: &[TransferRecord]| {
            let mut edges: Vec<(Endpoint, Endpoint, MsgId)> =
                t.iter().map(|r| (r.from, r.to, r.msg)).collect();
            edges.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            edges
        };
        let epoch0 = run_cluster(&config, &arrivals).unwrap();
        config.epoch = 1;
        let epoch1 = run_cluster(&config, &arrivals).unwrap();
        // identities derive from the seed only, so both epochs run the
        // same cluster — but the circuit streams must differ
        assert_eq!(
            cluster_identity(13, 2).public(),
            cluster_identity(13, 2).public()
        );
        assert_ne!(
            shape(&epoch0.trace),
            shape(&epoch1.trace),
            "each epoch must re-key and re-route its circuits"
        );
        // ...deterministically: the same epoch reproduces its own shape
        let epoch1_again = run_cluster(&config, &arrivals).unwrap();
        assert_eq!(shape(&epoch1.trace), shape(&epoch1_again.trace));
    }

    #[test]
    fn budgeted_runs_serialize_on_a_tiny_budget() {
        use crate::budget::ClusterBudget;
        // capacity 4 < n + 1 = 5: the request clamps and the cluster
        // still runs to completion (exclusively)
        let budget = ClusterBudget::new(4);
        let config = ClusterConfig::new(4, PathLengthDist::fixed(1));
        let arrivals = workload(4, 6, 2);
        let outcome = run_cluster_with_budget(&config, &arrivals, &budget).unwrap();
        assert_eq!(outcome.deliveries.len(), 6);
        assert_eq!(budget.available(), budget.capacity(), "slots returned");
    }

    #[test]
    fn budget_slots_survive_every_failure_path() {
        use std::sync::atomic::AtomicBool;
        let budget = ClusterBudget::new(3);
        // config error before any boot: repeat more times than the
        // budget has slots so a single leaked permit would wedge the loop
        let bad = ClusterConfig::new(0, PathLengthDist::fixed(1));
        for _ in 0..4 {
            assert!(matches!(
                run_cluster_with_budget(&bad, &[], &budget),
                Err(Error::Config(_))
            ));
            assert_eq!(budget.available(), budget.capacity());
        }
        // traffic error after a successful boot: F(5) over n=2 boots the
        // cluster, then the client rejects the unrealizable strategy
        let unrealizable = ClusterConfig::new(2, PathLengthDist::fixed(5));
        for _ in 0..4 {
            assert!(run_cluster_with_budget(&unrealizable, &workload(2, 1, 1), &budget).is_err());
            assert_eq!(budget.available(), budget.capacity());
        }
        // a cell abandoned while queued boots nothing and returns slots
        let config = ClusterConfig::new(2, PathLengthDist::fixed(1));
        let abandoned = AtomicBool::new(true);
        assert!(
            run_cluster_budgeted_unless(&config, &workload(2, 1, 1), &budget, &abandoned).is_none()
        );
        assert_eq!(budget.available(), budget.capacity());
        // after all that abuse the budget still serves a real run
        let outcome = run_cluster_with_budget(&config, &workload(2, 3, 5), &budget).unwrap();
        assert_eq!(outcome.deliveries.len(), 3);
        assert_eq!(budget.available(), budget.capacity());
    }

    #[test]
    fn invalid_configs_are_rejected_cleanly() {
        let arrivals = workload(4, 2, 1);
        assert!(matches!(
            run_cluster(&ClusterConfig::new(0, PathLengthDist::fixed(1)), &arrivals),
            Err(Error::Config(_))
        ));
        // sender out of range
        let config = ClusterConfig::new(2, PathLengthDist::fixed(1));
        let bad = vec![Arrival {
            at: anonroute_sim::SimTime::ZERO,
            sender: 3,
            payload: vec![1],
        }];
        assert!(matches!(run_cluster(&config, &bad), Err(Error::Config(_))));
        // unrealizable strategy: F(5) needs 5 distinct intermediates of 4
        let config = ClusterConfig::new(4, PathLengthDist::fixed(5));
        assert!(run_cluster(&config, &workload(4, 1, 1)).is_err());
    }

    fn shape(t: &[TransferRecord]) -> Vec<(Endpoint, Endpoint, MsgId)> {
        let mut edges: Vec<(Endpoint, Endpoint, MsgId)> =
            t.iter().map(|r| (r.from, r.to, r.msg)).collect();
        edges.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        edges
    }

    #[test]
    fn shared_cells_match_fresh_cluster_shapes() {
        let budget: &'static ClusterBudget = Box::leak(Box::new(ClusterBudget::new(16)));
        let mut base = ClusterConfig::new(6, PathLengthDist::fixed(2));
        base.seed = 99; // identities differ from the fresh run on purpose
        let shared = SharedCluster::boot_with_budget(&base, budget).unwrap();
        assert_eq!(budget.available(), budget.capacity() - base.budget_slots());

        // a full-width cell and a narrower prefix cell, each checked
        // against a fresh single-shot cluster with the same parameters
        for (n_cell, seed, count) in [(6usize, 21u64, 15usize), (4, 5, 9)] {
            let arrivals = workload(n_cell, count, seed);
            let spec = SharedCellSpec {
                n: n_cell,
                dist: PathLengthDist::fixed(2),
                path_kind: PathKind::Simple,
                seed,
                epoch: 0,
                deliver_timeout: Duration::from_secs(30),
            };
            let cell = shared.run_cell(&spec, &arrivals).unwrap();
            let mut fresh_cfg = ClusterConfig::new(n_cell, PathLengthDist::fixed(2));
            fresh_cfg.seed = seed;
            let fresh = run_cluster(&fresh_cfg, &arrivals).unwrap();
            assert_eq!(shape(&cell.trace), shape(&fresh.trace));
            assert_eq!(cell.deliveries.len(), fresh.deliveries.len());
            assert_eq!(cell.originations.len(), count);
            assert_eq!(cell.boot_micros, 0, "boot is amortized for cells");
        }

        // the same cell twice reproduces its own shape after rebasing
        let arrivals = workload(6, 10, 77);
        let spec = SharedCellSpec {
            n: 6,
            dist: PathLengthDist::uniform(1, 3).unwrap(),
            path_kind: PathKind::Simple,
            seed: 77,
            epoch: 2,
            deliver_timeout: Duration::from_secs(30),
        };
        let once = shared.run_cell(&spec, &arrivals).unwrap();
        let twice = shared.run_cell(&spec, &arrivals).unwrap();
        assert_eq!(shape(&once.trace), shape(&twice.trace));

        let stats = shared.shutdown().unwrap();
        assert_eq!(stats.len(), 6);
        assert!(stats.iter().any(|s| s.relayed > 0));
        assert_eq!(budget.available(), budget.capacity(), "permit released");
    }

    #[test]
    fn killed_relays_leave_the_rest_of_the_network_serving() {
        let mut config = ClusterConfig::new(5, PathLengthDist::fixed(1));
        config.seed = 41;
        let shared = SharedCluster::boot(&config).unwrap();
        let spec = SharedCellSpec {
            n: 4, // prefix cell that never routes through relay 4
            dist: PathLengthDist::fixed(1),
            path_kind: PathKind::Simple,
            seed: 8,
            epoch: 0,
            deliver_timeout: Duration::from_secs(30),
        };
        let before = shared.run_cell(&spec, &workload(4, 6, 1)).unwrap();
        assert_eq!(before.deliveries.len(), 6);

        shared.kill_relay(4).unwrap();
        assert!(matches!(shared.kill_relay(4), Err(Error::Config(_))));
        assert!(matches!(shared.kill_relay(9), Err(Error::Config(_))));

        let after = shared.run_cell(&spec, &workload(4, 6, 2)).unwrap();
        assert_eq!(after.deliveries.len(), 6);
        let stats = shared.shutdown().unwrap();
        assert_eq!(stats.len(), 5);
        assert_eq!(stats[4].relayed, 0, "killed relay reports zeroed stats");
    }

    #[test]
    fn shared_clusters_cross_threads() {
        // sweeps hand &SharedCluster to a rayon pool
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedCluster>();
    }

    #[test]
    fn shared_cells_reject_invalid_specs() {
        let shared = SharedCluster::boot(&ClusterConfig::new(3, PathLengthDist::fixed(1))).unwrap();
        let ok_spec = |n: usize| SharedCellSpec {
            n,
            dist: PathLengthDist::fixed(1),
            path_kind: PathKind::Simple,
            seed: 1,
            epoch: 0,
            deliver_timeout: Duration::from_secs(5),
        };
        assert!(matches!(
            shared.run_cell(&ok_spec(0), &[]),
            Err(Error::Config(_))
        ));
        assert!(matches!(
            shared.run_cell(&ok_spec(4), &[]),
            Err(Error::Config(_))
        ));
        let bad = vec![Arrival {
            at: anonroute_sim::SimTime::ZERO,
            sender: 3,
            payload: vec![1],
        }];
        assert!(matches!(
            shared.run_cell(&ok_spec(3), &bad),
            Err(Error::Config(_))
        ));
        shared.shutdown().unwrap();
    }
}
