//! The in-process cluster harness: N relays on loopback, seeded traffic,
//! and a ground-truth link tap.
//!
//! [`run_cluster`] is the live-network analogue of one
//! [`anonroute_sim::Simulation`] run: it binds every relay on a
//! `127.0.0.1` ephemeral port, builds the [`Directory`] from the bound
//! addresses, drives a schedule of [`Arrival`]s (from the
//! [`anonroute_sim::traffic`] generators) through a circuit-building
//! [`Client`], and returns the tap's [`TransferRecord`] trace plus the
//! receiver's deliveries — the exact inputs
//! `anonroute_adversary::attack_trace` consumes, so the measured
//! anonymity degree of live TCP traffic can be checked against
//! `anonroute-core`'s analytic prediction.
//!
//! Route sampling, handshake ephemerals, nonces, and payload junk all
//! derive from the cluster seed, so the *observations* (and therefore the
//! measured anonymity degree) are deterministic per seed even though TCP
//! scheduling is not.

use std::sync::Arc;
use std::time::{Duration, Instant};

use anonroute_core::{PathKind, PathLengthDist};
use anonroute_crypto::handshake::NodeIdentity;
use anonroute_sim::traffic::Arrival;
use anonroute_sim::{Delivery, MsgId, Origination, TransferRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::circuit::DEFAULT_CELL_SIZE;
use crate::client::Client;
use crate::daemon::{PendingRelay, Relay, RelayConfig, RelayStats};
use crate::directory::{Directory, NodeInfo};
use crate::error::{Error, Result};
use crate::obs::{ClusterMetrics, Phase, PhaseCell};
use crate::receiver::ReceiverServer;
use crate::tap::LinkTap;

/// Configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of member relays.
    pub n: usize,
    /// Path-length strategy the client samples circuits from.
    pub dist: PathLengthDist,
    /// Path kind (simple or cyclic routes).
    pub path_kind: PathKind,
    /// Fixed relay-cell size in bytes.
    pub cell_size: usize,
    /// Master seed: identities, routes, ephemerals, nonces, junk.
    pub seed: u64,
    /// Epoch number for multi-round runs. Relay *identities* depend only
    /// on `seed`, while circuit material (routes, handshake ephemerals,
    /// nonces) and cover junk mix the epoch in — so consecutive epochs
    /// re-key every circuit over the same cluster. Epoch `0` reproduces
    /// the pre-dynamics single-round streams exactly.
    pub epoch: u64,
    /// Socket read timeout (shutdown-poll granularity).
    pub io_timeout: Duration,
    /// How long to await full delivery after the last origination.
    pub deliver_timeout: Duration,
    /// Per-component bound when winding the cluster down.
    pub join_timeout: Duration,
}

impl ClusterConfig {
    /// A config with workable defaults for loopback testing.
    pub fn new(n: usize, dist: PathLengthDist) -> Self {
        ClusterConfig {
            n,
            dist,
            path_kind: PathKind::Simple,
            cell_size: DEFAULT_CELL_SIZE,
            seed: 7,
            epoch: 0,
            io_timeout: Duration::from_millis(50),
            deliver_timeout: Duration::from_secs(30),
            join_timeout: Duration::from_secs(10),
        }
    }

    /// Relay slots this cluster costs against a
    /// [`ClusterBudget`](crate::budget::ClusterBudget): one per member
    /// relay plus one for the receiver server. The single source of
    /// truth for slot accounting — every budgeted caller must use it.
    pub fn budget_slots(&self) -> usize {
        self.n + 1
    }
}

/// Everything a cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Ground-truth per-link trace from the observation tap — feed it to
    /// `anonroute_adversary::Adversary` to reconstruct observations.
    pub trace: Vec<TransferRecord>,
    /// Payloads the receiver collected, in arrival order.
    pub deliveries: Vec<Delivery>,
    /// Ground-truth senders, in origination order (scoring only).
    pub originations: Vec<Origination>,
    /// Per-relay traffic counters, indexed by member id.
    pub stats: Vec<RelayStats>,
    /// Wall-clock from first bind to all daemons serving, in
    /// microseconds. Operator profile only — nondeterministic, never fed
    /// back into evaluation.
    pub boot_micros: u64,
    /// Wall-clock from the first handshake to full delivery at the
    /// receiver, in microseconds (same caveat).
    pub traffic_micros: u64,
}

/// Derives the deterministic identity provisioning seed of a cluster.
fn net_seed(seed: u64) -> Vec<u8> {
    let mut s = b"anonroute-cluster-v1".to_vec();
    s.extend_from_slice(&seed.to_be_bytes());
    s
}

/// The static identity of member `id` in a cluster seeded `seed`.
pub fn cluster_identity(seed: u64, id: usize) -> NodeIdentity {
    NodeIdentity::derive(&net_seed(seed), id as u64)
}

/// [`run_cluster`] gated by a [`ClusterBudget`](crate::budget::ClusterBudget):
/// blocks until `budget` has [`ClusterConfig::budget_slots`] free relay
/// slots (members plus the receiver server), then runs the cluster while
/// holding them — the headless per-cell entry point for sweeps that
/// evaluate many live clusters concurrently.
///
/// # Errors
///
/// Exactly those of [`run_cluster`].
pub fn run_cluster_with_budget(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    budget: &crate::budget::ClusterBudget,
) -> Result<ClusterOutcome> {
    run_cluster_budgeted_unless(
        config,
        arrivals,
        budget,
        &std::sync::atomic::AtomicBool::new(false),
    )
    .expect("a false abandonment flag never cancels the run")
}

/// The cancellable form of [`run_cluster_with_budget`]: after the
/// (possibly long) wait for budget slots, gives up and returns `None`
/// without booting anything if `abandoned` was set in the meantime —
/// the hook sweep watchdogs use so a cell that timed out while queued
/// doesn't burn slots on a cluster run nobody will read. This is the
/// single slot-accounting path; every budgeted run goes through it.
pub fn run_cluster_budgeted_unless(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    budget: &crate::budget::ClusterBudget,
    abandoned: &std::sync::atomic::AtomicBool,
) -> Option<Result<ClusterOutcome>> {
    run_cluster_budgeted_observed(config, arrivals, budget, abandoned, &PhaseCell::new())
}

/// [`run_cluster_budgeted_unless`] with a shared [`PhaseCell`] the run
/// keeps current — the observable form sweep watchdogs use to report
/// *where* a timed-out cell was (queued on the budget vs booting vs
/// handshaking vs passing traffic) instead of just that it wedged.
pub fn run_cluster_budgeted_observed(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    budget: &crate::budget::ClusterBudget,
    abandoned: &std::sync::atomic::AtomicBool,
    phase: &PhaseCell,
) -> Option<Result<ClusterOutcome>> {
    phase.set(Phase::Queued);
    let _permit = budget.acquire(config.budget_slots());
    if abandoned.load(std::sync::atomic::Ordering::SeqCst) {
        return None;
    }
    Some(run_cluster_observed(config, arrivals, phase))
}

/// Runs `arrivals` through a fresh loopback cluster and drains it.
///
/// # Errors
///
/// [`Error::Config`] on invalid parameters, [`Error::Timeout`] when not
/// every message was delivered within the deadline (loopback TCP is
/// lossless — this indicates a wedged relay), [`Error::WorkerPanic`]
/// when any relay/receiver thread panicked, and I/O or strategy errors
/// from setup.
pub fn run_cluster(config: &ClusterConfig, arrivals: &[Arrival]) -> Result<ClusterOutcome> {
    run_cluster_observed(config, arrivals, &PhaseCell::new())
}

/// [`run_cluster`] keeping `phase` current as the run advances through
/// its lifecycle, and feeding the process-wide
/// [`ClusterMetrics`] aggregates. Metrics
/// are write-only sinks: nothing the run computes depends on them, so
/// observed and unobserved runs produce identical outcomes per seed.
///
/// # Errors
///
/// Exactly those of [`run_cluster`].
pub fn run_cluster_observed(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    phase: &PhaseCell,
) -> Result<ClusterOutcome> {
    let metrics = ClusterMetrics::global();
    let result = run_cluster_inner(config, arrivals, phase, metrics);
    match &result {
        Ok(outcome) => metrics.record_run(true, &outcome.stats),
        Err(_) => metrics.record_run(false, &[]),
    }
    phase.set(Phase::Done);
    result
}

fn run_cluster_inner(
    config: &ClusterConfig,
    arrivals: &[Arrival],
    phase: &PhaseCell,
    metrics: &ClusterMetrics,
) -> Result<ClusterOutcome> {
    if config.n == 0 {
        return Err(Error::Config("a cluster needs at least one relay".into()));
    }
    for arrival in arrivals {
        if arrival.sender >= config.n {
            return Err(Error::Config(format!(
                "arrival sender {} out of range (n={})",
                arrival.sender, config.n
            )));
        }
    }
    phase.set(Phase::Boot);
    let boot_start = Instant::now();
    let boot_span = anonroute_obs::span_with("cluster.boot", "relay", &[("epoch", config.epoch)]);
    let tap = LinkTap::new();
    let receiver = ReceiverServer::spawn(tap.clone(), config.io_timeout)?;
    let relay_cfg = RelayConfig {
        cell_size: config.cell_size,
        io_timeout: config.io_timeout,
        ..RelayConfig::default()
    };

    // bind every listener first so the directory can carry real ports
    let mut pending: Vec<PendingRelay> = Vec::with_capacity(config.n);
    for id in 0..config.n {
        match PendingRelay::bind(id, cluster_identity(config.seed, id), relay_cfg) {
            Ok(p) => pending.push(p),
            Err(e) => {
                let _ = receiver.join(config.join_timeout);
                return Err(e);
            }
        }
    }
    let nodes: Vec<NodeInfo> = pending
        .iter()
        .map(|p| NodeInfo {
            id: p.id(),
            addr: p.addr(),
            public: p.public(),
        })
        .collect();
    let directory = match Directory::new(nodes, receiver.addr()) {
        Ok(d) => Arc::new(d),
        Err(e) => {
            let _ = receiver.join(config.join_timeout);
            return Err(e);
        }
    };
    let relays: Vec<Relay> = pending
        .into_iter()
        .map(|p| {
            let junk_seed = config
                .seed
                .wrapping_add(config.epoch.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
                .wrapping_add((p.id() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            p.serve(Arc::clone(&directory), tap.clone(), junk_seed)
        })
        .collect();
    metrics.boots.inc();
    metrics
        .boot_seconds
        .observe(boot_start.elapsed().as_secs_f64());
    let boot_micros = boot_start.elapsed().as_micros() as u64;
    drop(boot_span);

    // drive the workload; the client drops (closing its connections) as
    // soon as the last cell is on the wire. The first send is where
    // onion handshakes can first fail, so it gets its own phase.
    phase.set(Phase::Handshake);
    let traffic_start = Instant::now();
    let traffic_span =
        anonroute_obs::span_with("cluster.traffic", "relay", &[("epoch", config.epoch)]);
    let send_result = (|| -> Result<Vec<Origination>> {
        let mut client = Client::new(
            Arc::clone(&directory),
            config.dist.clone(),
            config.path_kind,
            config.cell_size,
            Some(tap.clone()),
        )?;
        // epoch 0 leaves the stream untouched; later epochs re-key every
        // circuit built over the same relay identities
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ 0x517E_C0DE_5EED_0001 ^ config.epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut originations = Vec::with_capacity(arrivals.len());
        for (i, arrival) in arrivals.iter().enumerate() {
            let msg = MsgId(i as u64);
            originations.push(Origination {
                time: tap.now(),
                sender: arrival.sender,
                msg,
            });
            client.send(arrival.sender, msg, &arrival.payload, &mut rng)?;
            if i == 0 {
                phase.set(Phase::Traffic);
            }
        }
        Ok(originations)
    })();

    let all_arrived = match &send_result {
        Ok(_) => {
            phase.set(Phase::Drain);
            receiver.wait_for(arrivals.len(), config.deliver_timeout)
        }
        Err(_) => false,
    };
    let traffic_micros = traffic_start.elapsed().as_micros() as u64;
    drop(traffic_span);

    // teardown is unconditional and bounded; keep the first error seen
    phase.set(Phase::Teardown);
    let _teardown_span =
        anonroute_obs::span_with("cluster.teardown", "relay", &[("epoch", config.epoch)]);
    let mut stats = Vec::with_capacity(config.n);
    let mut teardown_err: Option<Error> = None;
    for relay in relays {
        match relay.join(config.join_timeout) {
            Ok(s) => stats.push(s),
            Err(e) => {
                stats.push(RelayStats::default());
                teardown_err.get_or_insert(e);
            }
        }
    }
    let deliveries = match receiver.join(config.join_timeout) {
        Ok(d) => d,
        Err(e) => {
            teardown_err.get_or_insert(e);
            Vec::new()
        }
    };

    let originations = send_result?;
    if let Some(e) = teardown_err {
        return Err(e);
    }
    if !all_arrived {
        return Err(Error::Timeout(format!(
            "only {} of {} messages delivered within {:?}",
            deliveries.len(),
            arrivals.len(),
            config.deliver_timeout
        )));
    }
    Ok(ClusterOutcome {
        trace: tap.snapshot(),
        deliveries,
        originations,
        stats,
        boot_micros,
        traffic_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonroute_sim::traffic::UniformTraffic;
    use anonroute_sim::Endpoint;

    fn workload(n: usize, count: usize, seed: u64) -> Vec<Arrival> {
        UniformTraffic {
            count,
            interval_us: 0,
            payload_len: 24,
        }
        .generate(n, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn fixed_two_hop_cluster_delivers_everything() {
        let config = ClusterConfig::new(6, PathLengthDist::fixed(2));
        let arrivals = workload(6, 25, 11);
        let outcome = run_cluster(&config, &arrivals).unwrap();

        assert_eq!(outcome.deliveries.len(), 25);
        assert_eq!(outcome.originations.len(), 25);
        // l = 2: sender→x1, x1→x2, x2→receiver per message
        assert_eq!(outcome.trace.len(), 75);
        let relayed: u64 = outcome.stats.iter().map(|s| s.relayed).sum();
        let delivered: u64 = outcome.stats.iter().map(|s| s.delivered).sum();
        let dropped: u64 = outcome.stats.iter().map(|s| s.dropped).sum();
        assert_eq!((relayed, delivered, dropped), (25, 25, 0));

        // payload integrity end to end
        let mut sent: Vec<Vec<u8>> = arrivals.iter().map(|a| a.payload.clone()).collect();
        let mut got: Vec<Vec<u8>> = outcome
            .deliveries
            .iter()
            .map(|d| d.payload.clone())
            .collect();
        sent.sort();
        got.sort();
        assert_eq!(sent, got);

        // every message has exactly one receiver edge
        for o in &outcome.originations {
            let receiver_edges = outcome
                .trace
                .iter()
                .filter(|r| r.msg == o.msg && r.to == Endpoint::Receiver)
                .count();
            assert_eq!(receiver_edges, 1, "{:?}", o.msg);
        }
    }

    #[test]
    fn zero_length_paths_send_directly() {
        let config = ClusterConfig::new(4, PathLengthDist::fixed(0));
        let arrivals = workload(4, 8, 3);
        let outcome = run_cluster(&config, &arrivals).unwrap();
        assert_eq!(outcome.deliveries.len(), 8);
        assert_eq!(outcome.trace.len(), 8);
        for (d, o) in outcome.deliveries.iter().zip(&outcome.originations) {
            // arrival order == origination order on a single direct link
            let _ = o;
            assert!(matches!(d.last_hop, Endpoint::Node(_)));
        }
        let relayed: u64 = outcome.stats.iter().map(|s| s.relayed).sum();
        assert_eq!(relayed, 0, "direct sends never touch a relay");
    }

    #[test]
    fn same_seed_reproduces_the_same_observations() {
        let config = ClusterConfig::new(5, PathLengthDist::uniform(1, 3).unwrap());
        let arrivals = workload(5, 15, 21);
        let a = run_cluster(&config, &arrivals).unwrap();
        let b = run_cluster(&config, &arrivals).unwrap();
        // timestamps differ; the observable structure must not
        let shape = |t: &[TransferRecord]| {
            let mut edges: Vec<(Endpoint, Endpoint, MsgId)> =
                t.iter().map(|r| (r.from, r.to, r.msg)).collect();
            edges.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            edges
        };
        assert_eq!(shape(&a.trace), shape(&b.trace));
    }

    #[test]
    fn epochs_rekey_circuits_but_not_identities() {
        let mut config = ClusterConfig::new(5, PathLengthDist::uniform(1, 3).unwrap());
        config.seed = 13;
        let arrivals = workload(5, 12, 4);
        let shape = |t: &[TransferRecord]| {
            let mut edges: Vec<(Endpoint, Endpoint, MsgId)> =
                t.iter().map(|r| (r.from, r.to, r.msg)).collect();
            edges.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            edges
        };
        let epoch0 = run_cluster(&config, &arrivals).unwrap();
        config.epoch = 1;
        let epoch1 = run_cluster(&config, &arrivals).unwrap();
        // identities derive from the seed only, so both epochs run the
        // same cluster — but the circuit streams must differ
        assert_eq!(
            cluster_identity(13, 2).public(),
            cluster_identity(13, 2).public()
        );
        assert_ne!(
            shape(&epoch0.trace),
            shape(&epoch1.trace),
            "each epoch must re-key and re-route its circuits"
        );
        // ...deterministically: the same epoch reproduces its own shape
        let epoch1_again = run_cluster(&config, &arrivals).unwrap();
        assert_eq!(shape(&epoch1.trace), shape(&epoch1_again.trace));
    }

    #[test]
    fn budgeted_runs_serialize_on_a_tiny_budget() {
        use crate::budget::ClusterBudget;
        // capacity 4 < n + 1 = 5: the request clamps and the cluster
        // still runs to completion (exclusively)
        let budget = ClusterBudget::new(4);
        let config = ClusterConfig::new(4, PathLengthDist::fixed(1));
        let arrivals = workload(4, 6, 2);
        let outcome = run_cluster_with_budget(&config, &arrivals, &budget).unwrap();
        assert_eq!(outcome.deliveries.len(), 6);
        assert_eq!(budget.available(), budget.capacity(), "slots returned");
    }

    #[test]
    fn invalid_configs_are_rejected_cleanly() {
        let arrivals = workload(4, 2, 1);
        assert!(matches!(
            run_cluster(&ClusterConfig::new(0, PathLengthDist::fixed(1)), &arrivals),
            Err(Error::Config(_))
        ));
        // sender out of range
        let config = ClusterConfig::new(2, PathLengthDist::fixed(1));
        let bad = vec![Arrival {
            at: anonroute_sim::SimTime::ZERO,
            sender: 3,
            payload: vec![1],
        }];
        assert!(matches!(run_cluster(&config, &bad), Err(Error::Config(_))));
        // unrealizable strategy: F(5) needs 5 distinct intermediates of 4
        let config = ClusterConfig::new(4, PathLengthDist::fixed(5));
        assert!(run_cluster(&config, &workload(4, 1, 1)).is_err());
    }
}
