//! The length-prefixed TCP wire protocol.
//!
//! Every message on a relay connection is one frame:
//!
//! ```text
//! frame := len(u32 BE) ‖ tag(u8) ‖ body          len = |tag ‖ body|
//! CELL    (tag 1): body = msg(u64 BE) ‖ relay cell bytes
//! DELIVER (tag 2): body = msg(u64 BE) ‖ from(u16 BE) ‖ payload
//! GOSSIP  (tag 3): body = encoded directory snapshot
//! ```
//!
//! `CELL` carries one fixed-size onion relay cell (see [`crate::circuit`])
//! between members; `DELIVER` carries a decrypted payload from the exit
//! relay (or directly from a sender, for the paper's `l = 0` case) to the
//! receiver; `GOSSIP` carries a serialized [`crate::authority::NetworkView`]
//! snapshot pushed by a peer maintaining topology (see [`crate::gossip`]).
//!
//! The cleartext `msg` field is a correlation tag, not an addressing
//! field: it models the paper's worst-case Section-4 assumption that the
//! adversary can correlate sightings of the same message across links
//! (exactly the semantics of [`anonroute_sim::MsgId`] in the simulator).
//! Honest relays never interpret it.

use std::io::{self, ErrorKind, Read, Write};

use crate::error::{Error, Result};

/// Upper bound on a frame body, guarding allocation on malformed input.
pub const MAX_FRAME: usize = 1 << 20;

const TAG_CELL: u8 = 1;
const TAG_DELIVER: u8 = 2;
const TAG_GOSSIP: u8 = 3;

/// One wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A fixed-size onion relay cell in transit, with its correlation tag.
    Cell {
        /// Correlation tag (see the module docs).
        msg: u64,
        /// The relay cell bytes.
        cell: Vec<u8>,
    },
    /// A decrypted payload handed to the receiver.
    Deliver {
        /// Correlation tag.
        msg: u64,
        /// Member node that produced the delivery (the exit relay, or the
        /// sender itself for direct sends) — the receiver's predecessor,
        /// which the threat model grants the adversary anyway.
        from: u16,
        /// The sender's original payload.
        payload: Vec<u8>,
    },
    /// A directory snapshot pushed by a gossiping peer.
    Gossip {
        /// Encoded [`crate::authority::NetworkView`] snapshot bytes.
        snapshot: Vec<u8>,
    },
}

/// Outcome of one read attempt on a relay connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame arrived.
    Frame(Frame),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The read timed out before the first byte of a frame — the
    /// connection is idle; poll again (after checking shutdown flags).
    Idle,
}

/// Serializes and writes one frame with a single `write_all`.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let mut body = Vec::with_capacity(64);
    match frame {
        Frame::Cell { msg, cell } => {
            body.push(TAG_CELL);
            body.extend_from_slice(&msg.to_be_bytes());
            body.extend_from_slice(cell);
        }
        Frame::Deliver { msg, from, payload } => {
            body.push(TAG_DELIVER);
            body.extend_from_slice(&msg.to_be_bytes());
            body.extend_from_slice(&from.to_be_bytes());
            body.extend_from_slice(payload);
        }
        Frame::Gossip { snapshot } => {
            body.push(TAG_GOSSIP);
            body.extend_from_slice(snapshot);
        }
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    w.write_all(&out)?;
    w.flush()
}

/// Reads one frame, distinguishing idle timeouts from real errors.
///
/// The stream should have a read timeout configured; a timeout **before
/// any byte** of a frame yields [`ReadOutcome::Idle`] so the caller can
/// poll a shutdown flag. A timeout **inside** a frame keeps reading (a
/// frame in flight on loopback completes quickly) up to `max_stalls`
/// consecutive stalled reads, then fails — a peer must not be able to
/// wedge a relay worker with a half-written frame.
///
/// # Errors
///
/// [`Error::Protocol`] on truncated/oversized/unknown frames,
/// [`Error::Timeout`] on a stalled mid-frame read, [`Error::Io`] on
/// other socket failures.
pub fn read_frame(r: &mut impl Read, max_stalls: u32) -> Result<ReadOutcome> {
    let mut len_buf = [0u8; 4];
    match read_exact_stalling(r, &mut len_buf, true, max_stalls)? {
        FillOutcome::Done => {}
        FillOutcome::CleanEof => return Ok(ReadOutcome::Eof),
        FillOutcome::Idle => return Ok(ReadOutcome::Idle),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Err(Error::Protocol("empty frame".into()));
    }
    if len > MAX_FRAME {
        return Err(Error::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"
        )));
    }
    let mut body = vec![0u8; len];
    match read_exact_stalling(r, &mut body, false, max_stalls)? {
        FillOutcome::Done => {}
        _ => return Err(Error::Protocol("truncated frame body".into())),
    }
    parse_body(&body).map(ReadOutcome::Frame)
}

fn parse_body(body: &[u8]) -> Result<Frame> {
    let (tag, rest) = (body[0], &body[1..]);
    match tag {
        TAG_CELL => {
            if rest.len() < 8 {
                return Err(Error::Protocol("CELL frame shorter than its header".into()));
            }
            Ok(Frame::Cell {
                msg: u64::from_be_bytes(rest[..8].try_into().expect("length checked")),
                cell: rest[8..].to_vec(),
            })
        }
        TAG_DELIVER => {
            if rest.len() < 10 {
                return Err(Error::Protocol(
                    "DELIVER frame shorter than its header".into(),
                ));
            }
            Ok(Frame::Deliver {
                msg: u64::from_be_bytes(rest[..8].try_into().expect("length checked")),
                from: u16::from_be_bytes(rest[8..10].try_into().expect("length checked")),
                payload: rest[10..].to_vec(),
            })
        }
        TAG_GOSSIP => Ok(Frame::Gossip {
            snapshot: rest.to_vec(),
        }),
        other => Err(Error::Protocol(format!("unknown frame tag {other}"))),
    }
}

enum FillOutcome {
    Done,
    CleanEof,
    Idle,
}

/// Fills `buf`, tolerating read timeouts: before the first byte a timeout
/// is reported as `Idle` (when `idle_ok`); after it, up to `max_stalls`
/// consecutive timeouts are retried.
fn read_exact_stalling(
    r: &mut impl Read,
    buf: &mut [u8],
    idle_ok: bool,
    max_stalls: u32,
) -> Result<FillOutcome> {
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && idle_ok {
                    Ok(FillOutcome::CleanEof)
                } else {
                    Err(Error::Protocol("connection closed mid-frame".into()))
                };
            }
            Ok(k) => {
                filled += k;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if filled == 0 && idle_ok {
                    return Ok(FillOutcome::Idle);
                }
                stalls += 1;
                if stalls > max_stalls {
                    return Err(Error::Timeout(format!(
                        "peer stalled mid-frame ({filled}/{} bytes)",
                        buf.len()
                    )));
                }
            }
            Err(e) => return Err(Error::Io(e)),
        }
    }
    Ok(FillOutcome::Done)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = &buf[..];
        match read_frame(&mut cursor, 4).unwrap() {
            ReadOutcome::Frame(got) => assert_eq!(got, frame),
            other => panic!("unexpected {other:?}"),
        }
        assert!(cursor.is_empty(), "frame must consume exactly its bytes");
    }

    #[test]
    fn cell_and_deliver_roundtrip() {
        roundtrip(Frame::Cell {
            msg: 42,
            cell: vec![7u8; 128],
        });
        roundtrip(Frame::Deliver {
            msg: u64::MAX,
            from: 9,
            payload: b"hello".to_vec(),
        });
        roundtrip(Frame::Deliver {
            msg: 0,
            from: 0,
            payload: vec![],
        });
        roundtrip(Frame::Gossip {
            snapshot: b"ASNP-ish".to_vec(),
        });
        roundtrip(Frame::Gossip { snapshot: vec![] });
    }

    #[test]
    fn eof_at_boundary_is_clean() {
        let mut empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut empty, 4).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn eof_mid_frame_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Cell {
                msg: 1,
                cell: vec![0u8; 64],
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 10);
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor, 4),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn oversized_and_unknown_frames_rejected() {
        let mut huge = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        huge.push(TAG_CELL);
        assert!(matches!(
            read_frame(&mut &huge[..], 4),
            Err(Error::Protocol(_))
        ));

        let bad_tag = [0u8, 0, 0, 1, 99];
        assert!(matches!(
            read_frame(&mut &bad_tag[..], 4),
            Err(Error::Protocol(_))
        ));

        let empty_frame = [0u8, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut &empty_frame[..], 4),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn short_headers_rejected() {
        // CELL with a 4-byte body (needs >= 9 incl. tag)
        let frame = [0u8, 0, 0, 3, TAG_CELL, 1, 2];
        assert!(matches!(
            read_frame(&mut &frame[..], 4),
            Err(Error::Protocol(_))
        ));
        let frame = [0u8, 0, 0, 3, TAG_DELIVER, 1, 2];
        assert!(matches!(
            read_frame(&mut &frame[..], 4),
            Err(Error::Protocol(_))
        ));
    }

    /// A reader that times out between chunks, exercising the stall path.
    struct Chunky<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
        timeout_next: bool,
    }
    impl Read for Chunky<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.timeout_next {
                self.timeout_next = false;
                return Err(io::Error::new(ErrorKind::WouldBlock, "stall"));
            }
            self.timeout_next = true;
            let k = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..k].copy_from_slice(&self.data[self.pos..self.pos + k]);
            self.pos += k;
            Ok(k)
        }
    }

    #[test]
    fn interleaved_timeouts_mid_frame_are_retried() {
        let mut buf = Vec::new();
        let frame = Frame::Cell {
            msg: 5,
            cell: vec![0xEE; 40],
        };
        write_frame(&mut buf, &frame).unwrap();
        let mut chunky = Chunky {
            data: &buf,
            pos: 0,
            chunk: 7,
            timeout_next: true, // leading timeout => Idle first
        };
        assert!(matches!(
            read_frame(&mut chunky, 4).unwrap(),
            ReadOutcome::Idle
        ));
        match read_frame(&mut chunky, 4).unwrap() {
            ReadOutcome::Frame(got) => assert_eq!(got, frame),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A reader that stalls forever after a prefix.
    struct Wedged {
        sent: bool,
    }
    impl Read for Wedged {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.sent {
                Err(io::Error::new(ErrorKind::WouldBlock, "stall"))
            } else {
                self.sent = true;
                buf[0] = 0;
                Ok(1)
            }
        }
    }

    #[test]
    fn wedged_peer_times_out_instead_of_hanging() {
        let mut wedged = Wedged { sent: false };
        assert!(matches!(read_frame(&mut wedged, 3), Err(Error::Timeout(_))));
    }
}
